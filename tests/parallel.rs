//! Cross-crate tests of the parallel portfolio explorer: determinism
//! across thread counts, exact single-chain equivalence, and the
//! equal-budget quality/wall-clock smoke of the Fig. 2/3 protocol.

use rdse::mapping::{
    explore, explore_parallel, ExploreOptions, Explorer, ParallelOptions, ParallelOutcome,
};
use rdse::workloads::{epicure_architecture, motion_detection_app};

fn motion_portfolio(threads: usize, chains: usize, total_iters: u64, seed: u64) -> ParallelOutcome {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    explore_parallel(
        &app,
        &arch,
        &ParallelOptions {
            base: ExploreOptions {
                max_iterations: total_iters,
                warmup_iterations: total_iters / 5,
                seed,
                ..ExploreOptions::default()
            },
            chains,
            threads,
            exchange_every: 250,
            warm_start: None,
            front_exchange: false,
        },
    )
    .expect("motion benchmark explores cleanly")
}

#[test]
fn portfolio_is_bit_identical_across_thread_counts() {
    // The tentpole guarantee: (seed, chains) fully determines the
    // result; the worker count only changes wall-clock time.
    let a = motion_portfolio(1, 4, 3_000, 41);
    let b = motion_portfolio(2, 4, 3_000, 41);
    let c = motion_portfolio(8, 4, 3_000, 41);
    assert_eq!(
        a.evaluation.makespan.value().to_bits(),
        b.evaluation.makespan.value().to_bits()
    );
    assert_eq!(
        b.evaluation.makespan.value().to_bits(),
        c.evaluation.makespan.value().to_bits()
    );
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(b.mapping, c.mapping);
    assert_eq!(a.winner, c.winner);
    for (x, y) in a.chains.iter().zip(&c.chains) {
        assert_eq!(x.run.best_cost.to_bits(), y.run.best_cost.to_bits());
        assert_eq!(x.run.iterations, y.run.iterations);
        assert_eq!(x.run.accepted, y.run.accepted);
        assert_eq!(x.run.infeasible, y.run.infeasible);
        // The evaluator's repair behaviour (full passes, bounded
        // repairs, fall-backs, cone sizes) is part of the deterministic
        // contract too: a chain must take the *same* code paths no
        // matter how many workers host it.
        assert_eq!(x.eval_stats, y.eval_stats);
    }
}

#[test]
fn one_chain_portfolio_equals_single_chain_explore() {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let opts = ExploreOptions {
        max_iterations: 2_500,
        warmup_iterations: 500,
        seed: 23,
        ..ExploreOptions::default()
    };
    let single = explore(&app, &arch, &opts).expect("explores cleanly");
    let portfolio = explore_parallel(
        &app,
        &arch,
        &ParallelOptions {
            base: opts,
            chains: 1,
            threads: 8,
            exchange_every: 250,
            warm_start: None,
            front_exchange: false,
        },
    )
    .expect("explores cleanly");
    assert_eq!(portfolio.winner, 0);
    assert_eq!(portfolio.mapping, single.mapping);
    assert_eq!(
        portfolio.evaluation.makespan.value().to_bits(),
        single.evaluation.makespan.value().to_bits()
    );
    assert_eq!(portfolio.chains[0].run.accepted, single.run.accepted);
}

#[test]
fn segmented_explorer_matches_explore_on_motion() {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let opts = ExploreOptions {
        max_iterations: 2_000,
        warmup_iterations: 400,
        seed: 3,
        ..ExploreOptions::default()
    };
    let whole = explore(&app, &arch, &opts).expect("explores cleanly");
    let mut chain = Explorer::new(&app, &arch, &opts).expect("initial solution exists");
    while chain.run_segment(333) {}
    let segmented = chain.into_outcome();
    assert_eq!(whole.mapping, segmented.mapping);
    assert_eq!(
        whole.evaluation.makespan.value().to_bits(),
        segmented.evaluation.makespan.value().to_bits()
    );
}

#[test]
fn eight_chains_match_single_chain_quality_at_equal_budget() {
    // The §5-style smoke: at an equal *total* iteration budget the
    // 8-chain portfolio lands in the same quality band as the
    // single-chain tool. Chain results fluctuate a few percent around
    // parity, so the bound is deliberately generous; the wall-clock
    // bound only asserts that threading never regresses badly (on a
    // multi-core box it improves, on a single-core runner it is a
    // small constant overhead).
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let base = ExploreOptions {
        max_iterations: 6_000,
        warmup_iterations: 1_200,
        seed: 17,
        ..ExploreOptions::default()
    };
    let single = explore(&app, &arch, &base).expect("explores cleanly");

    let serial = motion_portfolio(1, 8, 6_000, 17);
    let threaded = motion_portfolio(0, 8, 6_000, 17); // 0 = all cores

    // Thread count must not change the answer...
    assert_eq!(serial.mapping, threaded.mapping);
    // ...the portfolio winner must be in the single-chain quality band...
    assert!(
        threaded.evaluation.makespan.value() <= single.evaluation.makespan.value() * 1.15,
        "portfolio {} far worse than single-chain {}",
        threaded.evaluation.makespan,
        single.evaluation.makespan
    );
    // ...every chain ran, splitting the budget...
    assert_eq!(threaded.chains.len(), 8);
    let total: u64 = threaded.chains.iter().map(|c| c.run.iterations).sum();
    assert_eq!(total, 6_000);
    // ...and threads do not blow up wall-clock (they improve it when
    // cores are available). The margin is deliberately wide: CI
    // runners are noisy, and the determinism assertions above are the
    // load-bearing ones.
    assert!(
        threaded.elapsed.as_secs_f64() <= serial.elapsed.as_secs_f64() * 2.0 + 0.25,
        "threaded portfolio far slower than serial: {:?} vs {:?}",
        threaded.elapsed,
        serial.elapsed
    );
}

#[test]
fn portfolio_chains_explore_distinct_streams() {
    let portfolio = motion_portfolio(2, 4, 4_000, 11);
    // All chains derive different seeds from the master (chain 0 keeps
    // the master itself)...
    let mut seeds: Vec<u64> = portfolio.chains.iter().map(|c| c.seed).collect();
    assert_eq!(seeds[0], 11);
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 4);
    // ...and the winner is the argmin over per-chain bests.
    let best = portfolio
        .chains
        .iter()
        .map(|c| c.run.best_cost)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(
        portfolio.chains[portfolio.winner].run.best_cost.to_bits(),
        best.to_bits()
    );
}
