//! Integration tests on architectures richer than the paper's fixed
//! 1-CPU + 1-FPGA platform: multiple processors, multiple
//! reconfigurable devices, and ASICs. The §3.3 resource taxonomy is
//! supposed to handle all of them through the same polymorphic
//! interface; these tests hold it to that.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdse::mapping::{evaluate, explore, ExploreOptions, Mapping, Placement};
use rdse::model::units::{Bytes, Clbs, Micros};
use rdse::model::{Architecture, HwImpl, TaskGraph, TaskId};
use rdse::sim::{simulate, SimConfig};
use rdse::workloads::{layered_dag, LayeredDagConfig};

fn us(v: f64) -> Micros {
    Micros::new(v)
}

fn dual_proc_dual_drlc() -> Architecture {
    Architecture::builder("dual")
        .processor("cpu0", 1.0)
        .processor("cpu1", 1.0)
        .drlc("fpga0", Clbs::new(300), us(2.0), 5.0)
        .drlc("fpga1", Clbs::new(150), us(1.0), 3.0)
        .asic("accel", 4.0)
        .bus_rate(64.0)
        .build()
        .expect("valid architecture")
}

/// Independent two-task app for hand-built placements.
fn two_task_app() -> TaskGraph {
    let mut app = TaskGraph::new("two");
    app.add_task(
        "a",
        "F",
        us(100.0),
        vec![HwImpl::new(Clbs::new(50), us(10.0))],
    )
    .unwrap();
    app.add_task(
        "b",
        "G",
        us(200.0),
        vec![HwImpl::new(Clbs::new(60), us(20.0))],
    )
    .unwrap();
    app
}

#[test]
fn tasks_on_two_processors_run_in_parallel() {
    let app = two_task_app();
    let arch = dual_proc_dual_drlc();
    let mut m = Mapping::all_software(&app, &arch, vec![TaskId(0), TaskId(1)]);
    // Sequential on cpu0: makespan 300.
    assert_eq!(evaluate(&app, &arch, &m).unwrap().makespan, us(300.0));
    // Move b to cpu1: independent tasks now overlap, makespan 200.
    m.detach(TaskId(1));
    m.insert_software(TaskId(1), 1, 0);
    m.validate(&app, &arch).unwrap();
    assert_eq!(evaluate(&app, &arch, &m).unwrap().makespan, us(200.0));
    // DES agrees.
    let sim = simulate(&app, &arch, &m, &SimConfig::contention_free()).unwrap();
    assert_eq!(sim.makespan, us(200.0));
}

#[test]
fn two_drlcs_reconfigure_independently() {
    let app = two_task_app();
    let arch = dual_proc_dual_drlc();
    let mut m = Mapping::all_software(&app, &arch, vec![TaskId(0), TaskId(1)]);
    // a on fpga0 (50 CLBs × 2.0 = 100 reconfig + 10 exec = 110),
    // b on fpga1 (60 CLBs × 1.0 = 60 reconfig + 20 exec = 80).
    m.detach(TaskId(0));
    m.insert_new_context(TaskId(0), 0, 0, 0);
    m.detach(TaskId(1));
    m.insert_new_context(TaskId(1), 1, 0, 0);
    m.validate(&app, &arch).unwrap();
    let eval = evaluate(&app, &arch, &m).unwrap();
    // Devices work in parallel: the slower one defines the makespan.
    assert_eq!(eval.makespan, us(110.0));
    assert_eq!(eval.n_contexts, 2);
    // Initial reconfiguration sums over both devices' first contexts.
    assert_eq!(eval.breakdown.initial_reconfig, us(160.0));
    let sim = simulate(&app, &arch, &m, &SimConfig::contention_free()).unwrap();
    assert!((sim.makespan.value() - 110.0).abs() < 1e-9);
}

#[test]
fn asic_placement_executes_with_maximal_parallelism() {
    let app = two_task_app();
    let arch = dual_proc_dual_drlc();
    let mut m = Mapping::all_software(&app, &arch, vec![TaskId(0), TaskId(1)]);
    m.detach(TaskId(0));
    m.insert_asic(TaskId(0), 0);
    m.detach(TaskId(1));
    m.insert_asic(TaskId(1), 0);
    m.validate(&app, &arch).unwrap();
    let eval = evaluate(&app, &arch, &m).unwrap();
    // ASIC runs both at their fastest hardware times, in parallel, with
    // no reconfiguration: makespan = max(10, 20).
    assert_eq!(eval.makespan, us(20.0));
    assert_eq!(eval.breakdown.initial_reconfig, Micros::ZERO);
    assert_eq!(m.placement(TaskId(0)), Placement::Asic { asic: 0 });
    let sim = simulate(&app, &arch, &m, &SimConfig::contention_free()).unwrap();
    assert_eq!(sim.makespan, us(20.0));
}

#[test]
fn cross_drlc_communication_uses_the_bus() {
    let mut app = TaskGraph::new("xfer");
    let a = app
        .add_task(
            "a",
            "F",
            us(100.0),
            vec![HwImpl::new(Clbs::new(50), us(10.0))],
        )
        .unwrap();
    let b = app
        .add_task(
            "b",
            "G",
            us(200.0),
            vec![HwImpl::new(Clbs::new(60), us(20.0))],
        )
        .unwrap();
    app.add_data_edge(a, b, Bytes::new(6400)).unwrap(); // 100 µs at 64 B/µs
    let arch = dual_proc_dual_drlc();
    let mut m = Mapping::all_software(&app, &arch, vec![a, b]);
    m.detach(a);
    m.insert_new_context(a, 0, 0, 0);
    m.detach(b);
    m.insert_new_context(b, 1, 0, 0);
    let eval = evaluate(&app, &arch, &m).unwrap();
    // a: reconfig 100 + exec 10 = 110; transfer 100; b waited on its own
    // reconfig (60) but data arrives at 210; b exec 20 -> 230.
    assert_eq!(eval.makespan, us(230.0));
    let sim = simulate(&app, &arch, &m, &SimConfig::with_contention()).unwrap();
    assert_eq!(sim.makespan, us(230.0));
    assert_eq!(sim.n_transfers, 1);
}

#[test]
fn explorer_exploits_heterogeneous_platforms() {
    let app = layered_dag(
        &LayeredDagConfig {
            layers: 5,
            width: 4,
            edge_percent: 35,
            hw_percent: 70,
        },
        99,
    );
    let hetero = dual_proc_dual_drlc();
    let single = Architecture::builder("single")
        .processor("cpu0", 1.0)
        .bus_rate(64.0)
        .build()
        .unwrap();
    let run = |arch: &Architecture| {
        explore(
            &app,
            arch,
            &ExploreOptions {
                max_iterations: 8_000,
                warmup_iterations: 1_500,
                seed: 4,
                ..ExploreOptions::default()
            },
        )
        .unwrap()
    };
    let h = run(&hetero);
    let s = run(&single);
    h.mapping.validate(&app, &hetero).unwrap();
    // The heterogeneous platform must be exploited: strictly faster
    // than the single-CPU platform, which cannot beat the sequential
    // sum of software times.
    assert!(
        h.evaluation.makespan.value() < s.evaluation.makespan.value() * 0.8,
        "hetero {} vs single {}",
        h.evaluation.makespan,
        s.evaluation.makespan
    );
    // And validated dynamically.
    let sim = simulate(&app, &hetero, &h.mapping, &SimConfig::contention_free()).unwrap();
    assert!((sim.makespan.value() - h.evaluation.makespan.value()).abs() < 1e-6);
}

#[test]
fn second_processor_is_reachable_by_moves() {
    // m2 can move tasks to cpu1 only via a destination task there; the
    // explorer seeds cpu0 only, so verify the walk spreads across
    // processors when it pays. Start with one task on cpu1 explicitly.
    let app = layered_dag(&LayeredDagConfig::default(), 123);
    let arch = dual_proc_dual_drlc();
    let mut rng = StdRng::seed_from_u64(7);
    let mut m = rdse::mapping::random_initial(&app, &arch, &mut rng);
    // Force one software task onto cpu1 so the resource is discoverable.
    let sw_task = app
        .task_ids()
        .find(|&t| m.placement(t).is_software())
        .expect("some software task exists");
    m.detach(sw_task);
    m.insert_software(sw_task, 1, 0);
    m.validate(&app, &arch).unwrap();
    evaluate(&app, &arch, &m).unwrap();
}
