//! Cross-crate integration tests: the complete tool on the paper's
//! benchmark, cross-validated by the simulator and compared against
//! the baselines.

use rdse::baseline::{random_search, GaOptions, GeneticExplorer};
use rdse::mapping::{evaluate, explore, ExploreOptions, GanttChart};
use rdse::model::{Architecture, TaskGraph};
use rdse::sim::{simulate, SimConfig};
use rdse::workloads::{epicure_architecture, motion_detection_app, MOTION_DEADLINE};

fn explore_motion(clbs: u32, seed: u64) -> rdse::mapping::ExploreOutcome {
    let app = motion_detection_app();
    let arch = epicure_architecture(clbs);
    explore(
        &app,
        &arch,
        &ExploreOptions {
            max_iterations: 5_000,
            warmup_iterations: 1_200,
            seed,
            ..ExploreOptions::default()
        },
    )
    .expect("motion benchmark explores cleanly")
}

#[test]
fn paper_protocol_meets_the_constraint_at_2000_clbs() {
    let out = explore_motion(2000, 1);
    assert!(
        out.evaluation.makespan <= MOTION_DEADLINE,
        "constraint missed: {}",
        out.evaluation.makespan
    );
    // Strong improvement over all-software (76.4 ms).
    assert!(out.evaluation.makespan.as_millis() < 35.0);
    assert!(out.evaluation.n_hw_tasks >= 5);
}

#[test]
fn explored_solution_survives_des_validation() {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let out = explore_motion(2000, 3);
    let analytic = evaluate(&app, &arch, &out.mapping).expect("feasible");
    let des = simulate(&app, &arch, &out.mapping, &SimConfig::contention_free())
        .expect("simulates cleanly");
    assert!((des.makespan.value() - analytic.makespan.value()).abs() < 1e-6);
    let contended = simulate(&app, &arch, &out.mapping, &SimConfig::with_contention())
        .expect("simulates cleanly");
    assert!(contended.makespan.value() >= des.makespan.value() - 1e-6);
}

#[test]
fn annealer_beats_ga_and_random_search() {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let sa = explore_motion(2000, 1);
    let ga = GeneticExplorer::new(
        &app,
        &arch,
        GaOptions {
            population: 100,
            generations: 60,
            stall_generations: 20,
            seed: 1,
            ..GaOptions::default()
        },
    )
    .run()
    .expect("GA runs cleanly");
    let (_, rs) = random_search(&app, &arch, 3_000, 1).expect("random search runs");

    // The §5 ordering: SA best < GA best, and both crush random search.
    assert!(
        sa.evaluation.makespan <= ga.evaluation.makespan,
        "SA {} vs GA {}",
        sa.evaluation.makespan,
        ga.evaluation.makespan
    );
    assert!(ga.evaluation.makespan < rs.makespan);
}

#[test]
fn model_roundtrip_through_files_preserves_exploration() {
    let dir = std::env::temp_dir().join("rdse_e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let app_path = dir.join("app.json");
    let arch_path = dir.join("arch.json");
    motion_detection_app().save(&app_path).expect("save app");
    epicure_architecture(1500)
        .save(&arch_path)
        .expect("save arch");

    let app = TaskGraph::load(&app_path).expect("load app");
    let arch = Architecture::load(&arch_path).expect("load arch");
    assert_eq!(app.n_tasks(), 28);
    let out = explore(
        &app,
        &arch,
        &ExploreOptions {
            max_iterations: 2_000,
            warmup_iterations: 400,
            seed: 5,
            ..ExploreOptions::default()
        },
    )
    .expect("explores after roundtrip");
    out.mapping.validate(&app, &arch).expect("valid");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn solution_space_counts_match_the_paper() {
    use rdse::graph::{binomial, count_linear_extensions, parallel_chain_orders};
    let app = motion_detection_app();
    let g = app.precedence_graph();
    assert_eq!(count_linear_extensions(&g, None), Some(348_840));
    assert_eq!(3 * parallel_chain_orders(&[7, 14]), 348_840);
    // Combination counts quoted in §5.
    assert_eq!(348_840 * binomial(28, 2), 131_861_520);
    assert_eq!(348_840 * binomial(28, 4), 7_142_499_000);
    assert_eq!(binomial(28, 2), 378);
    assert_eq!(binomial(28, 6), 376_740);
}

#[test]
fn gantt_chart_is_renderable_for_explored_solutions() {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let out = explore_motion(2000, 9);
    let chart = GanttChart::extract(&app, &arch, &out.mapping, &out.evaluation);
    assert_eq!(chart.tasks.len(), 28);
    let art = chart.render_ascii(&app, &arch, 100);
    assert!(art.contains("proc0"));
    assert!(art.contains("drlc0"));
}

#[test]
fn runs_are_fast_enough_for_the_interactive_claim() {
    // The paper claims < 10 s per run on 2005 hardware; a release-mode
    // run takes milliseconds here, but even a debug-mode run must stay
    // well under the paper's budget.
    let start = std::time::Instant::now();
    let _ = explore_motion(2000, 11);
    assert!(
        start.elapsed().as_secs() < 10,
        "run took {:?}",
        start.elapsed()
    );
}

#[test]
fn same_seed_is_bit_identical() {
    // Determinism regression: the entire pipeline (initialization,
    // annealing schedule, move selection, evaluation) must be a pure
    // function of the seed. Compare makespans at the bit level — an
    // "approximately equal" determinism test would mask RNG drift.
    let a = explore_motion(2000, 17);
    let b = explore_motion(2000, 17);
    assert_eq!(
        a.evaluation.makespan.value().to_bits(),
        b.evaluation.makespan.value().to_bits(),
        "makespan differs between identical runs: {} vs {}",
        a.evaluation.makespan,
        b.evaluation.makespan
    );
    assert_eq!(a.evaluation.n_contexts, b.evaluation.n_contexts);
    assert_eq!(
        a.mapping, b.mapping,
        "mapping differs between identical runs"
    );
}

#[test]
fn different_seeds_explore_different_solutions() {
    let a = explore_motion(2000, 21);
    let b = explore_motion(2000, 22);
    // Mappings almost surely differ (costs may coincide at the optimum).
    assert!(a.mapping != b.mapping || a.evaluation.makespan == b.evaluation.makespan);
}
