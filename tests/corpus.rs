//! Corpus acceptance tests (the ISSUE-4 contract):
//!
//! * the pinned smoke subset covers ≥ 6 scenario families × ≥ 3 seeds;
//! * every scenario passes the four-way differential oracle
//!   (incremental evaluator ≡ from-scratch ≡ contention-free DES,
//!   bit-identical makespan) — `run_corpus` returns `Err` otherwise;
//! * the run is bit-identical across 1, 2 and 8 worker threads;
//! * the deterministic projection matches the checked-in golden
//!   snapshot (`tests/golden/corpus_smoke.ndjson`), so any engine
//!   change that shifts a makespan by one bit fails CI until the
//!   snapshot is regenerated deliberately.

use rdse::corpus::{run_corpus, smoke_corpus, CorpusOptions, CorpusReport};
use std::collections::BTreeSet;

/// The pinned smoke configuration: must stay in lock-step with the CLI
/// `rdse corpus run --smoke` (both use `CorpusOptions::default()`).
fn run_smoke(threads: usize) -> CorpusReport {
    run_corpus(
        &smoke_corpus(),
        &CorpusOptions {
            threads,
            ..CorpusOptions::default()
        },
    )
    .expect("every smoke scenario passes the four-way oracle")
}

#[test]
fn smoke_corpus_passes_every_three_way_oracle() {
    let report = run_smoke(0);
    assert_eq!(report.records.len(), 18);
    let families: BTreeSet<&str> = report.records.iter().map(|r| r.workload.as_str()).collect();
    assert!(families.len() >= 6, "families: {families:?}");
    let seeds: BTreeSet<u64> = report.records.iter().map(|r| r.seed).collect();
    assert!(seeds.len() >= 3, "seeds: {seeds:?}");
    let arches: BTreeSet<&str> = report.records.iter().map(|r| r.arch.as_str()).collect();
    assert_eq!(arches.len(), 6, "every platform template exercised");
    for r in &report.records {
        // The oracle agreed bit-for-bit; the record carries the agreed
        // makespan and the exclusive-bus invariant.
        assert!(r.makespan.value() > 0.0, "{}", r.id);
        assert!(
            r.contention_makespan.value() >= r.makespan.value() - 1e-6,
            "{}: contention {} < free {}",
            r.id,
            r.contention_makespan,
            r.makespan
        );
        assert!(
            r.oracle_moves_checked > 0,
            "{}: oracle walk was empty",
            r.id
        );
        assert_eq!(r.iterations, 600, "{}: pinned budget drifted", r.id);
    }
}

#[test]
fn smoke_corpus_is_bit_identical_across_1_2_8_threads() {
    let a = run_smoke(1).golden_text();
    let b = run_smoke(2).golden_text();
    let c = run_smoke(8).golden_text();
    assert_eq!(a, b, "1-thread vs 2-thread corpus diverged");
    assert_eq!(b, c, "2-thread vs 8-thread corpus diverged");
}

#[test]
fn smoke_corpus_matches_the_checked_in_golden_snapshot() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/corpus_smoke.ndjson"
    );
    let expected = std::fs::read_to_string(path).expect("golden snapshot is checked in");
    run_smoke(0).diff_golden(&expected).unwrap_or_else(|e| {
        panic!(
            "{e}\n(if the engine change is intentional, regenerate with \
             `rdse corpus run --smoke --write-golden tests/golden/corpus_smoke.ndjson`)"
        )
    });
}

#[test]
fn ndjson_matrix_has_one_wellformed_line_per_scenario() {
    let report = run_smoke(0);
    let ndjson = report.ndjson();
    assert_eq!(ndjson.lines().count(), report.records.len());
    for line in ndjson.lines() {
        // Parses back as a JSON object with the perf field present.
        let v: serde_json::Value = serde_json::from_str(line).expect("well-formed NDJSON line");
        drop(v);
        assert!(line.contains("\"steps_per_sec\":"));
        assert!(line.contains("\"oracle\":\"pass\""));
    }
}
