//! Cross-crate tests of speculative parallel annealing: the
//! speculative walk must be **bit-identical** to the sequential walk on
//! the golden seeds at every width and every pool worker count, and the
//! speculation counters must be a pure function of the walk (never of
//! the pool size).

use rdse::mapping::{ExploreOptions, ExploreOutcome, Explorer, Pool};
use rdse::workloads::{epicure_architecture, motion_detection_app};
use std::sync::Arc;

/// One motion-benchmark chain at speculation width `w`, scored on a
/// dedicated pool of `workers` threads (`0` = the process-wide pool),
/// driven in ragged segments to cross segment boundaries mid-round.
fn run_motion(seed: u64, w: usize, workers: usize) -> ExploreOutcome {
    let app = motion_detection_app();
    let arch = epicure_architecture(2000);
    let opts = ExploreOptions {
        max_iterations: 3_000,
        warmup_iterations: 600,
        seed,
        speculate: w,
        ..ExploreOptions::default()
    };
    let mut chain = Explorer::new(&app, &arch, &opts).expect("initial solution exists");
    if workers > 0 {
        chain.set_speculation_pool(Arc::new(Pool::new(workers)));
    }
    while chain.run_segment(700) {}
    chain.into_outcome()
}

fn assert_same_walk(seq: &ExploreOutcome, spec: &ExploreOutcome, label: &str) {
    assert_eq!(seq.mapping, spec.mapping, "{label}: mapping diverged");
    assert_eq!(
        seq.evaluation.makespan.value().to_bits(),
        spec.evaluation.makespan.value().to_bits(),
        "{label}: makespan bits diverged"
    );
    assert_eq!(
        seq.run.best_cost.to_bits(),
        spec.run.best_cost.to_bits(),
        "{label}: best cost bits diverged"
    );
    assert_eq!(
        seq.run.iterations, spec.run.iterations,
        "{label}: iterations"
    );
    assert_eq!(seq.run.accepted, spec.run.accepted, "{label}: accept count");
    assert_eq!(seq.run.rejected, spec.run.rejected, "{label}: reject count");
    assert_eq!(
        seq.run.infeasible, spec.run.infeasible,
        "{label}: infeasible count"
    );
}

#[test]
fn speculative_walk_is_bit_identical_on_golden_seeds() {
    // The tentpole guarantee, on the paper's benchmark: for each golden
    // seed, the sequential walk and the speculative walk at W ∈ {4, 8}
    // agree bit for bit — same mapping, same makespan bits, same
    // accept/reject/infeasible counts — at 1, 2 and 8 pool workers.
    for seed in [1, 17, 42] {
        let seq = run_motion(seed, 1, 0);
        for w in [4, 8] {
            for workers in [1, 2, 8] {
                let spec = run_motion(seed, w, workers);
                assert_same_walk(
                    &seq,
                    &spec,
                    &format!("seed {seed}, width {w}, {workers} workers"),
                );
            }
        }
    }
}

#[test]
fn width_one_is_the_sequential_engine() {
    // `speculate: 1` (the default) must not merely agree with the
    // sequential engine — it *is* the sequential engine, evaluator
    // code paths included.
    let seq = run_motion(7, 1, 0);
    let one = run_motion(7, 1, 4);
    assert_same_walk(&seq, &one, "width 1");
    assert_eq!(seq.eval_stats, one.eval_stats);
    assert_eq!(seq.eval_stats.spec_rounds, 0);
    assert_eq!(seq.eval_stats.speculated, 0);
}

#[test]
fn speculation_counters_are_pool_size_invariant() {
    // The counters describe the walk (rounds, useful prefixes, waste),
    // and the walk never depends on the pool — so the full EvaluatorStats
    // must agree across worker counts, speculation counters included.
    let a = run_motion(17, 8, 1);
    let b = run_motion(17, 8, 2);
    let c = run_motion(17, 8, 8);
    assert_eq!(a.eval_stats, b.eval_stats);
    assert_eq!(b.eval_stats, c.eval_stats);

    let s = a.eval_stats;
    assert!(s.spec_rounds > 0, "speculative run must record rounds");
    assert_eq!(
        s.speculated,
        s.spec_committed + s.spec_wasted,
        "every speculated score is either consumed or wasted"
    );
    let prefix = s.mean_useful_prefix();
    assert!(
        (1.0..=8.0).contains(&prefix),
        "mean useful prefix {prefix} outside [1, W]"
    );
}
