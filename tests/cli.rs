//! CLI smoke tests for the multi-objective flags: malformed
//! `--objective` specs are rejected with exit code 2 and an actionable
//! message; well-formed specs run and report a Pareto front.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::OnceLock;

fn rdse(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rdse"))
        .args(args)
        .output()
        .expect("rdse binary runs")
}

/// Generates the motion benchmark models once per test binary.
fn models() -> &'static (String, String) {
    static MODELS: OnceLock<(String, String)> = OnceLock::new();
    MODELS.get_or_init(|| {
        let dir: PathBuf = std::env::temp_dir().join("rdse_cli_smoke");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = rdse(&[
            "generate",
            "motion",
            "--clbs",
            "2000",
            "--dir",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "generate failed: {out:?}");
        (
            dir.join("motion-app.json").to_str().unwrap().to_owned(),
            dir.join("motion-arch.json").to_str().unwrap().to_owned(),
        )
    })
}

fn explore_with_objective(objective: &str) -> Output {
    let (app, arch) = models();
    rdse(&[
        "explore",
        "--app",
        app,
        "--arch",
        arch,
        "--iters",
        "300",
        "--warmup",
        "60",
        "--seed",
        "1",
        "--objective",
        objective,
    ])
}

#[test]
fn malformed_objective_specs_exit_with_code_2() {
    for (spec, expect) in [
        ("bogus:1", "unknown --objective scheme"),
        ("weighted:1,2", "exactly 3 weights"),
        ("weighted:1,2,3,4", "exactly 3 weights"),
        ("weighted:1,abc,0", "is not a number"),
        ("weighted:-1,2,0", "finite non-negative"),
        ("weighted:0,0,0", "at least one positive weight"),
        ("lexi:makespan,energy", "unknown axis 'energy'"),
        ("lexi:makespan,makespan", "listed twice"),
        ("lexi:", "unknown axis"),
    ] {
        let out = explore_with_objective(spec);
        assert_eq!(
            out.status.code(),
            Some(2),
            "spec '{spec}' should exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(expect),
            "spec '{spec}': stderr missing '{expect}':\n{stderr}"
        );
    }
}

#[test]
fn valid_objective_specs_run_and_report_a_front() {
    for spec in ["makespan", "weighted:1,5,0.5", "lexi:makespan,area"] {
        let out = explore_with_objective(spec);
        assert!(
            out.status.success(),
            "spec '{spec}' failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("pareto front  :"),
            "spec '{spec}': no front report:\n{stdout}"
        );
        assert!(stdout.contains("objective     :"), "{stdout}");
    }
    // The lexicographic run also names its front-selected winner.
    let out = explore_with_objective("lexi:makespan,area");
    assert!(String::from_utf8_lossy(&out.stdout).contains("lexi winner"));
}
