//! CLI smoke tests for the multi-objective flags: malformed
//! `--objective` specs are rejected with exit code 2 and an actionable
//! message; well-formed specs run and report a Pareto front.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::OnceLock;

fn rdse(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rdse"))
        .args(args)
        .output()
        .expect("rdse binary runs")
}

/// Generates the motion benchmark models once per test binary.
fn models() -> &'static (String, String) {
    static MODELS: OnceLock<(String, String)> = OnceLock::new();
    MODELS.get_or_init(|| {
        let dir: PathBuf = std::env::temp_dir().join("rdse_cli_smoke");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = rdse(&[
            "generate",
            "motion",
            "--clbs",
            "2000",
            "--dir",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "generate failed: {out:?}");
        (
            dir.join("motion-app.json").to_str().unwrap().to_owned(),
            dir.join("motion-arch.json").to_str().unwrap().to_owned(),
        )
    })
}

fn explore_with_objective(objective: &str) -> Output {
    let (app, arch) = models();
    rdse(&[
        "explore",
        "--app",
        app,
        "--arch",
        arch,
        "--iters",
        "300",
        "--warmup",
        "60",
        "--seed",
        "1",
        "--objective",
        objective,
    ])
}

#[test]
fn malformed_objective_specs_exit_with_code_2() {
    for (spec, expect) in [
        ("bogus:1", "unknown --objective scheme"),
        ("weighted:1,2", "exactly 3 weights"),
        ("weighted:1,2,3,4", "exactly 3 weights"),
        ("weighted:1,abc,0", "is not a number"),
        ("weighted:-1,2,0", "finite non-negative"),
        ("weighted:0,0,0", "at least one positive weight"),
        ("lexi:makespan,energy", "unknown axis 'energy'"),
        ("lexi:makespan,makespan", "listed twice"),
        ("lexi:", "unknown axis"),
    ] {
        let out = explore_with_objective(spec);
        assert_eq!(
            out.status.code(),
            Some(2),
            "spec '{spec}' should exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(expect),
            "spec '{spec}': stderr missing '{expect}':\n{stderr}"
        );
    }
}

#[test]
fn valid_objective_specs_run_and_report_a_front() {
    for spec in ["makespan", "weighted:1,5,0.5", "lexi:makespan,area"] {
        let out = explore_with_objective(spec);
        assert!(
            out.status.success(),
            "spec '{spec}' failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("pareto front  :"),
            "spec '{spec}': no front report:\n{stdout}"
        );
        assert!(stdout.contains("objective     :"), "{stdout}");
    }
    // The lexicographic run also names its front-selected winner.
    let out = explore_with_objective("lexi:makespan,area");
    assert!(String::from_utf8_lossy(&out.stdout).contains("lexi winner"));
}

#[test]
fn serve_and_submit_help_exit_zero() {
    for (sub, expect) in [
        ("serve", "usage: rdse serve"),
        ("submit", "usage: rdse submit"),
        ("store", "usage: rdse store"),
    ] {
        let out = rdse(&[sub, "--help"]);
        assert!(out.status.success(), "{sub} --help failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(expect), "{sub} --help:\n{stdout}");
    }
}

#[test]
fn store_usage_errors_exit_with_code_2_and_a_named_cause() {
    let cases: &[(&[&str], &str)] = &[
        (&["store"], "missing store subcommand"),
        (&["store", "prune"], "unknown store subcommand 'prune'"),
        (&["store", "stats"], "missing --path"),
        (&["store", "compact"], "missing --path"),
        (&["store", "verify"], "missing --path"),
    ];
    for (args, expect) in cases {
        let out = rdse(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(expect), "{args:?}:\n{stderr}");
    }
    // A bad --store-sync spec is a serve usage error too.
    let out = rdse(&["serve", "--port", "0", "--store-sync", "sometimes"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--store-sync takes"),
        "{out:?}"
    );
}

#[test]
fn store_stats_compact_and_verify_roundtrip_on_a_real_log() {
    let dir: PathBuf = std::env::temp_dir().join(format!("rdse_cli_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("cli.aof");
    let path_s = path.to_str().unwrap();

    // An empty (freshly created) log: stats and verify are clean noops.
    std::fs::write(&path, b"").expect("create empty log");
    let stats = rdse(&["store", "stats", "--path", path_s]);
    assert!(stats.status.success(), "{stats:?}");
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(stdout.contains("raw records   : 0"), "{stdout}");
    assert!(stdout.contains("tail          : clean"), "{stdout}");

    let verify = rdse(&["store", "verify", "--path", path_s]);
    assert!(verify.status.success(), "{verify:?}");

    let compact = rdse(&["store", "compact", "--path", path_s]);
    assert!(compact.status.success(), "{compact:?}");

    // Garbage is not a panic: verify exits 1 naming the byte offset.
    std::fs::write(&path, b"not a store log at all").expect("write garbage");
    let verify = rdse(&["store", "verify", "--path", path_s]);
    assert_eq!(verify.status.code(), Some(1), "{verify:?}");
    assert!(
        String::from_utf8_lossy(&verify.stderr).contains("at byte 0"),
        "{verify:?}"
    );

    // A missing file is a runtime failure (1), not a usage error.
    let missing = dir.join("nope.aof");
    let verify = rdse(&["store", "verify", "--path", missing.to_str().unwrap()]);
    assert_eq!(verify.status.code(), Some(1), "{verify:?}");
}

#[test]
fn submit_usage_errors_exit_with_code_2_and_a_named_cause() {
    // None of these reach the network: the address below never
    // answers, and every case is rejected client-side first.
    let base = [
        "submit",
        "--addr",
        "127.0.0.1:9",
        "--builtin",
        "motion",
        "--clbs",
        "2000",
    ];
    let cases: &[(&[&str], &str)] = &[
        (
            &["submit", "--builtin", "motion", "--clbs", "2000"],
            "missing --addr",
        ),
        (
            &["submit", "--addr", "127.0.0.1:9", "--clbs", "2000"],
            "missing application",
        ),
        (
            &["submit", "--addr", "127.0.0.1:9", "--builtin", "motion"],
            "missing architecture",
        ),
    ];
    for (args, expect) in cases {
        let out = rdse(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(expect), "{args:?}:\n{stderr}");
    }
    // Malformed --objective: same grammar, same messages, same exit
    // code as the offline explore path.
    for (spec, expect) in [
        ("bogus:1", "unknown --objective scheme"),
        ("weighted:1,2", "exactly 3 weights"),
        ("lexi:makespan,energy", "unknown axis 'energy'"),
    ] {
        let mut args = base.to_vec();
        args.extend(["--objective", spec]);
        let out = rdse(&args);
        assert_eq!(out.status.code(), Some(2), "spec '{spec}': {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(expect), "spec '{spec}':\n{stderr}");
    }
    // A job whose encoded body exceeds the frame limit is refused
    // before connecting, with the client-side code as the cause.
    let mut args = base.to_vec();
    args.extend(["--max-frame-len", "32"]);
    let out = rdse(&args);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("job-too-large"),
        "{out:?}"
    );
}

#[test]
fn served_job_matches_offline_explore_bit_for_bit() {
    use std::io::BufRead;

    // The same end-to-end contract the CI smoke job enforces: a job
    // served over TCP reports the same `makespan bits` line as the
    // offline explorer on the same models, seed and chains.
    let mut server = Command::new(env!("CARGO_BIN_EXE_rdse"))
        .args(["serve", "--port", "0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    let stdout = server.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server prints its address")
        .expect("readable line");
    let addr = banner
        .strip_prefix("rdse serve listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let knobs = [
        "--iters",
        "300",
        "--warmup",
        "60",
        "--seed",
        "1",
        "--chains",
        "2",
        "--exchange-every",
        "100",
    ];
    let mut submit_args = vec![
        "submit",
        "--addr",
        &addr,
        "--builtin",
        "motion",
        "--clbs",
        "2000",
        "--quiet",
    ];
    submit_args.extend(knobs);
    let served = rdse(&submit_args);
    let (app, arch) = models();
    let mut explore_args = vec!["explore", "--app", app, "--arch", arch];
    explore_args.extend(knobs);
    let offline = rdse(&explore_args);

    let shutdown = rdse(&["submit", "--addr", &addr, "--shutdown"]);
    assert!(shutdown.status.success(), "{shutdown:?}");
    assert!(server.wait().expect("server exits").success());

    assert!(served.status.success(), "{served:?}");
    assert!(offline.status.success(), "{offline:?}");
    let bits_line = |out: &Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("makespan bits :"))
            .map(str::to_owned)
    };
    let served_bits = bits_line(&served).expect("served bits line");
    let offline_bits = bits_line(&offline).expect("offline bits line");
    assert_eq!(served_bits, offline_bits, "served ≠ offline");
}
