//! Golden snapshot of the `rdse sweep` report formats — guards the
//! JSON and CSV schemas introduced by the sweep command. Any field
//! rename, reorder, float-format change or Pareto-flag drift fails
//! here until the golden files under `tests/golden/` are regenerated
//! deliberately (run the command below and commit the diff).

use std::process::Command;

const GOLDEN_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/sweep.json");
const GOLDEN_CSV: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/sweep.csv");

/// The pinned tiny grid: 2 CLB counts × 2 bus rates on the motion
/// workload, 400 iterations, seed 1, one chain.
fn run_sweep(dir: &std::path::Path) -> (String, String) {
    let out = dir.join("sweep.json");
    let csv = dir.join("sweep.csv");
    let status = Command::new(env!("CARGO_BIN_EXE_rdse"))
        .args([
            "sweep",
            "--clbs",
            "800,2000",
            "--bus",
            "25,100",
            "--iters",
            "400",
            "--seed",
            "1",
            "--chains",
            "1",
            "--threads",
            "2",
            "--out",
            out.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ])
        .status()
        .expect("rdse binary runs");
    assert!(status.success(), "rdse sweep exited non-zero");
    (
        std::fs::read_to_string(&out).expect("sweep wrote JSON"),
        std::fs::read_to_string(&csv).expect("sweep wrote CSV"),
    )
}

#[test]
fn sweep_json_and_csv_match_the_golden_snapshot() {
    let dir = std::env::temp_dir().join("rdse_sweep_golden");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (json, csv) = run_sweep(&dir);
    let _ = std::fs::remove_dir_all(&dir);

    let expected_json = std::fs::read_to_string(GOLDEN_JSON).expect("golden JSON checked in");
    let expected_csv = std::fs::read_to_string(GOLDEN_CSV).expect("golden CSV checked in");
    assert_eq!(
        json, expected_json,
        "sweep JSON drifted from tests/golden/sweep.json \
         (regenerate: rdse sweep --clbs 800,2000 --bus 25,100 --iters 400 --seed 1 \
          --chains 1 --out tests/golden/sweep.json --csv tests/golden/sweep.csv)"
    );
    assert_eq!(
        csv, expected_csv,
        "sweep CSV drifted from tests/golden/sweep.csv"
    );
}

#[test]
fn sweep_report_is_structurally_sound() {
    // Schema-level checks that hold regardless of the pinned numbers:
    // 4 grid points, a non-empty Pareto front, CSV header + 4 rows.
    let expected_json = std::fs::read_to_string(GOLDEN_JSON).expect("golden JSON checked in");
    let v: serde_json::Value = serde_json::from_str(&expected_json).expect("valid JSON");
    let serde_json::Value::Map(fields) = &v else {
        panic!("sweep report is a JSON object");
    };
    let points = fields
        .iter()
        .find(|(k, _)| k == "points")
        .map(|(_, v)| v)
        .expect("report has points");
    let serde_json::Value::Seq(points) = points else {
        panic!("points is an array");
    };
    assert_eq!(points.len(), 4);

    let expected_csv = std::fs::read_to_string(GOLDEN_CSV).expect("golden CSV checked in");
    let lines: Vec<&str> = expected_csv.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 rows");
    assert!(lines[0].starts_with("clbs,bus_bytes_per_micro,makespan_ms"));
}
