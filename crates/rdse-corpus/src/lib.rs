//! # rdse-corpus — scenario corpus and differential verification
//!
//! The paper's experiments rest on one hand-built workload (motion
//! detection on the EPICURE platform). This crate turns correctness
//! into a *population* property: a registry of parameterized scenario
//! families — workload shapes × platform templates — each enumerable
//! deterministically from a `(family, params, seed)` triple, a batch
//! runner fanning scenarios across threads, and a **four-way
//! differential oracle** gating every result.
//!
//! ## The four-way oracle
//!
//! Three independent engines compute the same quantity by different
//! means, and must agree **bit for bit** on every scenario:
//!
//! | leg | engine | method |
//! |-----|--------|--------|
//! | 1 | [`rdse_mapping::Evaluator`] | incremental, arena-backed longest path (the annealing hot path) |
//! | 2 | [`rdse_mapping::evaluate`] | from-scratch search-graph construction + longest path |
//! | 3 | [`rdse_sim::simulate`] (contention-free) | discrete-event execution of the mapped schedule |
//!
//! Legs 1 and 2 share a specification but not code paths; leg 3 shares
//! *neither* — it executes the schedule event by event, so agreement is
//! strong evidence the analytic cost model means what it claims. Two
//! invariants ride along: an exclusive-bus simulation can never beat
//! the contention-free one, and every move proposal's
//! [`MoveDelta`](rdse_mapping::MoveDelta) must undo to a bit-identical
//! mapping. See [`oracle::differential_check`].
//!
//! ## Adding a scenario family
//!
//! 1. Write the generator (a pure function of params and seed) — DAG
//!    shapes live in [`rdse_workloads::random_dag`], platform templates
//!    in [`families`].
//! 2. Add a variant to [`WorkloadFamily`] or [`ArchFamily`]: `name()`,
//!    `params_label()`/`build()`, and the `defaults()`/`all()` list.
//! 3. If the family should be smoke-tested in CI, it enters
//!    [`scenario::smoke_corpus`] via `defaults()` automatically —
//!    regenerate the golden snapshot with
//!    `rdse corpus run --smoke --write-golden tests/golden/corpus_smoke.ndjson`
//!    and commit the diff.
//!
//! ## Batch runs
//!
//! ```
//! use rdse_corpus::{run_corpus, CorpusOptions, ScenarioSpec};
//! use rdse_corpus::families::{ArchFamily, WorkloadFamily};
//!
//! let specs = [ScenarioSpec {
//!     workload: WorkloadFamily::Chain { length: 5 },
//!     arch: ArchFamily::Epicure,
//!     seed: 1,
//! }];
//! let report = run_corpus(&specs, &CorpusOptions {
//!     iters: 200, warmup: 40, ..CorpusOptions::default()
//! }).expect("oracle passes");
//! assert_eq!(report.records.len(), 1);
//! // One NDJSON line per scenario; the golden projection drops only
//! // wall-clock throughput.
//! assert!(report.ndjson().lines().count() == 1);
//! ```

pub mod families;
pub mod oracle;
pub mod runner;
pub mod scenario;

pub use families::{ArchFamily, WorkloadFamily};
pub use oracle::{differential_check, front_check, OracleFailure, OracleReport};
pub use runner::{run_corpus, CorpusError, CorpusOptions, CorpusReport, ScenarioRecord};
pub use scenario::{cross_corpus, smoke_corpus, ScenarioSpec};
