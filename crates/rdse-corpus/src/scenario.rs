//! Scenario enumeration: the corpus is a deterministic list of
//! `(workload family, architecture family, seed)` triples.

use crate::families::{ArchFamily, WorkloadFamily};
use rdse_model::{Architecture, TaskGraph};

/// One corpus scenario, fully determined by its triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Application-DAG family and parameters.
    pub workload: WorkloadFamily,
    /// Platform template.
    pub arch: ArchFamily,
    /// Seed driving workload generation, platform parameter draws and
    /// the exploration master seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Stable human-readable identifier, e.g.
    /// `layered-5x4/dual-fpga/s3`.
    pub fn id(&self) -> String {
        format!(
            "{}-{}/{}/s{}",
            self.workload.name(),
            self.workload.params_label(),
            self.arch.name(),
            self.seed
        )
    }

    /// Materializes the scenario's models.
    pub fn build(&self) -> (TaskGraph, Architecture) {
        (
            self.workload.generate(self.seed),
            self.arch.build(self.seed),
        )
    }
}

/// The pinned smoke subset: every default workload family × seeds
/// `{1, 2, 3}`, with architecture families cycled so each platform
/// template is exercised three times. **This list is frozen** — the
/// checked-in golden snapshot (`tests/golden/corpus_smoke.ndjson` at
/// the workspace root) is generated from it; extending the corpus means
/// appending scenarios and regenerating the snapshot with
/// `rdse corpus run --smoke --write-golden`.
pub fn smoke_corpus() -> Vec<ScenarioSpec> {
    let arches = ArchFamily::all();
    let mut specs = Vec::new();
    for (wi, workload) in WorkloadFamily::defaults().into_iter().enumerate() {
        for (si, seed) in [1u64, 2, 3].into_iter().enumerate() {
            specs.push(ScenarioSpec {
                workload,
                arch: arches[(wi + si) % arches.len()],
                seed,
            });
        }
    }
    specs
}

/// The full cross product `workloads × arches × seeds`, in
/// deterministic registry order.
pub fn cross_corpus(
    workloads: &[WorkloadFamily],
    arches: &[ArchFamily],
    seeds: &[u64],
) -> Vec<ScenarioSpec> {
    let mut specs = Vec::with_capacity(workloads.len() * arches.len() * seeds.len());
    for &workload in workloads {
        for &arch in arches {
            for &seed in seeds {
                specs.push(ScenarioSpec {
                    workload,
                    arch,
                    seed,
                });
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_corpus_covers_six_families_by_three_seeds() {
        let specs = smoke_corpus();
        assert_eq!(specs.len(), 18);
        let workloads: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.workload.name()).collect();
        assert_eq!(workloads.len(), 6);
        let arches: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.arch.name()).collect();
        assert_eq!(arches.len(), 6, "every platform template is exercised");
        for s in &specs {
            assert!((1..=3).contains(&s.seed));
        }
        // Ids are unique — the corpus is a set, not a bag.
        let ids: std::collections::BTreeSet<String> = specs.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), specs.len());
    }

    #[test]
    fn scenarios_build_valid_models() {
        for spec in smoke_corpus() {
            let (app, arch) = spec.build();
            assert!(app.n_tasks() > 0, "{}", spec.id());
            app.validate().expect("generated DAG validates");
            assert!(!arch.processors().is_empty());
        }
    }

    #[test]
    fn cross_corpus_is_the_full_product() {
        let w = WorkloadFamily::defaults();
        let a = ArchFamily::all();
        let specs = cross_corpus(&w, &a, &[7, 8]);
        assert_eq!(specs.len(), 6 * 6 * 2);
    }
}
