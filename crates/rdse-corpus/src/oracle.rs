//! The four-way differential oracle.
//!
//! For a scenario's mapping, four independent engines must agree on
//! the makespan **bit for bit**:
//!
//! 1. the incremental, arena-backed [`Evaluator`] (the annealing hot
//!    path);
//! 2. the from-scratch [`evaluate`] (the paper's reference
//!    longest-path scoring);
//! 3. the discrete-event simulator in contention-free mode, where the
//!    simulated makespan provably equals the analytic longest path;
//! 4. the bounded-repair delta path
//!    ([`Evaluator::evaluate_delta`]) driven along the walk move by
//!    move, and [`Evaluator::evaluate_batch`] re-scoring the accepted
//!    walk states as multi-move diffs against the initial mapping.
//!
//! Two invariants ride along: simulating with an exclusive bus can
//! never beat the contention-free run, and every move proposal's
//! [`MoveDelta`](rdse_mapping::MoveDelta) must undo to a bit-identical
//! mapping. The check then repeats the comparison along a
//! deterministic random walk, so divergence hiding behind the initial
//! solution is also caught.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdse_mapping::moves::{propose_impl_move, propose_pair_move};
use rdse_mapping::{evaluate, CostVector, Dominance, Evaluator, Mapping, MoveScratch, ParetoFront};
use rdse_model::units::Micros;
use rdse_model::{Architecture, TaskGraph};
use rdse_sim::{simulate, SimConfig};

/// Absolute slack allowed on the *inequality* invariant (the equality
/// legs are bit-exact; only with-contention ≥ contention-free keeps the
/// simulator tests' epsilon).
const CONTENTION_EPS: f64 = 1e-6;

/// What the oracle measured on a passing scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleReport {
    /// The agreed contention-free makespan.
    pub makespan: Micros,
    /// Makespan under an exclusive FIFO bus (≥ `makespan`).
    pub contention_makespan: Micros,
    /// Move proposals whose delta-undo round-trip was verified.
    pub moves_checked: u32,
    /// Walk states (accepted moves) re-verified three ways.
    pub moves_applied: u32,
    /// Walk moves whose bounded-repair delta summary was verified
    /// against the full evaluation (the fourth leg).
    pub repair_checked: u32,
    /// Accepted walk states re-scored through `evaluate_batch` and
    /// verified bit-for-bit against their sequential summaries.
    pub batch_checked: u32,
}

/// Why the oracle rejected a scenario. The variants name the diverging
/// leg so a corpus failure is actionable without a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleFailure {
    /// The mapping (or a walk state) failed evaluation or simulation
    /// outright.
    Engine(String),
    /// Incremental evaluator summary differs from from-scratch.
    IncrementalVsScratch {
        /// Incremental makespan bits.
        incremental: u64,
        /// From-scratch makespan bits.
        scratch: u64,
        /// Walk step (0 = the initial mapping).
        step: u32,
    },
    /// Contention-free DES makespan differs from the analytic one.
    DesVsAnalytic {
        /// DES makespan bits.
        des: u64,
        /// Analytic makespan bits.
        analytic: u64,
        /// Walk step (0 = the initial mapping).
        step: u32,
    },
    /// An exclusive bus produced a *smaller* makespan.
    ContentionBeatsContentionFree {
        /// With-contention makespan (µs).
        contended: f64,
        /// Contention-free makespan (µs).
        free: f64,
    },
    /// Incremental and from-scratch disagree on feasibility.
    FeasibilityDisagreement {
        /// Walk step at which they disagreed.
        step: u32,
    },
    /// A move delta's undo did not restore the pre-move mapping.
    UndoDiverged {
        /// Walk step of the diverging proposal.
        step: u32,
    },
    /// A `None` proposal mutated the mapping.
    ProposalMutatedOnNone {
        /// Walk step of the mutating proposal.
        step: u32,
    },
    /// The exploration returned an empty Pareto front.
    FrontEmpty,
    /// Two front members violate mutual non-domination.
    FrontDominatedMember {
        /// Index of the dominating member.
        dominator: usize,
        /// Index of the dominated member.
        dominated: usize,
    },
    /// The front's best makespan disagrees with the exploration winner.
    FrontBestDiverged {
        /// Winner makespan bits.
        best: u64,
        /// Minimum makespan bits over the front.
        front_min: u64,
    },
    /// Bounded-repair delta summary differs from the full evaluation.
    RepairVsFull {
        /// Repair-path makespan bits.
        repair: u64,
        /// Full-evaluation makespan bits.
        full: u64,
        /// Walk step of the diverging move.
        step: u32,
    },
    /// The repair path and the full evaluation disagree on
    /// feasibility.
    RepairFeasibilityDiverged {
        /// Walk step at which they disagreed.
        step: u32,
    },
    /// `evaluate_batch` summary differs from the sequential summary of
    /// the same candidate.
    BatchVsSequential {
        /// Batch makespan bits.
        batch: u64,
        /// Sequential makespan bits.
        sequential: u64,
        /// Candidate index within the batch.
        index: usize,
    },
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleFailure::Engine(e) => write!(f, "engine error: {e}"),
            OracleFailure::IncrementalVsScratch {
                incremental,
                scratch,
                step,
            } => write!(
                f,
                "incremental evaluator diverged from from-scratch at step {step}: \
                 {incremental:#x} vs {scratch:#x}"
            ),
            OracleFailure::DesVsAnalytic {
                des,
                analytic,
                step,
            } => write!(
                f,
                "contention-free DES diverged from analytic longest path at step {step}: \
                 {des:#x} vs {analytic:#x}"
            ),
            OracleFailure::ContentionBeatsContentionFree { contended, free } => write!(
                f,
                "exclusive-bus makespan {contended} beat contention-free {free}"
            ),
            OracleFailure::FeasibilityDisagreement { step } => write!(
                f,
                "incremental and from-scratch evaluation disagree on feasibility at step {step}"
            ),
            OracleFailure::UndoDiverged { step } => {
                write!(
                    f,
                    "MoveDelta undo did not round-trip the mapping at step {step}"
                )
            }
            OracleFailure::ProposalMutatedOnNone { step } => {
                write!(
                    f,
                    "rejected proposal (None) mutated the mapping at step {step}"
                )
            }
            OracleFailure::FrontEmpty => write!(f, "exploration returned an empty Pareto front"),
            OracleFailure::FrontDominatedMember {
                dominator,
                dominated,
            } => write!(
                f,
                "front member {dominator} dominates member {dominated} (archive invariant broken)"
            ),
            OracleFailure::FrontBestDiverged { best, front_min } => write!(
                f,
                "front minimum makespan {front_min:#x} disagrees with winner {best:#x}"
            ),
            OracleFailure::RepairVsFull { repair, full, step } => write!(
                f,
                "bounded-repair delta diverged from full evaluation at step {step}: \
                 {repair:#x} vs {full:#x}"
            ),
            OracleFailure::RepairFeasibilityDiverged { step } => write!(
                f,
                "repair path and full evaluation disagree on feasibility at step {step}"
            ),
            OracleFailure::BatchVsSequential {
                batch,
                sequential,
                index,
            } => write!(
                f,
                "evaluate_batch diverged from sequential evaluation on candidate {index}: \
                 {batch:#x} vs {sequential:#x}"
            ),
        }
    }
}

impl std::error::Error for OracleFailure {}

/// Checks the Pareto-front invariants of an exploration result:
///
/// 1. the front is non-empty (the initial solution always enters);
/// 2. no member dominates another (the archive's defining property);
/// 3. the minimum makespan over the front equals the winner's makespan
///    bit for bit — the scalar optimum is never lost to the archive.
///
/// # Errors
///
/// Returns the first violated invariant as an [`OracleFailure`].
pub fn front_check(
    front: &ParetoFront<CostVector>,
    best: &CostVector,
) -> Result<(), OracleFailure> {
    if front.is_empty() {
        return Err(OracleFailure::FrontEmpty);
    }
    for (i, a) in front.iter().enumerate() {
        for (j, b) in front.iter().enumerate() {
            if i != j && a.dominates(b) {
                return Err(OracleFailure::FrontDominatedMember {
                    dominator: i,
                    dominated: j,
                });
            }
        }
    }
    let front_min = front
        .iter()
        .map(|v| v.makespan)
        .fold(f64::INFINITY, f64::min);
    if front_min.to_bits() != best.makespan.to_bits() {
        return Err(OracleFailure::FrontBestDiverged {
            best: best.makespan.to_bits(),
            front_min: front_min.to_bits(),
        });
    }
    Ok(())
}

/// Three-way agreement at one mapping; returns the agreed makespan and
/// the with-contention makespan.
fn check_state(
    app: &TaskGraph,
    arch: &Architecture,
    evaluator: &mut Evaluator<'_>,
    mapping: &Mapping,
    step: u32,
) -> Result<(Micros, Micros), OracleFailure> {
    let incremental = evaluator
        .evaluate(mapping)
        .map_err(|e| OracleFailure::Engine(format!("incremental evaluation: {e}")))?;
    let scratch = match evaluate(app, arch, mapping) {
        Ok(e) => e,
        Err(_) => return Err(OracleFailure::FeasibilityDisagreement { step }),
    };
    if incremental != scratch.summary() {
        return Err(OracleFailure::IncrementalVsScratch {
            incremental: incremental.makespan.value().to_bits(),
            scratch: scratch.makespan.value().to_bits(),
            step,
        });
    }
    let des = simulate(app, arch, mapping, &SimConfig::contention_free())
        .map_err(|e| OracleFailure::Engine(format!("contention-free simulation: {e}")))?;
    if des.makespan.value().to_bits() != scratch.makespan.value().to_bits() {
        return Err(OracleFailure::DesVsAnalytic {
            des: des.makespan.value().to_bits(),
            analytic: scratch.makespan.value().to_bits(),
            step,
        });
    }
    let contended = simulate(app, arch, mapping, &SimConfig::with_contention())
        .map_err(|e| OracleFailure::Engine(format!("exclusive-bus simulation: {e}")))?;
    if contended.makespan.value() < des.makespan.value() - CONTENTION_EPS {
        return Err(OracleFailure::ContentionBeatsContentionFree {
            contended: contended.makespan.value(),
            free: des.makespan.value(),
        });
    }
    Ok((des.makespan, contended.makespan))
}

/// Runs the full differential check on `mapping`, then walks
/// `walk_steps` deterministic move proposals (seeded by `walk_seed`),
/// verifying the delta-undo round trip on every proposal and the
/// four-way agreement on every feasible walk state.
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered; a pass means every
/// leg agreed bit-for-bit on every checked state.
pub fn differential_check(
    app: &TaskGraph,
    arch: &Architecture,
    mapping: &Mapping,
    walk_seed: u64,
    walk_steps: u32,
) -> Result<OracleReport, OracleFailure> {
    let mut evaluator = Evaluator::new(app, arch);
    let (makespan, contention_makespan) = check_state(app, arch, &mut evaluator, mapping, 0)?;

    // The fourth leg's evaluator advances move by move through
    // evaluate_delta (the certified ordered sweep / full fall-back
    // machinery), never through a fresh full synchronization, so a
    // repair bug cannot hide behind the full passes the other legs do.
    let mut repair_eval = Evaluator::new(app, arch);
    repair_eval
        .evaluate(mapping)
        .map_err(|e| OracleFailure::Engine(format!("repair-leg synchronization: {e}")))?;
    let mut repair_checked = 0;
    // Accepted walk states (capped) re-scored through evaluate_batch
    // as multi-move diffs against the initial mapping.
    const BATCH_CAP: usize = 8;
    let mut batch_states: Vec<(Mapping, u64)> = Vec::new();

    let mut walk = mapping.clone();
    let mut rng = StdRng::seed_from_u64(walk_seed);
    let mut scratch = MoveScratch::default();
    let mut moves_checked = 0;
    let mut moves_applied = 0;
    for step in 1..=walk_steps {
        let before = walk.clone();
        let outcome = if step % 2 == 0 {
            propose_pair_move(app, arch, &mut walk, &mut rng, &mut scratch)
        } else {
            propose_impl_move(app, arch, &mut walk, &mut rng, &mut scratch)
        };
        let Some(outcome) = outcome else {
            if walk != before {
                return Err(OracleFailure::ProposalMutatedOnNone { step });
            }
            continue;
        };
        moves_checked += 1;
        // Undo round-trip on a copy: the delta must restore the exact
        // pre-move mapping (slot positions included).
        let mut undone = walk.clone();
        outcome.delta.undo(&mut undone);
        if undone != before {
            return Err(OracleFailure::UndoDiverged { step });
        }
        // Gate on the cheap incremental leg (exactly what the
        // annealer's hot path does), then cross-check feasibility in
        // BOTH directions: an incremental engine that wrongly accepts
        // what from-scratch rejects — or vice versa — is a divergence,
        // not a rejection. Feasible states are kept and re-verified
        // three ways (check_state runs from-scratch once and catches
        // the accepts-but-scratch-rejects direction); infeasible ones
        // are reversed exactly as the annealer's rejection path does.
        let repair = repair_eval.evaluate_delta(&walk, outcome.delta.task());
        match evaluator.evaluate(&walk) {
            Ok(full) => {
                // Fourth leg: the bounded-repair summary of this move
                // must equal the full evaluation bit for bit.
                match repair {
                    Ok(summary) if summary == full => repair_checked += 1,
                    Ok(summary) => {
                        return Err(OracleFailure::RepairVsFull {
                            repair: summary.makespan.value().to_bits(),
                            full: full.makespan.value().to_bits(),
                            step,
                        });
                    }
                    Err(_) => return Err(OracleFailure::RepairFeasibilityDiverged { step }),
                }
                check_state(app, arch, &mut evaluator, &walk, step)?;
                moves_applied += 1;
                if batch_states.len() < BATCH_CAP {
                    batch_states.push((walk.clone(), full.makespan.value().to_bits()));
                }
            }
            Err(_) => {
                // The repair leg must reject too (its error path
                // self-reverts, keeping it synced to the last accepted
                // state).
                if repair.is_ok() {
                    return Err(OracleFailure::RepairFeasibilityDiverged { step });
                }
                if evaluate(app, arch, &walk).is_ok() {
                    return Err(OracleFailure::FeasibilityDisagreement { step });
                }
                outcome.delta.undo(&mut walk);
                if walk != before {
                    return Err(OracleFailure::UndoDiverged { step });
                }
            }
        }
    }

    // Batch leg: one evaluate_batch call re-scores the accepted walk
    // states as arbitrary multi-move diffs against the initial
    // mapping; every summary must reproduce the sequential result.
    let mut batch_checked = 0;
    if !batch_states.is_empty() {
        let mut batch_eval = Evaluator::new(app, arch);
        let candidates: Vec<Mapping> = batch_states.iter().map(|(m, _)| m.clone()).collect();
        let results = batch_eval
            .evaluate_batch(mapping, &candidates)
            .map_err(|e| OracleFailure::Engine(format!("batch evaluation: {e}")))?;
        for (index, (result, (_, expected))) in results.iter().zip(&batch_states).enumerate() {
            match result {
                Ok(summary) if summary.makespan.value().to_bits() == *expected => {
                    batch_checked += 1;
                }
                Ok(summary) => {
                    return Err(OracleFailure::BatchVsSequential {
                        batch: summary.makespan.value().to_bits(),
                        sequential: *expected,
                        index,
                    });
                }
                Err(e) => {
                    return Err(OracleFailure::Engine(format!(
                        "batch evaluation of accepted state {index}: {e}"
                    )));
                }
            }
        }
    }

    Ok(OracleReport {
        makespan,
        contention_makespan,
        moves_checked,
        moves_applied,
        repair_checked,
        batch_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::smoke_corpus;
    use rdse_mapping::random_initial;

    #[test]
    fn oracle_passes_on_random_initial_solutions() {
        // A slice of the smoke corpus, checked at the initial solution
        // (the full corpus is exercised by the batch runner's tests).
        for spec in smoke_corpus().into_iter().take(6) {
            let (app, arch) = spec.build();
            let mut rng = StdRng::seed_from_u64(spec.seed);
            let mapping = random_initial(&app, &arch, &mut rng);
            let report = differential_check(&app, &arch, &mapping, spec.seed ^ 0x0DD5, 24)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.id()));
            assert!(report.makespan.value() > 0.0);
            assert!(report.contention_makespan >= report.makespan);
        }
    }

    #[test]
    fn front_check_enforces_the_invariants() {
        let v = |mk: f64, area: f64| CostVector {
            makespan: mk,
            clb_area: area,
            reconfig_overhead: 1.0,
            contexts: 1.0,
        };
        // Empty front.
        let empty: ParetoFront<CostVector> = ParetoFront::new();
        assert_eq!(
            front_check(&empty, &v(1.0, 1.0)),
            Err(OracleFailure::FrontEmpty)
        );
        // A healthy front containing the winner passes.
        let mut front = ParetoFront::new();
        front.insert(v(10.0, 50.0));
        front.insert(v(20.0, 20.0));
        front_check(&front, &v(10.0, 50.0)).expect("valid front passes");
        // Winner missing from the front (smaller makespan than any
        // member) is a divergence.
        let err = front_check(&front, &v(5.0, 50.0)).unwrap_err();
        assert!(
            matches!(err, OracleFailure::FrontBestDiverged { .. }),
            "{err}"
        );
    }

    #[test]
    fn oracle_detects_a_broken_contention_free_equality() {
        // Sanity: the failure enum formats actionably.
        let f = OracleFailure::DesVsAnalytic {
            des: 1,
            analytic: 2,
            step: 7,
        };
        assert!(f.to_string().contains("step 7"));
    }
}
