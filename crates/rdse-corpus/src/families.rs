//! The scenario family registry: parameterized workload and
//! architecture generators, each a pure function of `(family, params,
//! seed)`.
//!
//! A **workload family** names a DAG shape (layered, series-parallel,
//! fork-join, pipeline, wide-fanout, chain) plus its size parameters;
//! an **architecture family** names a platform template (processor mix,
//! device count, CLB capacity band, reconfiguration speed `tR`, bus
//! rate) whose concrete numbers are drawn deterministically from the
//! scenario seed. The cross product of the two, times a seed list, is
//! the corpus.

use rdse_model::units::{Clbs, Micros};
use rdse_model::{Architecture, TaskGraph};
use rdse_workloads::{
    chain_dag, fork_join_dag, layered_dag, pipeline_dag, series_parallel_dag, wide_fanout_dag,
    LayeredDagConfig,
};

/// SplitMix64 finalizer: decorrelates the per-parameter draws of one
/// scenario seed (same mixer as the portfolio chain seeds).
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = (seed ^ salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pick from a small choice set.
fn pick<T: Copy>(choices: &[T], seed: u64, salt: u64) -> T {
    choices[(mix(seed, salt) % choices.len() as u64) as usize]
}

/// A parameterized application-DAG generator.
///
/// Every variant is enumerable: the same `(family, params, seed)`
/// triple always generates the same task graph, byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadFamily {
    /// Tasks arranged in layers, edges between consecutive layers.
    Layered {
        /// Number of layers.
        layers: usize,
        /// Tasks per layer.
        width: usize,
    },
    /// A chain of fork-join sections with random branch counts.
    SeriesParallel {
        /// Number of fork-join sections.
        sections: usize,
        /// Maximum branches per section.
        max_branches: usize,
    },
    /// One fork-join block: `width` parallel chains of `depth` tasks.
    ForkJoin {
        /// Parallel branches.
        width: usize,
        /// Tasks per branch.
        depth: usize,
    },
    /// Independent streaming lanes sharing a source and sink.
    Pipeline {
        /// Tasks per lane.
        stages: usize,
        /// Parallel lanes.
        lanes: usize,
    },
    /// Scatter-gather: source → `fanout` independent tasks → sink.
    WideFanout {
        /// Number of parallel middle tasks.
        fanout: usize,
    },
    /// A fully sequential chain.
    Chain {
        /// Chain length.
        length: usize,
    },
}

impl WorkloadFamily {
    /// The six default-parameter families, in registry order.
    pub fn defaults() -> Vec<WorkloadFamily> {
        vec![
            WorkloadFamily::Layered {
                layers: 5,
                width: 4,
            },
            WorkloadFamily::SeriesParallel {
                sections: 4,
                max_branches: 3,
            },
            WorkloadFamily::ForkJoin { width: 4, depth: 3 },
            WorkloadFamily::Pipeline {
                stages: 4,
                lanes: 3,
            },
            WorkloadFamily::WideFanout { fanout: 10 },
            WorkloadFamily::Chain { length: 12 },
        ]
    }

    /// Family name (stable identifier used in NDJSON and the CLI).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadFamily::Layered { .. } => "layered",
            WorkloadFamily::SeriesParallel { .. } => "series-parallel",
            WorkloadFamily::ForkJoin { .. } => "fork-join",
            WorkloadFamily::Pipeline { .. } => "pipeline",
            WorkloadFamily::WideFanout { .. } => "wide-fanout",
            WorkloadFamily::Chain { .. } => "chain",
        }
    }

    /// Compact parameter label, e.g. `5x4` for a 5-layer × 4-wide
    /// layered DAG.
    pub fn params_label(&self) -> String {
        match *self {
            WorkloadFamily::Layered { layers, width } => format!("{layers}x{width}"),
            WorkloadFamily::SeriesParallel {
                sections,
                max_branches,
            } => format!("{sections}x{max_branches}"),
            WorkloadFamily::ForkJoin { width, depth } => format!("{width}x{depth}"),
            WorkloadFamily::Pipeline { stages, lanes } => format!("{stages}x{lanes}"),
            WorkloadFamily::WideFanout { fanout } => format!("{fanout}"),
            WorkloadFamily::Chain { length } => format!("{length}"),
        }
    }

    /// Resolves a family name to its default-parameter variant.
    pub fn parse(name: &str) -> Option<WorkloadFamily> {
        WorkloadFamily::defaults()
            .into_iter()
            .find(|f| f.name() == name)
    }

    /// Generates the task graph of `(self, seed)`.
    pub fn generate(&self, seed: u64) -> TaskGraph {
        match *self {
            WorkloadFamily::Layered { layers, width } => layered_dag(
                &LayeredDagConfig {
                    layers,
                    width,
                    edge_percent: 40,
                    hw_percent: 70,
                },
                seed,
            ),
            WorkloadFamily::SeriesParallel {
                sections,
                max_branches,
            } => series_parallel_dag(sections, max_branches, seed),
            WorkloadFamily::ForkJoin { width, depth } => fork_join_dag(width, depth, seed),
            WorkloadFamily::Pipeline { stages, lanes } => pipeline_dag(stages, lanes, seed),
            WorkloadFamily::WideFanout { fanout } => wide_fanout_dag(fanout, seed),
            WorkloadFamily::Chain { length } => chain_dag(length, seed),
        }
    }
}

/// A parameterized platform template.
///
/// Concrete component sizes are drawn deterministically from the
/// scenario seed inside each family's band, so one family already
/// covers a grid of platforms as the seed list grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchFamily {
    /// The paper's reference: ARM922 + one Virtex-E class device
    /// (CLB count varies by seed), 25 B/µs shared bus.
    Epicure,
    /// A capacity-starved device with fast partial reconfiguration —
    /// many small contexts.
    SmallFpga,
    /// One processor and two reconfigurable devices of different
    /// capacity and `tR`.
    DualFpga,
    /// Two processors sharing one device — exercises the m1/m2
    /// processor moves across resources.
    DualProcessor,
    /// A bus-starved platform: communication dominates.
    SlowBus,
    /// Processor + device + dedicated ASIC (maximal-parallelism
    /// resource).
    AsicAssisted,
}

impl ArchFamily {
    /// All architecture families, in registry order.
    pub fn all() -> [ArchFamily; 6] {
        [
            ArchFamily::Epicure,
            ArchFamily::SmallFpga,
            ArchFamily::DualFpga,
            ArchFamily::DualProcessor,
            ArchFamily::SlowBus,
            ArchFamily::AsicAssisted,
        ]
    }

    /// Family name (stable identifier used in NDJSON and the CLI).
    pub fn name(&self) -> &'static str {
        match self {
            ArchFamily::Epicure => "epicure",
            ArchFamily::SmallFpga => "small-fpga",
            ArchFamily::DualFpga => "dual-fpga",
            ArchFamily::DualProcessor => "dual-processor",
            ArchFamily::SlowBus => "slow-bus",
            ArchFamily::AsicAssisted => "asic-assisted",
        }
    }

    /// Resolves a family name.
    pub fn parse(name: &str) -> Option<ArchFamily> {
        ArchFamily::all().into_iter().find(|f| f.name() == name)
    }

    /// Builds the architecture of `(self, seed)`.
    pub fn build(&self, seed: u64) -> Architecture {
        let b = match self {
            ArchFamily::Epicure => Architecture::builder("epicure")
                .processor("arm922", 10.0)
                .drlc(
                    "virtex-e",
                    Clbs::new(pick(&[1200, 1600, 2000, 3000], seed, 1)),
                    Micros::new(22.5),
                    25.0,
                )
                .bus_rate(25.0),
            ArchFamily::SmallFpga => Architecture::builder("small-fpga")
                .processor("cpu", 5.0)
                .drlc(
                    "tiny",
                    Clbs::new(pick(&[250, 350, 450], seed, 2)),
                    Micros::new(pick(&[2.0, 5.0], seed, 3)),
                    8.0,
                )
                .bus_rate(pick(&[25.0, 50.0], seed, 4)),
            ArchFamily::DualFpga => Architecture::builder("dual-fpga")
                .processor("cpu", 10.0)
                .drlc(
                    "big",
                    Clbs::new(pick(&[800, 1200], seed, 5)),
                    Micros::new(10.0),
                    20.0,
                )
                .drlc(
                    "small",
                    Clbs::new(pick(&[300, 500], seed, 6)),
                    Micros::new(pick(&[2.0, 4.0], seed, 7)),
                    8.0,
                )
                .bus_rate(50.0),
            ArchFamily::DualProcessor => Architecture::builder("dual-processor")
                .processor("cpu0", 10.0)
                .processor("cpu1", 10.0)
                .drlc(
                    "fpga",
                    Clbs::new(pick(&[600, 1000], seed, 8)),
                    Micros::new(12.0),
                    15.0,
                )
                .bus_rate(pick(&[25.0, 50.0], seed, 9)),
            ArchFamily::SlowBus => Architecture::builder("slow-bus")
                .processor("cpu", 10.0)
                .drlc("fpga", Clbs::new(1000), Micros::new(12.0), 15.0)
                .bus_rate(pick(&[2.0, 5.0, 8.0], seed, 10)),
            ArchFamily::AsicAssisted => Architecture::builder("asic-assisted")
                .processor("cpu", 10.0)
                .drlc(
                    "fpga",
                    Clbs::new(pick(&[500, 900], seed, 11)),
                    Micros::new(8.0),
                    12.0,
                )
                .asic("accel", 30.0)
                .bus_rate(50.0),
        };
        b.build().expect("family templates are valid architectures")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_families_each() {
        assert_eq!(WorkloadFamily::defaults().len(), 6);
        assert_eq!(ArchFamily::all().len(), 6);
        // Names are unique.
        let w: std::collections::BTreeSet<_> = WorkloadFamily::defaults()
            .iter()
            .map(|f| f.name())
            .collect();
        assert_eq!(w.len(), 6);
        let a: std::collections::BTreeSet<_> = ArchFamily::all().iter().map(|f| f.name()).collect();
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for f in WorkloadFamily::defaults() {
            assert_eq!(WorkloadFamily::parse(f.name()), Some(f));
        }
        for a in ArchFamily::all() {
            assert_eq!(ArchFamily::parse(a.name()), Some(a));
        }
        assert_eq!(WorkloadFamily::parse("nope"), None);
        assert_eq!(ArchFamily::parse("nope"), None);
    }

    #[test]
    fn generation_is_deterministic_per_triple() {
        for f in WorkloadFamily::defaults() {
            let a = f.generate(3).to_json().unwrap();
            let b = f.generate(3).to_json().unwrap();
            assert_eq!(a, b, "{} not deterministic", f.name());
            assert_ne!(a, f.generate(4).to_json().unwrap());
        }
        for fam in ArchFamily::all() {
            assert_eq!(
                fam.build(5),
                fam.build(5),
                "{} not deterministic",
                fam.name()
            );
        }
    }

    #[test]
    fn arch_families_cover_the_advertised_mixes() {
        assert_eq!(ArchFamily::DualFpga.build(1).drlcs().len(), 2);
        assert_eq!(ArchFamily::DualProcessor.build(1).processors().len(), 2);
        assert_eq!(ArchFamily::AsicAssisted.build(1).asics().len(), 1);
        assert!(ArchFamily::SlowBus.build(1).bus().bytes_per_micro() < 10.0);
    }

    #[test]
    fn seeds_vary_platform_parameters_within_a_family() {
        // Across a handful of seeds the Epicure CLB count must not be
        // constant — the band is part of the family definition.
        let counts: Vec<u32> = (0..8)
            .map(|s| ArchFamily::Epicure.build(s).drlcs()[0].n_clbs().value())
            .collect();
        assert!(counts.windows(2).any(|w| w[0] != w[1]), "{counts:?}");
    }
}
