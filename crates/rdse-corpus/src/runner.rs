//! The batch runner: fans scenarios across a worker pool, explores
//! each with the portfolio engine, gates every result behind the
//! four-way differential oracle and emits an NDJSON result matrix.
//!
//! Determinism: each scenario's exploration is a pure function of its
//! spec (the portfolio engine is thread-count invariant), scenarios are
//! indexed up front and records are sorted back into corpus order, so
//! the deterministic projection of the matrix ([`CorpusReport::golden_text`])
//! is **bit-identical regardless of the worker-thread count**. Only
//! `steps_per_sec` is wall-clock dependent, and it is excluded from the
//! golden projection.

use crate::oracle::{differential_check, front_check};
use crate::scenario::ScenarioSpec;
use rdse_mapping::{
    explore_parallel, hypervolume, Cost, CostVector, ExploreOptions, ParallelOptions, Pool,
};
use rdse_model::units::Micros;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Salt decorrelating the oracle's walk RNG from the exploration seed.
const ORACLE_WALK_SALT: u64 = 0x0AC1_E5EE_D000_0001;

/// Batch-run options.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Total annealing iterations per scenario (split across chains).
    pub iters: u64,
    /// Warm-up iterations per scenario.
    pub warmup: u64,
    /// Portfolio chains per scenario.
    pub chains: usize,
    /// Per-chain iterations between best-solution exchanges.
    pub exchange_every: u64,
    /// Worker threads fanning scenarios out (`0` = available
    /// parallelism). Never affects results, only wall-clock time.
    pub threads: usize,
    /// Length of the oracle's delta-undo walk per scenario.
    pub walk_steps: u32,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            iters: 600,
            warmup: 120,
            chains: 2,
            exchange_every: 150,
            threads: 0,
            walk_steps: 32,
        }
    }
}

/// One scenario's row of the result matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// Position in the corpus (records are emitted in this order).
    pub index: usize,
    /// Scenario identifier (see [`ScenarioSpec::id`]).
    pub id: String,
    /// Workload family name.
    pub workload: String,
    /// Workload parameter label.
    pub params: String,
    /// Architecture family name.
    pub arch: String,
    /// Scenario seed.
    pub seed: u64,
    /// Task count of the generated DAG.
    pub n_tasks: usize,
    /// Edge count of the generated DAG.
    pub n_edges: usize,
    /// Best makespan found (µs), agreed bit-for-bit by all three
    /// engines.
    pub makespan: Micros,
    /// Contexts of the best mapping.
    pub n_contexts: usize,
    /// Hardware tasks of the best mapping.
    pub n_hw_tasks: usize,
    /// Peak context CLB occupancy of the best mapping (the clb_area
    /// objective).
    pub clb_area: u32,
    /// Reconfiguration overhead of the best mapping (µs; the reconfig
    /// objective: initial + dynamic).
    pub reconfig_us: f64,
    /// Members of the portfolio Pareto front (makespan × area ×
    /// reconfig × contexts), invariant-checked by the oracle.
    pub front_size: usize,
    /// Exact hypervolume of that front against the deterministic
    /// reference point "per-axis max over the members, + 1" (NDJSON
    /// only; the golden projection predates the front metrics and
    /// stays byte-stable).
    pub front_hypervolume: f64,
    /// Annealing iterations executed (all chains).
    pub iterations: u64,
    /// Accepted moves (all chains).
    pub accepted: u64,
    /// Rejected moves (all chains).
    pub rejected: u64,
    /// Infeasible proposals (all chains).
    pub infeasible: u64,
    /// Makespan under an exclusive FIFO bus (µs).
    pub contention_makespan: Micros,
    /// Move proposals whose delta-undo round trip was verified.
    pub oracle_moves_checked: u32,
    /// Walk states re-verified three ways.
    pub oracle_moves_applied: u32,
    /// Walk moves verified through the bounded-repair leg (NDJSON
    /// only; the golden projection predates the fourth leg and stays
    /// byte-stable).
    pub oracle_repair_checked: u32,
    /// Accepted states re-verified through `evaluate_batch` (NDJSON
    /// only, like `oracle_repair_checked`).
    pub oracle_batch_checked: u32,
    /// Annealing steps per second (wall-clock; **not** part of the
    /// golden projection).
    pub steps_per_sec: f64,
}

impl ScenarioRecord {
    /// The deterministic projection of this record: everything except
    /// wall-clock throughput. This is the line format of the golden
    /// snapshot.
    pub fn golden_line(&self) -> String {
        format!(
            "{{\"index\":{},\"id\":\"{}\",\"workload\":\"{}\",\"params\":\"{}\",\
             \"arch\":\"{}\",\"seed\":{},\"n_tasks\":{},\"n_edges\":{},\
             \"makespan_us\":{},\"makespan_bits\":\"{:#018x}\",\"n_contexts\":{},\
             \"n_hw_tasks\":{},\"clb_area\":{},\"reconfig_us\":{},\"front_size\":{},\
             \"iterations\":{},\"accepted\":{},\"rejected\":{},\
             \"infeasible\":{},\"contention_makespan_us\":{},\"oracle_moves_checked\":{},\
             \"oracle_moves_applied\":{},\"oracle\":\"pass\"}}",
            self.index,
            self.id,
            self.workload,
            self.params,
            self.arch,
            self.seed,
            self.n_tasks,
            self.n_edges,
            self.makespan.value(),
            self.makespan.value().to_bits(),
            self.n_contexts,
            self.n_hw_tasks,
            self.clb_area,
            self.reconfig_us,
            self.front_size,
            self.iterations,
            self.accepted,
            self.rejected,
            self.infeasible,
            self.contention_makespan.value(),
            self.oracle_moves_checked,
            self.oracle_moves_applied,
        )
    }

    /// The full NDJSON line: the golden projection plus wall-clock
    /// throughput and the fourth-leg oracle counters (suffix-only
    /// additions, so the golden snapshot stays byte-identical).
    pub fn ndjson_line(&self) -> String {
        let mut line = self.golden_line();
        line.truncate(line.len() - 1); // strip the closing brace
        line.push_str(&format!(
            ",\"steps_per_sec\":{:.0},\"oracle_repair_checked\":{},\
             \"oracle_batch_checked\":{},\"front_hypervolume\":{:.3}}}",
            self.steps_per_sec,
            self.oracle_repair_checked,
            self.oracle_batch_checked,
            self.front_hypervolume
        ));
        line
    }
}

/// The full batch result, in corpus order.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// One record per scenario, sorted by corpus index.
    pub records: Vec<ScenarioRecord>,
    /// Wall-clock duration of the whole batch.
    pub elapsed: Duration,
}

impl CorpusReport {
    /// The full NDJSON matrix (one record per line, trailing newline).
    pub fn ndjson(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.ndjson_line());
            out.push('\n');
        }
        out
    }

    /// The deterministic golden projection (one line per record).
    pub fn golden_text(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.golden_line());
            out.push('\n');
        }
        out
    }

    /// Diffs the golden projection against `expected`, reporting the
    /// first divergence (line number plus both lines) — the corpus
    /// equivalent of a snapshot-test failure message.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatching
    /// line (or a length mismatch).
    pub fn diff_golden(&self, expected: &str) -> Result<(), String> {
        let actual = self.golden_text();
        let a_lines: Vec<&str> = actual.lines().collect();
        let e_lines: Vec<&str> = expected.lines().collect();
        for (i, (a, e)) in a_lines.iter().zip(&e_lines).enumerate() {
            if a != e {
                return Err(format!(
                    "golden mismatch at line {}:\n  expected: {}\n  actual:   {}",
                    i + 1,
                    e,
                    a
                ));
            }
        }
        if a_lines.len() != e_lines.len() {
            return Err(format!(
                "golden length mismatch: expected {} records, got {}",
                e_lines.len(),
                a_lines.len()
            ));
        }
        Ok(())
    }
}

/// A scenario that failed to explore or failed its oracle.
#[derive(Debug, Clone)]
pub struct CorpusError {
    /// Identifier of the failing scenario.
    pub scenario: String,
    /// What went wrong (exploration error or oracle divergence).
    pub message: String,
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario {}: {}", self.scenario, self.message)
    }
}

impl std::error::Error for CorpusError {}

/// Explores one scenario and gates it behind the oracle.
fn run_scenario(
    index: usize,
    spec: &ScenarioSpec,
    opts: &CorpusOptions,
) -> Result<ScenarioRecord, CorpusError> {
    let fail = |message: String| CorpusError {
        scenario: spec.id(),
        message,
    };
    let (app, arch) = spec.build();
    let popts = ParallelOptions {
        base: ExploreOptions {
            max_iterations: opts.iters,
            warmup_iterations: opts.warmup,
            seed: spec.seed,
            ..ExploreOptions::default()
        },
        chains: opts.chains,
        // Scenarios are the unit of parallelism; one thread per
        // portfolio keeps workers independent (and the portfolio is
        // thread-count invariant anyway).
        threads: 1,
        exchange_every: opts.exchange_every,
        warm_start: None,
        front_exchange: false,
    };
    let portfolio =
        explore_parallel(&app, &arch, &popts).map_err(|e| fail(format!("exploration: {e}")))?;

    let oracle = differential_check(
        &app,
        &arch,
        &portfolio.mapping,
        spec.seed ^ ORACLE_WALK_SALT,
        opts.walk_steps,
    )
    .map_err(|e| fail(format!("oracle: {e}")))?;

    // Front invariants ride along with the four-way check: the merged
    // portfolio archive must be mutually non-dominated and must carry
    // the scalar winner.
    let best_vector = CostVector::from_summary(&portfolio.evaluation.summary());
    front_check(&portfolio.front, &best_vector).map_err(|e| fail(format!("oracle: {e}")))?;

    let iterations: u64 = portfolio.chains.iter().map(|c| c.run.iterations).sum();
    let accepted: u64 = portfolio.chains.iter().map(|c| c.run.accepted).sum();
    let rejected: u64 = portfolio.chains.iter().map(|c| c.run.rejected).sum();
    let infeasible: u64 = portfolio.chains.iter().map(|c| c.run.infeasible).sum();
    let secs = portfolio.elapsed.as_secs_f64();

    Ok(ScenarioRecord {
        index,
        id: spec.id(),
        workload: spec.workload.name().to_owned(),
        params: spec.workload.params_label(),
        arch: spec.arch.name().to_owned(),
        seed: spec.seed,
        n_tasks: app.n_tasks(),
        n_edges: app.edges().len(),
        makespan: oracle.makespan,
        n_contexts: portfolio.evaluation.n_contexts,
        n_hw_tasks: portfolio.evaluation.n_hw_tasks,
        clb_area: portfolio.evaluation.clb_area.value(),
        reconfig_us: best_vector.reconfig_overhead,
        front_size: portfolio.front.len(),
        front_hypervolume: {
            let members = portfolio.front.members();
            let reference: Vec<f64> = (0..best_vector.n_objectives())
                .map(|m| {
                    members
                        .iter()
                        .map(|c| c.objective(m))
                        .fold(f64::NEG_INFINITY, f64::max)
                        + 1.0
                })
                .collect();
            hypervolume(members, &reference)
        },
        iterations,
        accepted,
        rejected,
        infeasible,
        contention_makespan: oracle.contention_makespan,
        oracle_moves_checked: oracle.moves_checked,
        oracle_moves_applied: oracle.moves_applied,
        oracle_repair_checked: oracle.repair_checked,
        oracle_batch_checked: oracle.batch_checked,
        steps_per_sec: if secs > 0.0 {
            iterations as f64 / secs
        } else {
            0.0
        },
    })
}

/// Runs the corpus: every scenario explored by the portfolio engine and
/// gated behind the four-way differential oracle, fanned across
/// `opts.threads` workers.
///
/// # Errors
///
/// Returns the first scenario whose exploration failed or whose oracle
/// found a divergence; a batch that returns `Ok` passed every check on
/// every scenario.
pub fn run_corpus(
    specs: &[ScenarioSpec],
    opts: &CorpusOptions,
) -> Result<CorpusReport, CorpusError> {
    let start = Instant::now();
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    }
    .clamp(1, specs.len().max(1));

    let work: Mutex<Vec<(usize, ScenarioSpec)>> =
        Mutex::new(specs.iter().copied().enumerate().collect());
    let results: Mutex<Vec<ScenarioRecord>> = Mutex::new(Vec::with_capacity(specs.len()));
    let failure: Mutex<Option<CorpusError>> = Mutex::new(None);

    // Fan out on the persistent process-wide pool (the same drainer
    // closure per worker as the historical per-batch thread spawn; the
    // sort below keeps the report thread-count invariant).
    let drainer = || loop {
        // A failure anywhere aborts the remaining corpus: a
        // matrix with a diverging scenario is worthless.
        if failure.lock().expect("failure lock").is_some() {
            break;
        }
        let Some((index, spec)) = work.lock().expect("work queue lock").pop() else {
            break;
        };
        match run_scenario(index, &spec, opts) {
            Ok(record) => results.lock().expect("results lock").push(record),
            Err(e) => {
                *failure.lock().expect("failure lock") = Some(e);
                break;
            }
        }
    };
    if threads == 1 {
        drainer();
    } else {
        Pool::global().run(
            (0..threads)
                .map(|_| Box::new(drainer) as Box<dyn FnOnce() + Send + '_>)
                .collect(),
        );
    }

    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    let mut records = results.into_inner().expect("results lock");
    records.sort_by_key(|r| r.index);
    Ok(CorpusReport {
        records,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{ArchFamily, WorkloadFamily};

    fn tiny_opts() -> CorpusOptions {
        CorpusOptions {
            iters: 200,
            warmup: 40,
            chains: 2,
            exchange_every: 50,
            threads: 2,
            walk_steps: 12,
        }
    }

    fn tiny_specs() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec {
                workload: WorkloadFamily::Chain { length: 6 },
                arch: ArchFamily::Epicure,
                seed: 1,
            },
            ScenarioSpec {
                workload: WorkloadFamily::WideFanout { fanout: 5 },
                arch: ArchFamily::SmallFpga,
                seed: 2,
            },
            ScenarioSpec {
                workload: WorkloadFamily::ForkJoin { width: 3, depth: 2 },
                arch: ArchFamily::DualFpga,
                seed: 3,
            },
        ]
    }

    #[test]
    fn batch_runs_and_orders_records() {
        let report = run_corpus(&tiny_specs(), &tiny_opts()).expect("tiny corpus passes");
        assert_eq!(report.records.len(), 3);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert!(r.makespan.value() > 0.0);
            assert!(r.contention_makespan >= report.records[i].makespan);
            assert!(r.iterations >= 200);
        }
    }

    #[test]
    fn golden_projection_is_thread_count_invariant() {
        let specs = tiny_specs();
        let golden: Vec<String> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                run_corpus(
                    &specs,
                    &CorpusOptions {
                        threads,
                        ..tiny_opts()
                    },
                )
                .expect("tiny corpus passes")
                .golden_text()
            })
            .collect();
        assert_eq!(golden[0], golden[1]);
        assert_eq!(golden[1], golden[2]);
    }

    #[test]
    fn ndjson_adds_only_throughput() {
        // The extra NDJSON columns (throughput, fourth-leg counters)
        // are strictly a suffix of the golden projection: the golden
        // snapshot's bytes never move when NDJSON-only columns land.
        let report = run_corpus(&tiny_specs()[..1], &tiny_opts()).expect("runs");
        let golden = report.records[0].golden_line();
        let full = report.records[0].ndjson_line();
        assert!(full.starts_with(golden.trim_end_matches('}')));
        assert!(full.contains("\"steps_per_sec\":"));
        assert!(full.contains("\"oracle_repair_checked\":"));
        assert!(full.contains("\"oracle_batch_checked\":"));
        assert!(full.contains("\"front_hypervolume\":"));
        assert!(!golden.contains("steps_per_sec"));
        assert!(!golden.contains("oracle_repair_checked"));
        assert!(!golden.contains("oracle_batch_checked"));
        assert!(!golden.contains("front_hypervolume"));
        // Front hypervolume is deterministic (unlike throughput): every
        // member weakly dominates the reference, so volume is positive.
        assert!(report.records[0].front_hypervolume > 0.0);
    }

    #[test]
    fn oracle_fourth_leg_runs_on_the_tiny_corpus() {
        let report = run_corpus(&tiny_specs(), &tiny_opts()).expect("tiny corpus passes");
        for r in &report.records {
            // Every accepted walk state went through the repair leg,
            // and the batch leg re-scored a (capped) prefix of them.
            assert_eq!(r.oracle_repair_checked, r.oracle_moves_applied);
            assert_eq!(
                r.oracle_batch_checked,
                (r.oracle_moves_applied as usize).min(8) as u32
            );
        }
    }

    #[test]
    fn diff_golden_reports_first_divergence() {
        let report = run_corpus(&tiny_specs()[..1], &tiny_opts()).expect("runs");
        report
            .diff_golden(&report.golden_text())
            .expect("self-diff passes");
        let err = report.diff_golden("{\"index\":99}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = report.diff_golden("").unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
    }
}
