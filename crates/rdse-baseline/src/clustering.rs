//! Deterministic temporal clustering (the \[6\] baseline's second stage).
//!
//! Hardware tasks are packed into contexts greedily, following the
//! global list order: each task joins the current (last) context if its
//! implementation fits the residual capacity, otherwise a new context
//! is opened. Because the packing follows a topological order, the
//! resulting context sequence is always feasible.

use crate::list_sched::SpatialPartition;
use rdse_mapping::Mapping;
use rdse_model::{Architecture, TaskGraph, TaskId};

/// Packs the hardware tasks of `partition` into contexts of the first
/// DRLC, mutating `mapping` (whose processor order must already contain
/// every task; hardware tasks are detached from it here).
///
/// `order` is the global list order driving the packing.
///
/// # Panics
///
/// Panics if a hardware request references a missing implementation
/// (callers sanitize first) or if the architecture has no DRLC while
/// hardware was requested.
pub fn pack_contexts(
    app: &TaskGraph,
    arch: &Architecture,
    mapping: &mut Mapping,
    order: &[TaskId],
    partition: &SpatialPartition,
) {
    let hw_tasks: Vec<TaskId> = order
        .iter()
        .copied()
        .filter(|t| partition[t.index()].is_some())
        .collect();
    if hw_tasks.is_empty() {
        return;
    }
    let drlc = 0;
    let capacity = arch
        .drlcs()
        .first()
        .expect("hardware requested but no DRLC in architecture")
        .n_clbs();
    for t in hw_tasks {
        let imp = partition[t.index()].expect("filtered to hardware tasks");
        let area = app.task(t).expect("task id in range").hw_impls()[imp].clbs();
        mapping.detach(t);
        let n_ctx = mapping.contexts(drlc).len();
        if n_ctx == 0 {
            mapping.insert_new_context(t, drlc, 0, imp);
        } else {
            let last = n_ctx - 1;
            let used = mapping.context_clbs(app, drlc, last);
            if used + area <= capacity {
                mapping.insert_hardware(t, drlc, last, imp);
            } else {
                mapping.insert_new_context(t, drlc, n_ctx, imp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::list_sched::realize_partition;
    use rdse_model::units::Clbs;
    use rdse_workloads::{epicure_architecture, motion_detection_app};

    #[test]
    fn packing_respects_capacity() {
        let app = motion_detection_app();
        for size in [200u32, 400, 800, 2000] {
            let arch = epicure_architecture(size);
            let partition: crate::SpatialPartition = app
                .task_ids()
                .map(|t| {
                    let task = app.task(t).unwrap();
                    if task.hw_impls().is_empty() {
                        None
                    } else {
                        Some(0)
                    }
                })
                .collect();
            let m = realize_partition(&app, &arch, &partition);
            m.validate(&app, &arch).unwrap();
            for c in 0..m.contexts(0).len() {
                assert!(m.context_clbs(&app, 0, c) <= Clbs::new(size));
            }
        }
    }

    #[test]
    fn smaller_device_needs_more_contexts() {
        let app = motion_detection_app();
        let partition: crate::SpatialPartition = app
            .task_ids()
            .map(|t| {
                let task = app.task(t).unwrap();
                if task.hw_impls().is_empty() {
                    None
                } else {
                    Some(0)
                }
            })
            .collect();
        let small = realize_partition(&app, &epicure_architecture(200), &partition);
        let large = realize_partition(&app, &epicure_architecture(5000), &partition);
        assert!(small.n_contexts() > large.n_contexts());
        assert_eq!(large.n_contexts(), 1);
    }
}
