//! First-improvement hill climbing over the annealer's own move set —
//! the "greedy" ablation point between random search and simulated
//! annealing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_anneal::{Cost, Problem};
use rdse_mapping::{random_initial, Evaluation, Mapping, MappingError, MappingProblem};
use rdse_model::{Architecture, TaskGraph};

/// Hill-climbing parameters.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbOptions {
    /// Move proposals per restart.
    pub moves_per_restart: u64,
    /// Number of random restarts.
    pub restarts: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HillClimbOptions {
    fn default() -> Self {
        HillClimbOptions {
            moves_per_restart: 5_000,
            restarts: 3,
            seed: 0,
        }
    }
}

/// Runs first-improvement hill climbing: random initial solution, then
/// accept a proposed move only if it strictly improves the makespan.
///
/// # Errors
///
/// Returns a [`MappingError`] if no feasible initial solution exists.
pub fn hill_climb(
    app: &TaskGraph,
    arch: &Architecture,
    opts: &HillClimbOptions,
) -> Result<(Mapping, Evaluation), MappingError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut best: Option<(Mapping, Evaluation)> = None;
    for _ in 0..opts.restarts.max(1) {
        let initial = random_initial(app, arch, &mut rng);
        let mut problem = MappingProblem::new(app, arch, initial)?;
        for _ in 0..opts.moves_per_restart {
            let class = rng.random_range(0..problem.n_move_classes());
            let before = problem.cost().scalar();
            if let Some((mv, after)) = problem.try_move(&mut rng, class) {
                if after.scalar() >= before {
                    problem.undo(mv);
                }
            }
        }
        let (mapping, eval) = problem.into_parts();
        if best
            .as_ref()
            .is_none_or(|(_, be)| eval.makespan < be.makespan)
        {
            best = Some((mapping, eval));
        }
    }
    Ok(best.expect("at least one restart ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_mapping::evaluate;
    use rdse_workloads::{epicure_architecture, motion_detection_app};

    #[test]
    fn hill_climbing_improves_over_random() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let (_, random) = crate::random_search(&app, &arch, 1, 11).unwrap();
        let (m, climbed) = hill_climb(
            &app,
            &arch,
            &HillClimbOptions {
                moves_per_restart: 3_000,
                restarts: 1,
                seed: 11,
            },
        )
        .unwrap();
        assert!(climbed.makespan <= random.makespan);
        m.validate(&app, &arch).unwrap();
        let fresh = evaluate(&app, &arch, &m).unwrap();
        assert_eq!(fresh.makespan, climbed.makespan);
    }

    #[test]
    fn restarts_keep_the_best() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1000);
        let one = hill_climb(
            &app,
            &arch,
            &HillClimbOptions {
                moves_per_restart: 500,
                restarts: 1,
                seed: 5,
            },
        )
        .unwrap()
        .1;
        let five = hill_climb(
            &app,
            &arch,
            &HillClimbOptions {
                moves_per_restart: 500,
                restarts: 5,
                seed: 5,
            },
        )
        .unwrap()
        .1;
        assert!(five.makespan <= one.makespan);
    }
}
