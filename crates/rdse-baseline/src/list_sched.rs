//! Deterministic realization of a spatial partition: priority-driven
//! list scheduling plus greedy temporal clustering.
//!
//! Given a HW/SW assignment (the GA's chromosome), this module builds
//! the unique mapping the baseline of \[6\] would evaluate: tasks are
//! linearized by a critical-path (upward-rank) list scheduler, software
//! tasks take that order on the processor, and hardware tasks are
//! packed into contexts in the same order by
//! [`pack_contexts`].

use crate::clustering::pack_contexts;
use rdse_mapping::Mapping;
use rdse_model::{Architecture, TaskGraph, TaskId};

/// A spatial partition: for every task, `None` = software or
/// `Some(impl_index)` = hardware with that implementation.
pub type SpatialPartition = Vec<Option<usize>>;

/// Upward rank of every task: the longest path (execution plus
/// communication estimates) from the task to any sink, the classic
/// list-scheduling priority.
///
/// Execution time is the partition's choice (software or the selected
/// hardware implementation); every edge is charged its full bus
/// transfer time, a conservative estimate made before placement is
/// known.
pub fn upward_ranks(
    app: &TaskGraph,
    arch: &Architecture,
    partition: &SpatialPartition,
) -> Vec<f64> {
    let exec = |t: TaskId| -> f64 {
        let task = app.task(t).expect("task id in range");
        match partition[t.index()] {
            Some(i) if i < task.hw_impls().len() => task.hw_impls()[i].time().value(),
            _ => task.sw_time().value(),
        }
    };
    let order = rdse_graph::topo_sort(&app.precedence_graph()).expect("validated app is acyclic");
    let mut rank = vec![0.0_f64; app.n_tasks()];
    for &v in order.iter().rev() {
        let t = TaskId::from(v);
        let mut best = 0.0_f64;
        for e in app.edges().iter().filter(|e| e.from == t) {
            let comm = arch.bus().transfer_time(e.bytes).value();
            best = best.max(comm + rank[e.to.index()]);
        }
        rank[t.index()] = exec(t) + best;
    }
    rank
}

/// Builds the deterministic mapping of a spatial partition.
///
/// Tasks whose requested implementation does not fit the device fall
/// back to software, so the result is always structurally valid and
/// feasible (every sequentialization edge follows one global list
/// order).
///
/// # Panics
///
/// Panics if the architecture has no processor or `partition.len()`
/// differs from the task count.
pub fn realize_partition(
    app: &TaskGraph,
    arch: &Architecture,
    partition: &SpatialPartition,
) -> Mapping {
    assert_eq!(partition.len(), app.n_tasks(), "partition length mismatch");
    assert!(
        !arch.processors().is_empty(),
        "need a processor for software tasks"
    );

    // Sanitize: hardware requests must reference an existing
    // implementation that fits the (first) device.
    let capacity = arch.drlcs().first().map(|d| d.n_clbs());
    let sanitized: SpatialPartition = app
        .task_ids()
        .map(|t| {
            let task = app.task(t).expect("task id in range");
            match (partition[t.index()], capacity) {
                (Some(i), Some(cap)) if i < task.hw_impls().len() => {
                    if task.hw_impls()[i].clbs() <= cap {
                        Some(i)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        })
        .collect();

    // Global list order: Kahn's algorithm picking the ready task with
    // the highest upward rank (ties by id for determinism).
    let ranks = upward_ranks(app, arch, &sanitized);
    let g = app.precedence_graph();
    let mut in_deg: Vec<usize> = (0..app.n_tasks())
        .map(|i| g.in_degree(rdse_graph::NodeId(i as u32)))
        .collect();
    let mut ready: Vec<TaskId> = app.task_ids().filter(|t| in_deg[t.index()] == 0).collect();
    let mut order = Vec::with_capacity(app.n_tasks());
    while !ready.is_empty() {
        let (pos, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                ranks[a.index()]
                    .total_cmp(&ranks[b.index()])
                    .then(b.0.cmp(&a.0))
            })
            .expect("ready set is non-empty");
        let t = ready.swap_remove(pos);
        order.push(t);
        for (s, _) in g.successors(t.node()) {
            in_deg[s.index()] -= 1;
            if in_deg[s.index()] == 0 {
                ready.push(TaskId::from(s));
            }
        }
    }

    let mut mapping = Mapping::all_software(
        app,
        arch,
        order
            .iter()
            .copied()
            .filter(|t| sanitized[t.index()].is_none())
            .collect::<Vec<_>>()
            .into_iter()
            .chain(
                order
                    .iter()
                    .copied()
                    .filter(|t| sanitized[t.index()].is_some()),
            )
            .collect(),
    );
    // `all_software` needs every task in the order; hardware tasks are
    // detached right away and packed into contexts.
    pack_contexts(app, arch, &mut mapping, &order, &sanitized);
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_mapping::evaluate;
    use rdse_workloads::{epicure_architecture, motion_detection_app};

    #[test]
    fn all_software_partition_reproduces_sw_makespan() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let partition: SpatialPartition = vec![None; app.n_tasks()];
        let m = realize_partition(&app, &arch, &partition);
        m.validate(&app, &arch).unwrap();
        let eval = evaluate(&app, &arch, &m).unwrap();
        assert!((eval.makespan.value() - 76_400.0).abs() < 1e-6);
    }

    #[test]
    fn all_hardware_request_is_feasible() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let partition: SpatialPartition = app
            .task_ids()
            .map(|t| {
                let task = app.task(t).unwrap();
                if task.hw_impls().is_empty() {
                    None
                } else {
                    Some(0)
                }
            })
            .collect();
        let m = realize_partition(&app, &arch, &partition);
        m.validate(&app, &arch).unwrap();
        let eval = evaluate(&app, &arch, &m).unwrap();
        assert!(eval.n_hw_tasks > 5);
        assert!(eval.makespan.value() > 0.0);
    }

    #[test]
    fn oversized_impl_falls_back_to_software() {
        let app = motion_detection_app();
        let arch = epicure_architecture(100); // tiny device
        let partition: SpatialPartition = app
            .task_ids()
            .map(|t| {
                let task = app.task(t).unwrap();
                if task.hw_impls().is_empty() {
                    None
                } else {
                    Some(task.hw_impls().len() - 1) // biggest impl
                }
            })
            .collect();
        let m = realize_partition(&app, &arch, &partition);
        m.validate(&app, &arch).unwrap();
        evaluate(&app, &arch, &m).unwrap();
    }

    #[test]
    fn upward_ranks_decrease_along_edges() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let partition: SpatialPartition = vec![None; app.n_tasks()];
        let ranks = upward_ranks(&app, &arch, &partition);
        for e in app.edges() {
            assert!(
                ranks[e.from.index()] > ranks[e.to.index()],
                "rank must strictly decrease along {} -> {}",
                e.from,
                e.to
            );
        }
    }
}
