//! The genetic-algorithm baseline of Ben Chehida & Auguin \[6\].
//!
//! Chromosome: one gene per task — software, or hardware with an
//! implementation index. Fitness: makespan of the deterministic
//! realization (list scheduling + greedy clustering, see
//! [`realize_partition`]). Selection is tournament-based with elitism,
//! single-point crossover, per-gene mutation. The published
//! configuration uses a population of 300.

use crate::list_sched::{realize_partition, SpatialPartition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_mapping::{evaluate, Evaluation, Evaluator, Mapping, MappingError};
use rdse_model::{Architecture, TaskGraph};
use std::time::{Duration, Instant};

/// GA parameters (defaults follow \[6\] where published).
#[derive(Debug, Clone)]
pub struct GaOptions {
    /// Population size (300 in \[6\]).
    pub population: usize,
    /// Maximum generations.
    pub generations: usize,
    /// Stop early after this many generations without improvement.
    pub stall_generations: usize,
    /// Crossover probability.
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size.
    pub tournament: usize,
    /// Elite individuals copied unchanged each generation.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaOptions {
    fn default() -> Self {
        GaOptions {
            population: 300,
            generations: 200,
            stall_generations: 40,
            crossover_rate: 0.9,
            mutation_rate: 0.02,
            tournament: 3,
            elitism: 2,
            seed: 0,
        }
    }
}

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaOutcome {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Generations actually executed.
    pub generations: usize,
    /// Total fitness evaluations.
    pub evaluations: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Best makespan per generation (µs), for convergence plots.
    pub history: Vec<f64>,
}

/// The GA explorer.
#[derive(Debug, Clone)]
pub struct GeneticExplorer<'a> {
    app: &'a TaskGraph,
    arch: &'a Architecture,
    opts: GaOptions,
}

impl<'a> GeneticExplorer<'a> {
    /// Creates an explorer over the given models.
    pub fn new(app: &'a TaskGraph, arch: &'a Architecture, opts: GaOptions) -> Self {
        GeneticExplorer { app, arch, opts }
    }

    fn random_individual(&self, rng: &mut StdRng) -> SpatialPartition {
        self.app
            .task_ids()
            .map(|t| {
                let task = self.app.task(t).expect("task id in range");
                if task.hw_impls().is_empty() || rng.random::<bool>() {
                    None
                } else {
                    Some(rng.random_range(0..task.hw_impls().len()))
                }
            })
            .collect()
    }

    fn mutate(&self, ind: &mut SpatialPartition, rng: &mut StdRng) {
        for t in self.app.task_ids() {
            if rng.random::<f64>() >= self.opts.mutation_rate {
                continue;
            }
            let task = self.app.task(t).expect("task id in range");
            let gene = &mut ind[t.index()];
            if task.hw_impls().is_empty() {
                *gene = None;
            } else if gene.is_none() {
                *gene = Some(rng.random_range(0..task.hw_impls().len()));
            } else if rng.random::<bool>() {
                *gene = None;
            } else {
                *gene = Some(rng.random_range(0..task.hw_impls().len()));
            }
        }
    }

    fn crossover(
        &self,
        a: &SpatialPartition,
        b: &SpatialPartition,
        rng: &mut StdRng,
    ) -> SpatialPartition {
        if rng.random::<f64>() >= self.opts.crossover_rate || a.len() < 2 {
            return a.clone();
        }
        let cut = rng.random_range(1..a.len());
        a[..cut].iter().chain(&b[cut..]).copied().collect()
    }

    /// Scores one individual through the shared arena-backed evaluator
    /// (summary only — the GA never needs the per-task trace while
    /// evolving).
    fn fitness(&self, ind: &SpatialPartition, evaluator: &mut Evaluator<'_>) -> f64 {
        let mapping = realize_partition(self.app, self.arch, ind);
        evaluator
            .evaluate(&mapping)
            .expect("realized partitions are feasible by construction")
            .makespan
            .value()
    }

    /// Runs the GA to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] only if the final best mapping fails
    /// re-evaluation, which would indicate an internal inconsistency.
    pub fn run(&self) -> Result<GaOutcome, MappingError> {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let mut evaluator = Evaluator::new(self.app, self.arch);
        let mut population: Vec<SpatialPartition> = (0..self.opts.population)
            .map(|_| self.random_individual(&mut rng))
            .collect();
        let mut evaluations = 0u64;
        let mut scored: Vec<(f64, SpatialPartition)> = population
            .drain(..)
            .map(|ind| {
                evaluations += 1;
                (self.fitness(&ind, &mut evaluator), ind)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut best = scored[0].clone();
        let mut history = vec![best.0];
        let mut stall = 0usize;
        let mut generation = 0usize;

        while generation < self.opts.generations && stall < self.opts.stall_generations {
            generation += 1;
            let mut next: Vec<SpatialPartition> = scored
                .iter()
                .take(self.opts.elitism)
                .map(|(_, ind)| ind.clone())
                .collect();
            while next.len() < self.opts.population {
                let pick = |rng: &mut StdRng| {
                    let mut champion = rng.random_range(0..scored.len());
                    for _ in 1..self.opts.tournament {
                        let c = rng.random_range(0..scored.len());
                        if scored[c].0 < scored[champion].0 {
                            champion = c;
                        }
                    }
                    champion
                };
                let a = pick(&mut rng);
                let b = pick(&mut rng);
                let mut child = self.crossover(&scored[a].1, &scored[b].1, &mut rng);
                self.mutate(&mut child, &mut rng);
                next.push(child);
            }
            scored = next
                .drain(..)
                .map(|ind| {
                    evaluations += 1;
                    (self.fitness(&ind, &mut evaluator), ind)
                })
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            if scored[0].0 + 1e-9 < best.0 {
                best = scored[0].clone();
                stall = 0;
            } else {
                stall += 1;
            }
            history.push(best.0);
        }

        let mapping = realize_partition(self.app, self.arch, &best.1);
        let evaluation = evaluate(self.app, self.arch, &mapping)?;
        Ok(GaOutcome {
            mapping,
            evaluation,
            generations: generation,
            evaluations,
            elapsed: start.elapsed(),
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_workloads::{epicure_architecture, motion_detection_app};

    fn quick_opts(seed: u64) -> GaOptions {
        GaOptions {
            population: 60,
            generations: 40,
            stall_generations: 15,
            seed,
            ..GaOptions::default()
        }
    }

    #[test]
    fn ga_meets_the_constraint_on_motion() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let out = GeneticExplorer::new(&app, &arch, quick_opts(1))
            .run()
            .unwrap();
        assert!(
            out.evaluation.makespan.value() < 40_000.0,
            "GA best {} ms",
            out.evaluation.makespan.as_millis()
        );
        out.mapping.validate(&app, &arch).unwrap();
    }

    #[test]
    fn ga_history_is_monotone() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1500);
        let out = GeneticExplorer::new(&app, &arch, quick_opts(3))
            .run()
            .unwrap();
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        assert!(out.evaluations >= 60);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1000);
        let a = GeneticExplorer::new(&app, &arch, quick_opts(7))
            .run()
            .unwrap();
        let b = GeneticExplorer::new(&app, &arch, quick_opts(7))
            .run()
            .unwrap();
        assert_eq!(a.evaluation.makespan, b.evaluation.makespan);
    }
}
