//! The genetic-algorithm baseline of Ben Chehida & Auguin \[6\].
//!
//! Chromosome: one gene per task — software, or hardware with an
//! implementation index. Fitness: the deterministic realization (list
//! scheduling + greedy clustering, see [`realize_partition`])
//! projected onto the shared [`CostVector`] axes. Selection is
//! tournament-based with elitism, single-point crossover, per-gene
//! mutation. The published configuration uses a population of 300.
//!
//! Two search modes share the variation operators:
//!
//! * **Scalar** ([`GeneticExplorer::run`] with `nsga2: false`, the
//!   historical default): ranks by makespan alone, bit-identical to
//!   the original single-objective GA. The full cost vectors are still
//!   archived observationally in [`GaOutcome::front`].
//! * **NSGA-II** ([`GeneticExplorer::run_nsga2`], or `run` with
//!   `nsga2: true`): non-dominated sorting + crowding distance over
//!   [`CostVector`], crowded tournament selection and (μ+λ) elitist
//!   environmental selection — the same [`Dominance`] machinery every
//!   other exploration surface uses, so "front" means the same thing
//!   here as in the annealing portfolio.
//!
//! [`Dominance`]: rdse_anneal::Dominance

use crate::list_sched::{realize_partition, SpatialPartition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_anneal::{crowding_distance, non_dominated_rank, ParetoFront};
use rdse_mapping::{evaluate, CostVector, Evaluation, Evaluator, Mapping, MappingError};
use rdse_model::{Architecture, TaskGraph};
use std::time::{Duration, Instant};

/// GA parameters (defaults follow \[6\] where published).
#[derive(Debug, Clone)]
pub struct GaOptions {
    /// Population size (300 in \[6\]).
    pub population: usize,
    /// Maximum generations.
    pub generations: usize,
    /// Stop early after this many generations without improvement.
    pub stall_generations: usize,
    /// Crossover probability.
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size.
    pub tournament: usize,
    /// Elite individuals copied unchanged each generation (scalar mode
    /// only — NSGA-II's (μ+λ) environmental selection is already
    /// elitist over the whole parent population).
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
    /// Rank by non-dominated sorting + crowding distance (NSGA-II)
    /// instead of makespan alone. `false` preserves the historical
    /// scalar GA bit for bit.
    pub nsga2: bool,
}

impl Default for GaOptions {
    fn default() -> Self {
        GaOptions {
            population: 300,
            generations: 200,
            stall_generations: 40,
            crossover_rate: 0.9,
            mutation_rate: 0.02,
            tournament: 3,
            elitism: 2,
            seed: 0,
            nsga2: false,
        }
    }
}

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaOutcome {
    /// Best mapping found (in NSGA-II mode: the minimum-makespan
    /// member of the final front, for comparability with the scalar
    /// GA).
    pub mapping: Mapping,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Generations actually executed.
    pub generations: usize,
    /// Total fitness evaluations.
    pub evaluations: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Best-so-far makespan after each generation (µs) — monotone
    /// non-increasing by construction, for convergence plots. Entry 0
    /// is the initial population's best.
    pub history: Vec<f64>,
    /// Best makespan *within* each generation's population (µs) — the
    /// true per-generation series; unlike [`history`](GaOutcome::history)
    /// it can regress when the population drifts.
    pub generation_best: Vec<f64>,
    /// Pareto archive over the cost vectors of every individual
    /// evaluated during the run. In scalar mode this is observational
    /// (the search still ranks by makespan alone); in NSGA-II mode it
    /// is the front the search itself converged to.
    pub front: ParetoFront<CostVector>,
}

/// The cost vector scored for an individual whose realization fails
/// evaluation: worst on every axis, so it loses every comparison —
/// scalar or dominance — without crashing the run.
fn infeasible_cost() -> CostVector {
    CostVector {
        makespan: f64::INFINITY,
        clb_area: f64::INFINITY,
        reconfig_overhead: f64::INFINITY,
        contexts: f64::INFINITY,
    }
}

/// The GA explorer.
#[derive(Debug, Clone)]
pub struct GeneticExplorer<'a> {
    app: &'a TaskGraph,
    arch: &'a Architecture,
    opts: GaOptions,
}

impl<'a> GeneticExplorer<'a> {
    /// Creates an explorer over the given models.
    pub fn new(app: &'a TaskGraph, arch: &'a Architecture, opts: GaOptions) -> Self {
        GeneticExplorer { app, arch, opts }
    }

    fn random_individual(&self, rng: &mut StdRng) -> SpatialPartition {
        self.app
            .task_ids()
            .map(|t| {
                let task = self.app.task(t).expect("task id in range");
                if task.hw_impls().is_empty() || rng.random::<bool>() {
                    None
                } else {
                    Some(rng.random_range(0..task.hw_impls().len()))
                }
            })
            .collect()
    }

    fn mutate(&self, ind: &mut SpatialPartition, rng: &mut StdRng) {
        for t in self.app.task_ids() {
            if rng.random::<f64>() >= self.opts.mutation_rate {
                continue;
            }
            let task = self.app.task(t).expect("task id in range");
            let gene = &mut ind[t.index()];
            if task.hw_impls().is_empty() {
                *gene = None;
            } else if gene.is_none() {
                *gene = Some(rng.random_range(0..task.hw_impls().len()));
            } else if rng.random::<bool>() {
                *gene = None;
            } else {
                *gene = Some(rng.random_range(0..task.hw_impls().len()));
            }
        }
    }

    fn crossover(
        &self,
        a: &SpatialPartition,
        b: &SpatialPartition,
        rng: &mut StdRng,
    ) -> SpatialPartition {
        if rng.random::<f64>() >= self.opts.crossover_rate || a.len() < 2 {
            return a.clone();
        }
        let cut = rng.random_range(1..a.len());
        a[..cut].iter().chain(&b[cut..]).copied().collect()
    }

    /// Scores one individual through the shared arena-backed evaluator
    /// (summary only — the GA never needs the per-task trace while
    /// evolving). An evaluation error — impossible for realized
    /// partitions on a well-formed architecture, but a degenerate
    /// platform must not crash the search — scores as
    /// [`infeasible_cost`]: worst on every axis instead of a panic.
    fn score(&self, ind: &SpatialPartition, evaluator: &mut Evaluator<'_>) -> CostVector {
        let mapping = realize_partition(self.app, self.arch, ind);
        match evaluator.evaluate(&mapping) {
            Ok(summary) => CostVector::from_summary(&summary),
            Err(_) => infeasible_cost(),
        }
    }

    /// Runs the GA to completion — the scalar makespan walk by
    /// default, NSGA-II when [`GaOptions::nsga2`] is set.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] only if the final best mapping fails
    /// re-evaluation, which would indicate an internal inconsistency.
    pub fn run(&self) -> Result<GaOutcome, MappingError> {
        if self.opts.nsga2 {
            return self.run_nsga2();
        }
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let mut evaluator = Evaluator::new(self.app, self.arch);
        let mut front = ParetoFront::new();
        let mut population: Vec<SpatialPartition> = (0..self.opts.population)
            .map(|_| self.random_individual(&mut rng))
            .collect();
        let mut evaluations = 0u64;
        let score = |ind: SpatialPartition,
                     evaluations: &mut u64,
                     evaluator: &mut Evaluator<'_>,
                     front: &mut ParetoFront<CostVector>| {
            *evaluations += 1;
            let cost = self.score(&ind, evaluator);
            // Observational archive: never touches the RNG stream or
            // the makespan ranking, so the walk stays bit-identical to
            // the historical scalar GA.
            front.insert(cost);
            (cost.makespan, ind)
        };
        let mut scored: Vec<(f64, SpatialPartition)> = population
            .drain(..)
            .map(|ind| score(ind, &mut evaluations, &mut evaluator, &mut front))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut best = scored[0].clone();
        let mut history = vec![best.0];
        let mut generation_best = vec![scored[0].0];
        let mut stall = 0usize;
        let mut generation = 0usize;

        while generation < self.opts.generations && stall < self.opts.stall_generations {
            generation += 1;
            let mut next: Vec<SpatialPartition> = scored
                .iter()
                .take(self.opts.elitism)
                .map(|(_, ind)| ind.clone())
                .collect();
            while next.len() < self.opts.population {
                let pick = |rng: &mut StdRng| {
                    let mut champion = rng.random_range(0..scored.len());
                    for _ in 1..self.opts.tournament {
                        let c = rng.random_range(0..scored.len());
                        if scored[c].0 < scored[champion].0 {
                            champion = c;
                        }
                    }
                    champion
                };
                let a = pick(&mut rng);
                let b = pick(&mut rng);
                let mut child = self.crossover(&scored[a].1, &scored[b].1, &mut rng);
                self.mutate(&mut child, &mut rng);
                next.push(child);
            }
            scored = next
                .drain(..)
                .map(|ind| score(ind, &mut evaluations, &mut evaluator, &mut front))
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Exact comparison: any bitwise improvement counts.
            // An absolute epsilon would be scale-dependent on µs-sized
            // makespans and is at odds with the repo-wide bit-identity
            // discipline.
            if scored[0].0 < best.0 {
                best = scored[0].clone();
                stall = 0;
            } else {
                stall += 1;
            }
            generation_best.push(scored[0].0);
            history.push(best.0);
        }

        let mapping = realize_partition(self.app, self.arch, &best.1);
        let evaluation = evaluate(self.app, self.arch, &mapping)?;
        Ok(GaOutcome {
            mapping,
            evaluation,
            generations: generation,
            evaluations,
            elapsed: start.elapsed(),
            history,
            generation_best,
            front,
        })
    }

    /// Runs the NSGA-II variant: non-dominated sorting + crowding
    /// distance over the full [`CostVector`], crowded tournament
    /// selection ((rank asc, crowding desc), champion kept on ties)
    /// and (μ+λ) elitist environmental selection over parents and
    /// offspring combined.
    ///
    /// The run is deterministic per seed: sorting keys are exact
    /// (`total_cmp` with index tie-breaks) and the only randomness is
    /// the same `StdRng` stream the scalar GA draws from.
    /// [`GaOutcome::mapping`] is the minimum-makespan member of the
    /// final population's first front, so scalar-vs-NSGA-II
    /// comparisons stay apples to apples; the trade-off surface itself
    /// is in [`GaOutcome::front`].
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] only if the final best mapping fails
    /// re-evaluation, which would indicate an internal inconsistency.
    pub fn run_nsga2(&self) -> Result<GaOutcome, MappingError> {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let mut evaluator = Evaluator::new(self.app, self.arch);
        let mut front = ParetoFront::new();
        let mut evaluations = 0u64;

        let mut pop: Vec<(CostVector, SpatialPartition)> = (0..self.opts.population)
            .map(|_| {
                let ind = self.random_individual(&mut rng);
                evaluations += 1;
                let cost = self.score(&ind, &mut evaluator);
                front.insert(cost);
                (cost, ind)
            })
            .collect();
        let (mut ranks, mut crowding) = rank_and_crowd(&pop);

        let gen_best = |pop: &[(CostVector, SpatialPartition)]| {
            pop.iter()
                .map(|(c, _)| c.makespan)
                .fold(f64::INFINITY, f64::min)
        };
        let mut best_makespan = gen_best(&pop);
        let mut history = vec![best_makespan];
        let mut generation_best = vec![best_makespan];
        let mut stall = 0usize;
        let mut generation = 0usize;

        while generation < self.opts.generations && stall < self.opts.stall_generations {
            generation += 1;
            // Crowded tournament: lower rank wins, ties go to the less
            // crowded (larger distance); full ties keep the champion.
            let pick = |rng: &mut StdRng, ranks: &[usize], crowding: &[f64]| {
                let mut champion = rng.random_range(0..ranks.len());
                for _ in 1..self.opts.tournament {
                    let c = rng.random_range(0..ranks.len());
                    if ranks[c] < ranks[champion]
                        || (ranks[c] == ranks[champion] && crowding[c] > crowding[champion])
                    {
                        champion = c;
                    }
                }
                champion
            };
            let mut offspring: Vec<(CostVector, SpatialPartition)> =
                Vec::with_capacity(self.opts.population);
            while offspring.len() < self.opts.population {
                let a = pick(&mut rng, &ranks, &crowding);
                let b = pick(&mut rng, &ranks, &crowding);
                let mut child = self.crossover(&pop[a].1, &pop[b].1, &mut rng);
                self.mutate(&mut child, &mut rng);
                evaluations += 1;
                let cost = self.score(&child, &mut evaluator);
                front.insert(cost);
                offspring.push((cost, child));
            }

            // (μ+λ) environmental selection over parents ∪ offspring:
            // fill by rank, break the boundary rank by crowding
            // (descending, index ascending) — all exact comparisons.
            let mut combined = pop;
            combined.append(&mut offspring);
            let (c_ranks, c_crowd) = rank_and_crowd(&combined);
            let mut order: Vec<usize> = (0..combined.len()).collect();
            order.sort_by(|&a, &b| {
                c_ranks[a]
                    .cmp(&c_ranks[b])
                    .then(c_crowd[b].total_cmp(&c_crowd[a]))
                    .then(a.cmp(&b))
            });
            order.truncate(self.opts.population);
            // Drain by marking: move selected individuals out in order.
            let mut selected: Vec<Option<(CostVector, SpatialPartition)>> =
                combined.into_iter().map(Some).collect();
            pop = order
                .iter()
                .map(|&i| selected[i].take().expect("selection indices are unique"))
                .collect();
            (ranks, crowding) = rank_and_crowd(&pop);

            let current = gen_best(&pop);
            generation_best.push(current);
            if current < best_makespan {
                best_makespan = current;
                stall = 0;
            } else {
                stall += 1;
            }
            history.push(best_makespan);
        }

        // Winner: the minimum-makespan member of the final first front
        // (ties broken by population index, which is deterministic).
        let winner = pop
            .iter()
            .enumerate()
            .filter(|&(i, _)| ranks[i] == 0)
            .min_by(|(ia, a), (ib, b)| a.0.makespan.total_cmp(&b.0.makespan).then(ia.cmp(ib)))
            .map(|(_, entry)| entry.1.clone())
            .expect("population is non-empty");
        let mapping = realize_partition(self.app, self.arch, &winner);
        let evaluation = evaluate(self.app, self.arch, &mapping)?;
        Ok(GaOutcome {
            mapping,
            evaluation,
            generations: generation,
            evaluations,
            elapsed: start.elapsed(),
            history,
            generation_best,
            front,
        })
    }
}

/// Non-dominated ranks and within-rank crowding distances for a
/// scored population.
fn rank_and_crowd(pop: &[(CostVector, SpatialPartition)]) -> (Vec<usize>, Vec<f64>) {
    let costs: Vec<CostVector> = pop.iter().map(|(c, _)| *c).collect();
    let ranks = non_dominated_rank(&costs);
    let mut crowd = vec![0.0f64; pop.len()];
    let n_ranks = ranks.iter().copied().max().map_or(0, |r| r + 1);
    for r in 0..n_ranks {
        let indices: Vec<usize> = (0..pop.len()).filter(|&i| ranks[i] == r).collect();
        let class: Vec<CostVector> = indices.iter().map(|&i| costs[i]).collect();
        for (k, d) in crowding_distance(&class).into_iter().enumerate() {
            crowd[indices[k]] = d;
        }
    }
    (ranks, crowd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_anneal::Dominance;
    use rdse_workloads::{epicure_architecture, motion_detection_app};

    fn quick_opts(seed: u64) -> GaOptions {
        GaOptions {
            population: 60,
            generations: 40,
            stall_generations: 15,
            seed,
            ..GaOptions::default()
        }
    }

    #[test]
    fn ga_meets_the_constraint_on_motion() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let out = GeneticExplorer::new(&app, &arch, quick_opts(1))
            .run()
            .unwrap();
        assert!(
            out.evaluation.makespan.value() < 40_000.0,
            "GA best {} ms",
            out.evaluation.makespan.as_millis()
        );
        out.mapping.validate(&app, &arch).unwrap();
    }

    #[test]
    fn ga_history_is_monotone() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1500);
        let out = GeneticExplorer::new(&app, &arch, quick_opts(3))
            .run()
            .unwrap();
        // Best-so-far is exactly non-increasing — no epsilon slack.
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(out.history.len(), out.generation_best.len());
        // history[g] is the running minimum of generation_best[..=g].
        let mut running = f64::INFINITY;
        for (h, g) in out.history.iter().zip(&out.generation_best) {
            running = running.min(*g);
            assert_eq!(h.to_bits(), running.to_bits());
        }
        assert!(out.evaluations >= 60);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1000);
        let a = GeneticExplorer::new(&app, &arch, quick_opts(7))
            .run()
            .unwrap();
        let b = GeneticExplorer::new(&app, &arch, quick_opts(7))
            .run()
            .unwrap();
        assert_eq!(a.evaluation.makespan, b.evaluation.makespan);
        // Bit-level identity of the whole run, not just the final
        // scalar: the winning mapping and every history entry.
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.generations, b.generations);
        assert_eq!(a.evaluations, b.evaluations);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.history), bits(&b.history));
        assert_eq!(bits(&a.generation_best), bits(&b.generation_best));
        assert_eq!(a.front.len(), b.front.len());
    }

    #[test]
    fn ga_survives_a_degenerate_architecture() {
        // Regression for the old `expect("realized partitions are
        // feasible by construction")` panic path: evaluation failures
        // now score as infeasible instead of crashing. A 0-CLB device
        // is rejected by the Architecture builder itself, so the
        // closest constructible edge case is a 1-CLB device where
        // every hardware implementation is oversized and the whole
        // population degenerates to software.
        let app = motion_detection_app();
        let arch = epicure_architecture(1);
        let out = GeneticExplorer::new(&app, &arch, quick_opts(2))
            .run()
            .expect("degenerate architecture must not crash the GA");
        assert!(out.evaluation.makespan.value().is_finite());
        assert_eq!(out.evaluation.n_hw_tasks, 0, "1 CLB fits no impl");
        out.mapping.validate(&app, &arch).unwrap();
        // NSGA-II survives the same degenerate platform.
        let opts = GaOptions {
            nsga2: true,
            ..quick_opts(2)
        };
        let nsga = GeneticExplorer::new(&app, &arch, opts)
            .run()
            .expect("degenerate architecture must not crash NSGA-II");
        assert!(nsga.evaluation.makespan.value().is_finite());
    }

    #[test]
    fn infeasible_scores_lose_every_comparison() {
        let inf = infeasible_cost();
        let app = motion_detection_app();
        let arch = epicure_architecture(1000);
        let mut evaluator = Evaluator::new(&app, &arch);
        let explorer = GeneticExplorer::new(&app, &arch, quick_opts(0));
        let mut rng = StdRng::seed_from_u64(0);
        let ind = explorer.random_individual(&mut rng);
        let feasible = explorer.score(&ind, &mut evaluator);
        assert!(feasible.makespan.is_finite());
        assert!(feasible.dominates(&inf));
        assert!(!inf.dominates(&feasible));
        assert!(feasible.makespan < inf.makespan);
    }

    #[test]
    fn nsga2_is_deterministic_per_seed() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1000);
        let opts = GaOptions {
            nsga2: true,
            ..quick_opts(7)
        };
        let a = GeneticExplorer::new(&app, &arch, opts.clone())
            .run()
            .unwrap();
        let b = GeneticExplorer::new(&app, &arch, opts).run().unwrap();
        assert_eq!(a.evaluation.makespan, b.evaluation.makespan);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.front.members().len(), b.front.members().len());
        for (x, y) in a.front.iter().zip(b.front.iter()) {
            assert_eq!(x.makespan.to_bits(), y.makespan.to_bits());
            assert_eq!(x.clb_area.to_bits(), y.clb_area.to_bits());
        }
    }

    #[test]
    fn nsga2_front_weakly_dominates_the_scalar_point() {
        // The acceptance bar of the NSGA-II port: on the paper's
        // workload the evolved front must cover the scalar GA's single
        // point — some front member at least as good on *every* axis.
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        for seed in [1u64, 7, 42] {
            let scalar = GeneticExplorer::new(&app, &arch, quick_opts(seed))
                .run()
                .unwrap();
            let scalar_point = CostVector::from_summary(&scalar.evaluation.summary());
            // Covering a 4-axis front *and* matching the scalar
            // specialist on its own axis takes a bigger evolution
            // budget than the quick scalar run.
            let nsga = GeneticExplorer::new(
                &app,
                &arch,
                GaOptions {
                    nsga2: true,
                    generations: 120,
                    stall_generations: 60,
                    ..quick_opts(seed)
                },
            )
            .run()
            .unwrap();
            assert!(
                nsga.front
                    .iter()
                    .any(|m| m.dominates(&scalar_point) || *m == scalar_point),
                "seed {seed}: no front member covers the scalar point {scalar_point:?}"
            );
        }
    }

    #[test]
    fn nsga2_front_is_spread_across_objectives() {
        // A front, not a point: the motion workload trades makespan
        // against area, so NSGA-II should retain more than one
        // non-dominated solution.
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let out = GeneticExplorer::new(
            &app,
            &arch,
            GaOptions {
                nsga2: true,
                ..quick_opts(5)
            },
        )
        .run()
        .unwrap();
        assert!(
            out.front.len() > 1,
            "front collapsed to {} member(s)",
            out.front.len()
        );
    }
}
