//! Baseline explorers for the DATE'05 comparison (§5).
//!
//! The paper compares against the approach of Ben Chehida & Auguin \[6\]:
//! a **genetic algorithm** explores the HW/SW spatial partitioning; for
//! each individual a *deterministic* temporal clustering packs the
//! hardware tasks into contexts and a list scheduler fixes the software
//! order — so, unlike the paper's annealer, only a single temporal
//! partitioning and a single schedule is examined per spatial
//! partition. The published numbers: best execution time 28 ms and
//! ≈ 4 minutes of runtime with a population of 300, versus 18.1 ms in
//! under 10 s for the simulated-annealing tool.
//!
//! Two more baselines calibrate the comparison: pure random sampling of
//! initial solutions and first-improvement hill climbing over the same
//! move set as the annealer.
//!
//! All baselines share the `rdse-mapping` evaluator, so quality
//! differences come from the search strategies alone.

pub mod clustering;
pub mod ga;
pub mod hill_climb;
pub mod list_sched;
pub mod random_search;

pub use clustering::pack_contexts;
pub use ga::{GaOptions, GaOutcome, GeneticExplorer};
pub use hill_climb::{hill_climb, HillClimbOptions};
pub use list_sched::{realize_partition, upward_ranks, SpatialPartition};
pub use random_search::random_search;
