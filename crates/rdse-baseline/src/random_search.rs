//! Pure random sampling — the weakest baseline, calibrating how much
//! structure the annealer and the GA actually exploit.

use rdse_mapping::{random_initial, Evaluation, Evaluator, Mapping, MappingError};
use rdse_model::{Architecture, TaskGraph};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `samples` random solutions (the §5 initial-solution generator)
/// and returns the best.
///
/// Sampling is scored through the arena-backed [`Evaluator`] (cheap
/// scalar summaries, no per-sample trace allocation); the winner's full
/// [`Evaluation`] is computed once at the end.
///
/// # Errors
///
/// Returns a [`MappingError`] if a generated solution fails evaluation,
/// which the generator's feasibility-by-construction should prevent.
pub fn random_search(
    app: &TaskGraph,
    arch: &Architecture,
    samples: u64,
    seed: u64,
) -> Result<(Mapping, Evaluation), MappingError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluator = Evaluator::new(app, arch);
    let mut best: Option<(Mapping, rdse_mapping::EvalSummary)> = None;
    for _ in 0..samples.max(1) {
        let m = random_initial(app, arch, &mut rng);
        let s = evaluator.evaluate(&m)?;
        if best.as_ref().is_none_or(|(_, bs)| s.makespan < bs.makespan) {
            best = Some((m, s));
        }
    }
    let (mapping, _) = best.expect("at least one sample was drawn");
    let evaluation = evaluator.evaluate_full(&mapping)?;
    Ok((mapping, evaluation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_workloads::{epicure_architecture, motion_detection_app};

    #[test]
    fn more_samples_do_not_hurt() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let (_, few) = random_search(&app, &arch, 5, 1).unwrap();
        let (_, many) = random_search(&app, &arch, 200, 1).unwrap();
        assert!(many.makespan <= few.makespan);
    }

    #[test]
    fn result_is_valid() {
        let app = motion_detection_app();
        let arch = epicure_architecture(800);
        let (m, e) = random_search(&app, &arch, 50, 3).unwrap();
        m.validate(&app, &arch).unwrap();
        assert!(e.makespan.value() > 0.0);
    }
}
