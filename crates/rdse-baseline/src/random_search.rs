//! Pure random sampling — the weakest baseline, calibrating how much
//! structure the annealer and the GA actually exploit.

use rdse_mapping::{evaluate, random_initial, Evaluation, Mapping, MappingError};
use rdse_model::{Architecture, TaskGraph};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `samples` random solutions (the §5 initial-solution generator)
/// and returns the best.
///
/// # Errors
///
/// Returns a [`MappingError`] if a generated solution fails evaluation,
/// which the generator's feasibility-by-construction should prevent.
pub fn random_search(
    app: &TaskGraph,
    arch: &Architecture,
    samples: u64,
    seed: u64,
) -> Result<(Mapping, Evaluation), MappingError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(Mapping, Evaluation)> = None;
    for _ in 0..samples.max(1) {
        let m = random_initial(app, arch, &mut rng);
        let e = evaluate(app, arch, &m)?;
        if best.as_ref().is_none_or(|(_, be)| e.makespan < be.makespan) {
            best = Some((m, e));
        }
    }
    Ok(best.expect("at least one sample was drawn"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_workloads::{epicure_architecture, motion_detection_app};

    #[test]
    fn more_samples_do_not_hurt() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let (_, few) = random_search(&app, &arch, 5, 1).unwrap();
        let (_, many) = random_search(&app, &arch, 200, 1).unwrap();
        assert!(many.makespan <= few.makespan);
    }

    #[test]
    fn result_is_valid() {
        let app = motion_detection_app();
        let arch = epicure_architecture(800);
        let (m, e) = random_search(&app, &arch, 50, 3).unwrap();
        m.validate(&app, &arch).unwrap();
        assert!(e.makespan.value() > 0.0);
    }
}
