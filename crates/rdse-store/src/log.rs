//! The append-only log: length-prefixed, checksummed record frames.
//!
//! The framing follows the serve protocol's discipline (magic,
//! big-endian version/kind/length header, length checked before the
//! body is touched) and adds what a file needs that a socket does not:
//! a body checksum, because a crash mid-append leaves a torn tail
//! behind instead of a broken connection.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RDSA"
//! 4       2     version (u16, big-endian) = 1
//! 6       2     record kind (u16, big-endian) = 1 (result)
//! 8       4     body length (u32, big-endian)
//! 12      8     body checksum (FNV-1a 64 of the body, big-endian)
//! 20      n     body: one UTF-8 JSON record
//! ```
//!
//! [`scan`] replays a log byte slice and **never panics**: a truncated
//! or corrupt tail — short header, bad magic, short body, checksum
//! mismatch, malformed JSON — ends the replay at the last good record
//! and is reported as a [`TailIssue`] naming the offset and cause.

use crate::record::StoreRecord;
use serde::{Deserialize, Serialize};

/// The log's magic bytes ("RDSE Archive").
pub const MAGIC: [u8; 4] = *b"RDSA";
/// Current log format version.
pub const LOG_VERSION: u16 = 1;
/// Record kind: a completed exploration result.
pub const KIND_RESULT: u16 = 1;
/// Bytes before each record body.
pub const RECORD_HEADER_LEN: usize = 20;

/// FNV-1a 64 over `bytes` — the body checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one record as a complete frame (header + JSON body).
pub fn encode_record(record: &StoreRecord) -> Vec<u8> {
    let body = serde_json::to_string(&record.to_value())
        .expect("Value serialization is infallible")
        .into_bytes();
    let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + body.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&LOG_VERSION.to_be_bytes());
    frame.extend_from_slice(&KIND_RESULT.to_be_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&fnv1a64(&body).to_be_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Why a replay stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailIssue {
    /// Byte offset of the first record that could not be replayed.
    pub offset: u64,
    /// Human-readable cause (truncated header, checksum mismatch, …).
    pub reason: String,
}

impl std::fmt::Display for TailIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.reason)
    }
}

/// The outcome of replaying a log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records replayed successfully.
    pub records: usize,
    /// Bytes of intact log consumed (the safe truncation point).
    pub bytes: u64,
    /// The torn/corrupt tail that ended the replay early, if any.
    pub tail: Option<TailIssue>,
}

/// Replays every intact record in `bytes`, invoking `on_record` per
/// record in append order. Replay tolerates a damaged tail (reported,
/// never a panic): whatever follows the last intact record is skipped.
pub fn scan(bytes: &[u8], mut on_record: impl FnMut(StoreRecord)) -> ReplayReport {
    let mut report = ReplayReport::default();
    let mut pos = 0usize;
    let stop = |pos: usize, reason: String| TailIssue {
        offset: pos as u64,
        reason,
    };
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < RECORD_HEADER_LEN {
            report.tail = Some(stop(
                pos,
                format!(
                    "truncated header ({} of {RECORD_HEADER_LEN} bytes)",
                    rest.len()
                ),
            ));
            break;
        }
        if rest[0..4] != MAGIC {
            report.tail = Some(stop(pos, "bad record magic".into()));
            break;
        }
        let version = u16::from_be_bytes([rest[4], rest[5]]);
        if version != LOG_VERSION {
            report.tail = Some(stop(
                pos,
                format!("unsupported log version {version} (expected {LOG_VERSION})"),
            ));
            break;
        }
        let kind = u16::from_be_bytes([rest[6], rest[7]]);
        if kind != KIND_RESULT {
            report.tail = Some(stop(pos, format!("unknown record kind {kind}")));
            break;
        }
        let body_len = u32::from_be_bytes([rest[8], rest[9], rest[10], rest[11]]) as usize;
        let checksum = u64::from_be_bytes(rest[12..20].try_into().expect("8 header bytes"));
        let Some(body) = rest.get(RECORD_HEADER_LEN..RECORD_HEADER_LEN + body_len) else {
            report.tail = Some(stop(
                pos,
                format!(
                    "truncated body ({} of {body_len} bytes)",
                    rest.len() - RECORD_HEADER_LEN
                ),
            ));
            break;
        };
        let actual = fnv1a64(body);
        if actual != checksum {
            report.tail = Some(stop(
                pos,
                format!("body checksum mismatch (stored {checksum:016x}, computed {actual:016x})"),
            ));
            break;
        }
        let record = std::str::from_utf8(body)
            .ok()
            .and_then(|text| serde_json::from_str::<serde::Value>(text).ok())
            .and_then(|value| StoreRecord::from_value(&value).ok());
        let Some(record) = record else {
            report.tail = Some(stop(pos, "checksummed body is not a valid record".into()));
            break;
        };
        on_record(record);
        report.records += 1;
        pos += RECORD_HEADER_LEN + body_len;
        report.bytes = pos as u64;
    }
    report
}
