//! The in-memory archive rebuilt from a replayed log.
//!
//! Three queries, one per read path of the serving layer:
//!
//! 1. [`exact`](Archive::exact) — identical content key → the archived
//!    record, O(1).
//! 2. [`dominating`](Archive::dominating) — same `(app, arch)` pair and
//!    objective with an archived budget ≥ the request's → that record's
//!    front already answers the query, O(pair entries).
//! 3. [`warm_candidate`](Archive::warm_candidate) — the pair's archived
//!    winner scoring best under the request's objective, to seed a new
//!    exploration's chain 0.
//!
//! Every query is deterministic: candidates are examined in ascending
//! [`StoreKey`] byte order and ties keep the smaller key, so the same
//! archive state always answers the same way.

use crate::key::{PairKey, StoreKey};
use crate::record::{CostBits, StoreRecord};
use std::collections::HashMap;

/// Keys → latest record, plus a per-pair index for the budget and
/// warm-start queries.
#[derive(Debug, Default)]
pub struct Archive {
    by_key: HashMap<StoreKey, StoreRecord>,
    by_pair: HashMap<PairKey, Vec<StoreKey>>,
}

impl Archive {
    /// An empty archive.
    pub fn new() -> Self {
        Archive::default()
    }

    /// Inserts (or, for a repeated key, replaces) one record. Replay
    /// calls this in append order, so the latest append wins — the
    /// same rule compaction applies on disk.
    pub fn insert(&mut self, record: StoreRecord) {
        let keys = self.by_pair.entry(record.pair).or_default();
        if let Err(slot) = keys.binary_search(&record.key) {
            keys.insert(slot, record.key);
        }
        self.by_key.insert(record.key, record);
    }

    /// Number of archived explorations (unique keys).
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// `true` when nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Number of distinct `(app, arch)` pairs archived.
    pub fn pairs(&self) -> usize {
        self.by_pair.len()
    }

    /// Read path 1: the archived record with this exact content key.
    pub fn exact(&self, key: &StoreKey) -> Option<&StoreRecord> {
        self.by_key.get(key)
    }

    /// Read path 2: an archived record over the same `(app, arch)` pair
    /// and objective whose budget is at least `iters` — its front
    /// answers the request without searching. Among eligible records
    /// the largest budget wins; budget ties keep the smaller key.
    pub fn dominating(&self, pair: &PairKey, objective: &str, iters: u64) -> Option<&StoreRecord> {
        self.pair_records(pair)
            .filter(|r| r.objective == objective && r.iters >= iters)
            // Ascending key order + strict > keeps the smaller key on
            // budget ties.
            .fold(None, |best: Option<&StoreRecord>, r| match best {
                Some(b) if r.iters > b.iters => Some(r),
                Some(b) => Some(b),
                None => Some(r),
            })
    }

    /// Read path 3: the pair's archived winner whose cost scores lowest
    /// under `scalar` — the warm-start seed for a fresh exploration.
    /// Score ties keep the smaller key (ascending key order + strict
    /// `<`), so the choice is a pure function of the archive state.
    pub fn warm_candidate(
        &self,
        pair: &PairKey,
        mut scalar: impl FnMut(&CostBits) -> f64,
    ) -> Option<&StoreRecord> {
        let mut best: Option<(f64, &StoreRecord)> = None;
        for record in self.pair_records(pair) {
            let score = scalar(&record.best);
            let better = best
                .as_ref()
                .is_none_or(|(b, _)| score.total_cmp(b).is_lt());
            if better {
                best = Some((score, record));
            }
        }
        best.map(|(_, r)| r)
    }

    /// All records of one pair, in ascending key order.
    pub fn pair_records(&self, pair: &PairKey) -> impl Iterator<Item = &StoreRecord> {
        self.by_pair
            .get(pair)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .map(|k| &self.by_key[k])
    }

    /// Every archived record, in ascending key order (the canonical
    /// compaction order).
    pub fn records(&self) -> impl Iterator<Item = &StoreRecord> {
        let mut keys: Vec<&StoreKey> = self.by_key.keys().collect();
        keys.sort_unstable();
        keys.into_iter().map(|k| &self.by_key[k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeySpec;
    use serde::Value;

    fn record(seed: u64, iters: u64, makespan: f64) -> StoreRecord {
        let spec = KeySpec {
            app_json: "app",
            arch_json: "arch",
            objective: "makespan",
            seed,
            iters,
            warmup: iters / 5,
            chains: 2,
            exchange_every: 100,
        };
        StoreRecord {
            key: spec.key(),
            pair: spec.pair(),
            objective: spec.objective.into(),
            seed,
            chains: 2,
            iters,
            warmup: iters / 5,
            exchange_every: 100,
            winner: 0,
            iterations: iters,
            contexts: 2,
            hw_tasks: 3,
            clb_area: 500,
            makespan_bits: makespan.to_bits(),
            best: CostBits::from_values(makespan, 500.0, 10.0, 2.0),
            front: vec![CostBits::from_values(makespan, 500.0, 10.0, 2.0)],
            mapping: Value::Map(vec![]),
        }
    }

    #[test]
    fn exact_and_reinsert_latest_wins() {
        let mut archive = Archive::new();
        let a = record(1, 1000, 90.0);
        archive.insert(a.clone());
        assert_eq!(archive.exact(&a.key), Some(&a));
        assert_eq!(archive.len(), 1);
        // Same key appended again (e.g. after a re-run): latest wins,
        // no duplicate pair index entry.
        let mut a2 = a.clone();
        a2.makespan_bits = 80.0f64.to_bits();
        archive.insert(a2.clone());
        assert_eq!(archive.exact(&a.key), Some(&a2));
        assert_eq!(archive.len(), 1);
        assert_eq!(archive.pairs(), 1);
    }

    #[test]
    fn dominating_requires_budget_and_objective() {
        let mut archive = Archive::new();
        let small = record(1, 1000, 90.0);
        let big = record(2, 4000, 85.0);
        let pair = small.pair;
        archive.insert(small);
        archive.insert(big.clone());

        // A request within the archived budget is answered by the
        // largest archived budget.
        let hit = archive.dominating(&pair, "makespan", 2000).expect("hit");
        assert_eq!(hit.key, big.key);
        // Over-budget requests and other objectives miss.
        assert!(archive.dominating(&pair, "makespan", 5000).is_none());
        assert!(archive.dominating(&pair, "weighted(1, 2, 3)", 10).is_none());
        // Unknown pairs miss.
        assert!(archive
            .dominating(&PairKey([9; 16]), "makespan", 10)
            .is_none());
    }

    #[test]
    fn warm_candidate_minimizes_the_scalar_with_key_tie_break() {
        let mut archive = Archive::new();
        let a = record(1, 1000, 90.0);
        let b = record(2, 1000, 80.0);
        let c = record(3, 1000, 80.0);
        let pair = a.pair;
        archive.insert(a);
        archive.insert(b.clone());
        archive.insert(c.clone());

        let winner = archive
            .warm_candidate(&pair, CostBits::makespan_f64)
            .expect("candidate");
        // 80.0 twice: the smaller key of b and c must win, and the
        // answer must be stable across calls.
        let expected = b.key.min(c.key);
        assert_eq!(winner.key, expected);
        let again = archive
            .warm_candidate(&pair, CostBits::makespan_f64)
            .expect("candidate");
        assert_eq!(again.key, expected);
    }
}
