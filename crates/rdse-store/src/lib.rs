//! Persistent result store: a content-addressed, append-only archive
//! of completed explorations.
//!
//! The serving layer recomputes every job from a cold initial solution
//! even when an identical or near-identical job was already explored.
//! This crate removes that waste with one file and three read paths:
//!
//! 1. **Exact hit** — a job whose resolved content hashes to an
//!    archived [`StoreKey`] is answered from the archive with its
//!    original `f64` bit patterns, no search at all.
//! 2. **Dominated hit** — a job over an archived `(app, arch)` pair and
//!    objective whose budget is ≤ an archived run's is answered by that
//!    run's Pareto front in O(lookup).
//! 3. **Warm start** — everything else over a known pair seeds chain 0
//!    of the new exploration with the best archived winner, converging
//!    to the cold run's quality in far fewer iterations.
//!
//! # Layout
//!
//! - [`key`] — 128-bit FNV-1a content hashes ([`StoreKey`], [`PairKey`])
//!   over the *resolved* job, tagged and length-prefixed per field.
//! - [`record`] — the archived form of one run ([`StoreRecord`]): every
//!   `f64` as raw bits, the winning mapping as index-only JSON.
//! - [`log`] — the append-only file format: length-prefixed,
//!   checksummed frames in the serve protocol's framing discipline,
//!   replayed by [`log::scan`] with torn-tail tolerance.
//! - [`archive`] — the in-memory [`Archive`] replay rebuilds, with the
//!   three deterministic queries above.
//! - [`store`] — [`ResultStore`]: open/replay, append under a
//!   [`SyncPolicy`], atomic [`compaction`](ResultStore::compact) and
//!   read-only [`verification`](store::verify).
//!
//! # Durability
//!
//! Appends are length-prefixed and checksummed, so a crash mid-write
//! leaves a tail that replay detects, reports and skips — never a
//! panic, never a poisoned archive. The [`SyncPolicy`] knob trades
//! fsync cost for the window of appends an OS crash could lose; the
//! `store_sync` bench measures the trade.
//!
//! # Example
//!
//! ```
//! use rdse_store::{KeySpec, ResultStore, StoreRecord, CostBits, SyncPolicy};
//! use serde::Value;
//!
//! let spec = KeySpec {
//!     app_json: r#"{"tasks":[]}"#,
//!     arch_json: r#"{"clbs":2000}"#,
//!     objective: "makespan",
//!     seed: 1, iters: 3000, warmup: 600, chains: 4, exchange_every: 250,
//! };
//! let mut store = ResultStore::in_memory(SyncPolicy::Never);
//! store.append(StoreRecord {
//!     key: spec.key(), pair: spec.pair(), objective: "makespan".into(),
//!     seed: 1, chains: 4, iters: 3000, warmup: 600, exchange_every: 250,
//!     winner: 0, iterations: 3000, contexts: 2, hw_tasks: 5, clb_area: 800,
//!     makespan_bits: 123.5f64.to_bits(),
//!     best: CostBits::from_values(123.5, 800.0, 10.0, 2.0),
//!     front: vec![CostBits::from_values(123.5, 800.0, 10.0, 2.0)],
//!     mapping: Value::Map(vec![]),
//! })?;
//! let hit = store.archive().exact(&spec.key()).expect("archived");
//! assert_eq!(hit.makespan().to_bits(), 123.5f64.to_bits());
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod key;
pub mod log;
pub mod record;
pub mod store;

pub use archive::Archive;
pub use key::{KeySpec, PairKey, StoreKey};
pub use log::{ReplayReport, TailIssue};
pub use record::{CostBits, StoreRecord};
pub use store::{verify, CompactReport, ResultStore, SyncPolicy};
