//! Content-addressed keys for archived explorations.
//!
//! A [`StoreKey`] is a stable 128-bit FNV-1a hash over the **resolved**
//! job content — the application DAG's canonical JSON, the
//! architecture's canonical JSON, the canonical objective description
//! and the numeric search knobs (seed, chains, budget). Two jobs share
//! a key iff they would run the identical exploration, however their
//! specs were phrased (a builtin name and the inline JSON it resolves
//! to hash the same resolved models, so they collide on purpose).
//!
//! A [`PairKey`] hashes only the `(app, arch)` prefix of the same
//! stream: it groups archive entries that explored the same models
//! under different knobs, which is what the dominated-hit and
//! warm-start read paths query by.
//!
//! Every field is fed to the hash with a distinct tag and an explicit
//! length prefix, so no concatenation of neighboring fields can alias
//! another spec ("ab" + "c" never hashes like "a" + "bc", and a seed
//! can never masquerade as a chain count).

use serde::{DeError, Deserialize, Serialize, Value};

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a hasher over tagged, length-prefixed
/// fields.
#[derive(Debug, Clone)]
struct Hasher128 {
    state: u128,
}

impl Hasher128 {
    fn new() -> Self {
        Hasher128 {
            state: FNV128_OFFSET,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= u128::from(*b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// One string field: tag, big-endian length, bytes.
    fn field_str(&mut self, tag: u8, value: &str) {
        self.write(&[tag]);
        self.write(&(value.len() as u64).to_be_bytes());
        self.write(value.as_bytes());
    }

    /// One numeric field: tag, fixed 8 bytes big-endian.
    fn field_u64(&mut self, tag: u8, value: u64) {
        self.write(&[tag]);
        self.write(&value.to_be_bytes());
    }

    fn digest(&self) -> [u8; 16] {
        self.state.to_be_bytes()
    }
}

fn hex(bytes: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(s: &str) -> Option<[u8; 16]> {
    if s.len() != 32 || !s.is_ascii() {
        return None;
    }
    let mut out = [0u8; 16];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let pair = std::str::from_utf8(chunk).ok()?;
        out[i] = u8::from_str_radix(pair, 16).ok()?;
    }
    Some(out)
}

macro_rules! digest_key {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub [u8; 16]);

        impl $name {
            /// Lowercase 32-character hex rendering (the wire and log
            /// form).
            pub fn hex(&self) -> String {
                hex(&self.0)
            }

            /// Parses the [`hex`](Self::hex) form back.
            pub fn from_hex(s: &str) -> Option<Self> {
                from_hex(s).map($name)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(&self.hex())
            }
        }

        impl Serialize for $name {
            fn to_value(&self) -> Value {
                Value::Str(self.hex())
            }
        }

        impl Deserialize for $name {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Str(s) => Self::from_hex(s).ok_or_else(|| {
                        DeError::msg(format!("'{s}' is not a 32-hex-digit key"))
                    }),
                    other => Err(DeError::msg(format!("expected key string, got {other:?}"))),
                }
            }
        }
    };
}

digest_key! {
    /// Content hash of one resolved exploration: equal keys mean the
    /// identical (app DAG, arch, objective, seed, chains, budget) and
    /// therefore the identical result. Ordered by raw digest bytes —
    /// the deterministic tie-break of every archive query.
    StoreKey
}

digest_key! {
    /// Content hash of a resolved `(app, arch)` pair only — the grouping
    /// key of the dominated-hit and warm-start read paths.
    PairKey
}

/// The resolved content of one exploration, ready to hash.
///
/// `app_json` and `arch_json` must be the canonical JSON of the
/// **resolved** models (after builtin/workload names were expanded),
/// and `objective` the canonical description of the parsed objective —
/// not the raw user spec — so spellings that run the same search get
/// the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySpec<'a> {
    /// Canonical JSON of the resolved application task graph.
    pub app_json: &'a str,
    /// Canonical JSON of the resolved architecture.
    pub arch_json: &'a str,
    /// Canonical objective description.
    pub objective: &'a str,
    /// Master RNG seed.
    pub seed: u64,
    /// Total iteration budget.
    pub iters: u64,
    /// Warm-up iterations.
    pub warmup: u64,
    /// Portfolio chain count.
    pub chains: u64,
    /// Per-chain iterations between exchanges.
    pub exchange_every: u64,
}

impl KeySpec<'_> {
    fn pair_hasher(&self) -> Hasher128 {
        let mut h = Hasher128::new();
        h.field_str(1, self.app_json);
        h.field_str(2, self.arch_json);
        h
    }

    /// The full content key of this exploration.
    pub fn key(&self) -> StoreKey {
        let mut h = self.pair_hasher();
        h.field_str(3, self.objective);
        h.field_u64(4, self.seed);
        h.field_u64(5, self.iters);
        h.field_u64(6, self.warmup);
        h.field_u64(7, self.chains);
        h.field_u64(8, self.exchange_every);
        StoreKey(h.digest())
    }

    /// The `(app, arch)` grouping key — the prefix of [`key`](Self::key)
    /// covering only the models.
    pub fn pair(&self) -> PairKey {
        PairKey(self.pair_hasher().digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> KeySpec<'static> {
        KeySpec {
            app_json: r#"{"tasks":[1,2,3]}"#,
            arch_json: r#"{"clbs":2000}"#,
            objective: "makespan",
            seed: 1,
            iters: 3000,
            warmup: 600,
            chains: 4,
            exchange_every: 250,
        }
    }

    #[test]
    fn equal_specs_hash_equal_and_hex_round_trips() {
        assert_eq!(spec().key(), spec().key());
        assert_eq!(spec().pair(), spec().pair());
        let key = spec().key();
        assert_eq!(StoreKey::from_hex(&key.hex()), Some(key));
        assert_eq!(key.hex().len(), 32);
        assert_eq!(StoreKey::from_hex("zz"), None);
    }

    #[test]
    fn each_field_is_key_relevant_but_only_models_are_pair_relevant() {
        let base = spec();
        let variants = [
            KeySpec {
                objective: "weighted(1, 5, 0.5)",
                ..base
            },
            KeySpec { seed: 2, ..base },
            KeySpec {
                iters: 3001,
                ..base
            },
            KeySpec {
                warmup: 601,
                ..base
            },
            KeySpec { chains: 5, ..base },
            KeySpec {
                exchange_every: 251,
                ..base
            },
        ];
        for variant in variants {
            assert_ne!(variant.key(), base.key(), "{variant:?}");
            assert_eq!(variant.pair(), base.pair(), "{variant:?}");
        }
        let other_app = KeySpec {
            app_json: r#"{"tasks":[1,2,4]}"#,
            ..base
        };
        let other_arch = KeySpec {
            arch_json: r#"{"clbs":2001}"#,
            ..base
        };
        for variant in [other_app, other_arch] {
            assert_ne!(variant.key(), base.key());
            assert_ne!(variant.pair(), base.pair());
        }
    }

    #[test]
    fn length_prefixes_prevent_field_aliasing() {
        let a = KeySpec {
            app_json: "ab",
            arch_json: "c",
            ..spec()
        };
        let b = KeySpec {
            app_json: "a",
            arch_json: "bc",
            ..spec()
        };
        assert_ne!(a.pair(), b.pair());
        assert_ne!(a.key(), b.key());
    }
}
