//! The archived form of one completed exploration.
//!
//! A [`StoreRecord`] captures everything needed to (a) answer the same
//! query again **bit-identically** and (b) seed a new exploration's
//! chain 0 with the archived winner. Every `f64` is persisted as its
//! raw IEEE-754 bit pattern (a `u64`), never as decimal text, so a
//! record survives any number of serialize → replay round trips with
//! its original bits; the winning mapping itself contains only indices
//! and is stored as its plain JSON value.

use crate::key::{PairKey, StoreKey};
use serde::{Deserialize, Serialize, Value};

/// One cost vector with every axis as raw `f64` bits — the lossless
/// persisted form of a Pareto-front member or a winner's cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBits {
    /// Bits of the makespan (µs).
    pub makespan: u64,
    /// Bits of the peak context CLB occupancy.
    pub clb_area: u64,
    /// Bits of the reconfiguration overhead (µs).
    pub reconfig: u64,
    /// Bits of the context count.
    pub contexts: u64,
}

impl CostBits {
    /// Packs four axis values into their bit patterns.
    pub fn from_values(makespan: f64, clb_area: f64, reconfig: f64, contexts: f64) -> Self {
        CostBits {
            makespan: makespan.to_bits(),
            clb_area: clb_area.to_bits(),
            reconfig: reconfig.to_bits(),
            contexts: contexts.to_bits(),
        }
    }

    /// The makespan axis, reconstructed bit-exactly.
    pub fn makespan_f64(&self) -> f64 {
        f64::from_bits(self.makespan)
    }

    /// The CLB-area axis, reconstructed bit-exactly.
    pub fn clb_area_f64(&self) -> f64 {
        f64::from_bits(self.clb_area)
    }

    /// The reconfiguration-overhead axis, reconstructed bit-exactly.
    pub fn reconfig_f64(&self) -> f64 {
        f64::from_bits(self.reconfig)
    }

    /// The context-count axis, reconstructed bit-exactly.
    pub fn contexts_f64(&self) -> f64 {
        f64::from_bits(self.contexts)
    }
}

/// One completed exploration: identity, knobs, summary, Pareto front
/// and the winning mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreRecord {
    /// Full content key (see [`crate::KeySpec::key`]).
    pub key: StoreKey,
    /// `(app, arch)` grouping key (see [`crate::KeySpec::pair`]).
    pub pair: PairKey,
    /// Canonical objective description.
    pub objective: String,
    /// Master RNG seed of the run.
    pub seed: u64,
    /// Portfolio chain count.
    pub chains: u64,
    /// Total iteration budget.
    pub iters: u64,
    /// Warm-up iterations.
    pub warmup: u64,
    /// Per-chain iterations between exchanges.
    pub exchange_every: u64,
    /// Index of the winning chain.
    pub winner: u64,
    /// Iterations actually executed, summed across chains.
    pub iterations: u64,
    /// Context count of the winning mapping.
    pub contexts: u64,
    /// Hardware-task count of the winning mapping.
    pub hw_tasks: u64,
    /// Peak context CLB occupancy of the winning mapping.
    pub clb_area: u64,
    /// Raw bits of the winning makespan (µs).
    pub makespan_bits: u64,
    /// Full cost vector of the winner, as bits.
    pub best: CostBits,
    /// The portfolio Pareto front, sorted by ascending makespan bits'
    /// numeric value, each member as bits.
    pub front: Vec<CostBits>,
    /// The winning mapping's JSON value (indices only — lossless).
    pub mapping: Value,
}

impl StoreRecord {
    /// The winning makespan, reconstructed bit-exactly.
    pub fn makespan(&self) -> f64 {
        f64::from_bits(self.makespan_bits)
    }
}
