//! The store itself: an AOF on disk plus the replayed [`Archive`].
//!
//! [`ResultStore::open`] replays the log (tolerating a torn tail),
//! rebuilds the archive and positions the file at the end of the last
//! intact record, so the next append overwrites any damaged tail
//! instead of burying it. [`append`](ResultStore::append) writes one
//! frame and applies the [`SyncPolicy`]; [`compact`](ResultStore::compact)
//! rewrites the log keeping only the latest record per key, atomically
//! (temp file + rename).

use crate::archive::Archive;
use crate::log::{encode_record, scan, ReplayReport};
use crate::record::StoreRecord;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When appended records are forced to stable storage.
///
/// | policy | fsync cadence | survives |
/// |--------|---------------|----------|
/// | `Always` | every append | power loss up to the last append |
/// | `Interval(n)` | every `n` appends (and on drop) | power loss up to the last sync; process crash up to the last append |
/// | `Never` | only on drop | process crash up to the last append |
///
/// All policies *write* on every append — they differ only in when
/// `fsync` is paid, which the `store_sync` bench measures. Torn-write
/// recovery makes the relaxed policies safe: a partial tail is skipped
/// on replay, never fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append.
    Always,
    /// `fsync` after every `n` appends (`Interval(1)` ≡ `Always`).
    Interval(u32),
    /// Leave syncing to the OS (and the final flush on drop).
    Never,
}

impl SyncPolicy {
    /// Parses the CLI form: `always`, `interval:N` (N ≥ 1) or `never`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(SyncPolicy::Always),
            "never" => Some(SyncPolicy::Never),
            other => {
                let n: u32 = other.strip_prefix("interval:")?.parse().ok()?;
                (n >= 1).then_some(SyncPolicy::Interval(n))
            }
        }
    }

    /// The canonical CLI form.
    pub fn describe(&self) -> String {
        match self {
            SyncPolicy::Always => "always".into(),
            SyncPolicy::Interval(n) => format!("interval:{n}"),
            SyncPolicy::Never => "never".into(),
        }
    }
}

/// Outcome of one [`ResultStore::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Records in the log before compaction (including superseded
    /// duplicates; a damaged tail counts zero).
    pub records_before: usize,
    /// Records after (one per unique key).
    pub records_after: usize,
    /// Log bytes before.
    pub bytes_before: u64,
    /// Log bytes after.
    pub bytes_after: u64,
}

/// A result store: the replayed in-memory [`Archive`] plus (unless
/// in-memory only) the append-only log backing it.
#[derive(Debug)]
pub struct ResultStore {
    path: Option<PathBuf>,
    file: Option<File>,
    sync: SyncPolicy,
    unsynced: u32,
    archive: Archive,
    replay: ReplayReport,
}

impl ResultStore {
    /// Opens (creating if absent) the log at `path`, replays it and
    /// rebuilds the archive. A torn or corrupt tail is skipped and
    /// reported via [`replay_report`](Self::replay_report); the file
    /// cursor is positioned after the last intact record so the next
    /// append reclaims the damaged bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of opening, reading or seeking the log.
    pub fn open(path: impl Into<PathBuf>, sync: SyncPolicy) -> io::Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let bytes = {
            let mut buf = Vec::new();
            io::Read::read_to_end(&mut file, &mut buf)?;
            buf
        };
        let mut archive = Archive::new();
        let replay = scan(&bytes, |record| archive.insert(record));
        file.seek(SeekFrom::Start(replay.bytes))?;
        file.set_len(replay.bytes)?;
        Ok(ResultStore {
            path: Some(path),
            file: Some(file),
            sync,
            unsynced: 0,
            archive,
            replay,
        })
    }

    /// A store with no backing file — archive-only mode, for tests and
    /// benches.
    pub fn in_memory(sync: SyncPolicy) -> Self {
        ResultStore {
            path: None,
            file: None,
            sync,
            unsynced: 0,
            archive: Archive::new(),
            replay: ReplayReport::default(),
        }
    }

    /// The backing log path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The replayed archive.
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// What [`open`](Self::open) found (record count, intact bytes,
    /// torn tail if any).
    pub fn replay_report(&self) -> &ReplayReport {
        &self.replay
    }

    /// Appends one record to the log (honoring the sync policy) and
    /// inserts it into the archive.
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors; the archive is only updated after
    /// the frame is written.
    pub fn append(&mut self, record: StoreRecord) -> io::Result<()> {
        if let Some(file) = &mut self.file {
            file.write_all(&encode_record(&record))?;
            match self.sync {
                SyncPolicy::Always => file.sync_data()?,
                SyncPolicy::Interval(n) => {
                    self.unsynced += 1;
                    if self.unsynced >= n {
                        file.sync_data()?;
                        self.unsynced = 0;
                    }
                }
                SyncPolicy::Never => {}
            }
        }
        self.archive.insert(record);
        Ok(())
    }

    /// Forces any unsynced appends to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the `fsync` error.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(file) = &mut self.file {
            file.sync_data()?;
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Rewrites the log keeping exactly one (the latest) record per
    /// key, in ascending key order, via a temp file renamed over the
    /// original — a crash mid-compaction leaves either the old or the
    /// new log, never a mix.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the original log is untouched on error.
    pub fn compact(&mut self) -> io::Result<CompactReport> {
        let Some(path) = self.path.clone() else {
            let n = self.archive.len();
            return Ok(CompactReport {
                records_before: n,
                records_after: n,
                bytes_before: 0,
                bytes_after: 0,
            });
        };
        let bytes_before = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let records_before = {
            // Count raw log records (duplicates included) for the
            // report; the archive itself is already deduplicated.
            let bytes = std::fs::read(&path)?;
            scan(&bytes, |_| {}).records
        };

        let tmp = path.with_extension("compact.tmp");
        let mut out = File::create(&tmp)?;
        for record in self.archive.records() {
            out.write_all(&encode_record(record))?;
        }
        out.sync_data()?;
        let bytes_after = out.metadata()?.len();
        drop(out);
        std::fs::rename(&tmp, &path)?;

        // Reopen the handle on the new inode, positioned at the end.
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = Some(file);
        self.unsynced = 0;
        Ok(CompactReport {
            records_before,
            records_after: self.archive.len(),
            bytes_before,
            bytes_after,
        })
    }
}

impl Drop for ResultStore {
    fn drop(&mut self) {
        if let Some(file) = &mut self.file {
            let _ = file.sync_data();
        }
    }
}

/// Read-only integrity scan of a log file: replays without building an
/// archive and reports `(replay, file_len)` — a clean log has
/// `replay.bytes == file_len` and no tail issue.
///
/// # Errors
///
/// Propagates the error of reading the file.
pub fn verify(path: impl AsRef<Path>) -> io::Result<(ReplayReport, u64)> {
    let bytes = std::fs::read(path)?;
    let report = scan(&bytes, |_| {});
    Ok((report, bytes.len() as u64))
}
