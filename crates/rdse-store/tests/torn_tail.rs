//! Torn-write recovery: a log truncated at **every** byte offset of
//! its last record — header, checksum, body — replays the intact
//! prefix, reports the tail, and never panics. Same for a checksum
//! flip at every byte of the last record.

use rdse_store::log::{encode_record, scan, RECORD_HEADER_LEN};
use rdse_store::{CostBits, KeySpec, ResultStore, StoreRecord, SyncPolicy};
use serde::Value;

fn record(seed: u64) -> StoreRecord {
    let app = format!(r#"{{"tasks":[{seed}]}}"#);
    let spec = KeySpec {
        app_json: &app,
        arch_json: r#"{"clbs":2000}"#,
        objective: "makespan",
        seed,
        iters: 3000,
        warmup: 600,
        chains: 4,
        exchange_every: 250,
    };
    StoreRecord {
        key: spec.key(),
        pair: spec.pair(),
        objective: "makespan".into(),
        seed,
        chains: 4,
        iters: 3000,
        warmup: 600,
        exchange_every: 250,
        winner: 1,
        iterations: 3000,
        contexts: 3,
        hw_tasks: 7,
        clb_area: 950,
        makespan_bits: (100.0 + seed as f64 / 3.0).to_bits(),
        best: CostBits::from_values(100.0 + seed as f64 / 3.0, 950.0, 12.5, 3.0),
        front: vec![
            CostBits::from_values(100.0 + seed as f64 / 3.0, 950.0, 12.5, 3.0),
            CostBits::from_values(130.0, 600.0, 8.0, 2.0),
        ],
        mapping: Value::Map(vec![("placement".into(), Value::Seq(vec![Value::I64(0)]))]),
    }
}

/// A healthy two-record log plus the byte span of the second record.
fn two_record_log() -> (Vec<u8>, usize) {
    let mut log = encode_record(&record(1));
    let first_len = log.len();
    log.extend_from_slice(&encode_record(&record(2)));
    (log, first_len)
}

#[test]
fn truncation_at_every_byte_of_the_last_record_replays_the_prefix() {
    let (log, first_len) = two_record_log();
    // Sanity: the intact log replays both records cleanly.
    let clean = scan(&log, |_| {});
    assert_eq!(clean.records, 2);
    assert_eq!(clean.bytes, log.len() as u64);
    assert!(clean.tail.is_none());

    // Truncating exactly at the record boundary is not a tear: the
    // prefix is simply a shorter, clean log.
    let boundary = scan(&log[..first_len], |_| {});
    assert_eq!(boundary.records, 1);
    assert!(boundary.tail.is_none());

    for cut in first_len + 1..log.len() {
        let mut replayed = Vec::new();
        let report = scan(&log[..cut], |r| replayed.push(r.seed));
        assert_eq!(replayed, vec![1], "cut at {cut}: prefix record lost");
        assert_eq!(report.records, 1, "cut at {cut}");
        assert_eq!(
            report.bytes, first_len as u64,
            "cut at {cut}: wrong truncation point"
        );
        let tail = report.tail.expect("torn tail must be reported");
        assert_eq!(tail.offset, first_len as u64, "cut at {cut}");
        assert!(
            tail.reason.contains("truncated"),
            "cut at {cut}: unexpected reason '{}'",
            tail.reason
        );
    }
}

#[test]
fn corruption_at_every_byte_of_the_last_record_replays_the_prefix() {
    let (log, first_len) = two_record_log();
    for flip in first_len..log.len() {
        let mut corrupt = log.clone();
        corrupt[flip] ^= 0x5a;
        let mut replayed = Vec::new();
        let report = scan(&corrupt, |r| replayed.push(r.seed));
        // Whatever byte was damaged — magic, version, kind, length,
        // checksum or body — the first record survives and the tail is
        // reported, not panicked on. (A corrupted length field may
        // also legitimately surface as a truncated body.)
        assert_eq!(replayed, vec![1], "flip at {flip}");
        assert_eq!(report.records, 1, "flip at {flip}");
        assert!(report.tail.is_some(), "flip at {flip}: tail not reported");
    }
}

#[test]
fn open_recovers_a_torn_file_and_reclaims_the_tail() {
    let dir = std::env::temp_dir().join(format!("rdse_store_torn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("results.aof");

    let (log, first_len) = two_record_log();
    // Simulate a crash mid-append: half the second record.
    let cut = first_len + (log.len() - first_len) / 2;
    std::fs::write(&path, &log[..cut]).expect("write torn log");

    let mut store = ResultStore::open(&path, SyncPolicy::Always).expect("open tolerates the tear");
    assert_eq!(store.archive().len(), 1);
    let report = store.replay_report().clone();
    assert_eq!(report.records, 1);
    assert!(report.tail.is_some());

    // The next append lands where the torn bytes were; a fresh replay
    // then sees two intact records and no tail.
    store.append(record(3)).expect("append after recovery");
    drop(store);
    let reopened = ResultStore::open(&path, SyncPolicy::Always).expect("reopen");
    assert_eq!(reopened.archive().len(), 2);
    assert!(reopened.replay_report().tail.is_none());
    assert!(reopened.archive().exact(&record(3).key).is_some());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn header_sanity_constants_hold() {
    // The framing contract documented in the crate: header length and
    // a frame's total size.
    let frame = encode_record(&record(1));
    assert!(frame.len() > RECORD_HEADER_LEN);
    assert_eq!(&frame[0..4], b"RDSA");
}
