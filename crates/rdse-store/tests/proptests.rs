//! Property tests for the store's two foundations:
//!
//! 1. **Key stability** — equal resolved specs hash to equal keys, and
//!    flipping any single field yields a different key (with the pair
//!    key changing iff a model field changed).
//! 2. **AOF round-trip** — appending N records and replaying the bytes
//!    rebuilds an archive identical to the in-memory one, fronts
//!    bit-identical.

use proptest::prelude::*;
use rdse_store::log::{encode_record, scan};
use rdse_store::{Archive, CostBits, KeySpec, StoreRecord};
use serde::Value;

/// The owned form of a [`KeySpec`], easy to generate and perturb.
#[derive(Debug, Clone, PartialEq)]
struct OwnedSpec {
    app_json: String,
    arch_json: String,
    objective: String,
    seed: u64,
    iters: u64,
    warmup: u64,
    chains: u64,
    exchange_every: u64,
}

impl OwnedSpec {
    fn as_key_spec(&self) -> KeySpec<'_> {
        KeySpec {
            app_json: &self.app_json,
            arch_json: &self.arch_json,
            objective: &self.objective,
            seed: self.seed,
            iters: self.iters,
            warmup: self.warmup,
            chains: self.chains,
            exchange_every: self.exchange_every,
        }
    }
}

const OBJECTIVES: [&str; 3] = ["makespan", "weighted(1, 5, 0.5)", "lexi(makespan, area)"];

fn spec_strategy() -> impl Strategy<Value = OwnedSpec> {
    (
        (0u64..1000, 0u64..1000, 0usize..OBJECTIVES.len()),
        (0u64..u64::MAX / 2, 1u64..1_000_000, 0u64..100_000),
        (1u64..64, 0u64..10_000),
    )
        .prop_map(
            |((app_tag, arch_tag, obj_pick), (seed, iters, warmup), (chains, exchange_every))| {
                OwnedSpec {
                    app_json: format!(r#"{{"tasks":[{app_tag}]}}"#),
                    arch_json: format!(r#"{{"clbs":{arch_tag}}}"#),
                    objective: OBJECTIVES[obj_pick].to_string(),
                    seed,
                    iters,
                    warmup,
                    chains,
                    exchange_every,
                }
            },
        )
}

fn record_for(spec: &OwnedSpec, makespan_bits: u64, front_len: usize) -> StoreRecord {
    let ks = spec.as_key_spec();
    let front = (0..front_len.max(1))
        .map(|i| CostBits {
            makespan: makespan_bits.wrapping_add(i as u64),
            clb_area: (500.0 + i as f64).to_bits(),
            reconfig: (7.25 * (i + 1) as f64).to_bits(),
            contexts: (i as f64 + 1.0).to_bits(),
        })
        .collect::<Vec<_>>();
    StoreRecord {
        key: ks.key(),
        pair: ks.pair(),
        objective: spec.objective.clone(),
        seed: spec.seed,
        chains: spec.chains,
        iters: spec.iters,
        warmup: spec.warmup,
        exchange_every: spec.exchange_every,
        winner: spec.seed % spec.chains,
        iterations: spec.iters,
        contexts: 2,
        hw_tasks: 5,
        clb_area: 800,
        makespan_bits,
        best: front[0],
        front,
        mapping: Value::Map(vec![(
            "placement".into(),
            Value::Seq(vec![Value::I64(spec.seed as i64 % 97)]),
        )]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn equal_specs_give_equal_keys_and_any_field_flip_changes_the_key(
        spec in spec_strategy(),
        bump in 1u64..1_000,
    ) {
        let base = spec.as_key_spec();
        prop_assert_eq!(spec.clone().as_key_spec().key(), base.key());
        prop_assert_eq!(spec.clone().as_key_spec().pair(), base.pair());

        // Flip each field in turn; every flip must change the full
        // key, and exactly the model flips must change the pair key.
        let mut flips: Vec<(OwnedSpec, bool)> = Vec::new();
        let mut flip = |f: &dyn Fn(&mut OwnedSpec), model: bool| {
            let mut s = spec.clone();
            f(&mut s);
            flips.push((s, model));
        };
        flip(&|s| s.app_json.push(' '), true);
        flip(&|s| s.arch_json.push(' '), true);
        flip(&|s| s.objective.push('!'), false);
        flip(&|s| s.seed = s.seed.wrapping_add(bump), false);
        flip(&|s| s.iters = s.iters.wrapping_add(bump), false);
        flip(&|s| s.warmup = s.warmup.wrapping_add(bump), false);
        flip(&|s| s.chains = s.chains.wrapping_add(bump), false);
        flip(&|s| s.exchange_every = s.exchange_every.wrapping_add(bump), false);
        for (flipped, is_model_field) in &flips {
            prop_assert_ne!(flipped.as_key_spec().key(), base.key());
            prop_assert_eq!(flipped.as_key_spec().pair() != base.pair(), *is_model_field);
        }
    }

    #[test]
    fn append_n_then_replay_rebuilds_the_identical_archive(
        specs in collection::vec((spec_strategy(), 1u64..u64::MAX / 2, 0usize..4), 1..12),
    ) {
        // Build the log bytes and the reference archive in one pass.
        let mut log = Vec::new();
        let mut reference = Archive::new();
        for (spec, raw_bits, front_len) in &specs {
            let record = record_for(spec, *raw_bits, *front_len);
            log.extend_from_slice(&encode_record(&record));
            reference.insert(record);
        }

        // Replay the bytes into a fresh archive.
        let mut replayed = Archive::new();
        let report = scan(&log, |r| replayed.insert(r));
        prop_assert_eq!(report.records, specs.len());
        prop_assert!(report.tail.is_none(), "{:?}", report.tail);
        prop_assert_eq!(report.bytes, log.len() as u64);

        // Replay ≡ in-memory: same size, and every record — fronts
        // included — bit-identical.
        prop_assert_eq!(replayed.len(), reference.len());
        prop_assert_eq!(replayed.pairs(), reference.pairs());
        for original in reference.records() {
            let got = replayed.exact(&original.key);
            prop_assert_eq!(got, Some(original));
        }
    }
}
