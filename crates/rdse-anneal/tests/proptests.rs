//! Property-based tests of the shared [`ParetoFront`] archive — the
//! invariants every exploration surface (chains, sweeps, corpus)
//! relies on:
//!
//! 1. no member dominates (or equals) another member;
//! 2. every point ever offered is either on the front or dominated by
//!    (or equal to) a member — dominated points are excluded, nothing
//!    non-dominated is lost;
//! 3. the resulting front *set* does not depend on insertion order.

use proptest::prelude::*;
use rdse_anneal::{Cost, Dominance, ParetoFront};

/// A small integer-valued cost vector: integer axes make collisions
/// (ties, duplicates, partial dominance) common enough to matter.
#[derive(Debug, Clone, Copy, PartialEq)]
struct V3(i8, i8, i8);

impl Cost for V3 {
    fn n_objectives(&self) -> usize {
        3
    }
    fn objective(&self, i: usize) -> f64 {
        f64::from([self.0, self.1, self.2][i])
    }
}

fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<V3>> {
    proptest::collection::vec(
        (0i8..12, 0i8..12, 0i8..12).prop_map(|(a, b, c)| V3(a, b, c)),
        1..=max_len,
    )
}

fn build_front(points: &[V3]) -> ParetoFront<V3> {
    let mut front = ParetoFront::new();
    for &p in points {
        front.insert(p);
    }
    front
}

/// Canonical sortable form of a front's member set.
fn member_set(front: &ParetoFront<V3>) -> Vec<(i8, i8, i8)> {
    let mut out: Vec<(i8, i8, i8)> = front.iter().map(|v| (v.0, v.1, v.2)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn no_member_dominates_or_equals_another(points in arb_points(40)) {
        let front = build_front(&points);
        let members = front.members();
        for (i, a) in members.iter().enumerate() {
            for (j, b) in members.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.dominates(b), "{a:?} dominates fellow member {b:?}");
                    prop_assert!(a != b, "duplicate member {a:?}");
                }
            }
        }
    }

    #[test]
    fn every_offered_point_is_covered(points in arb_points(40)) {
        // Exactness both ways: every dominated insertion is excluded,
        // and everything excluded has a reason (a dominating or equal
        // member).
        let front = build_front(&points);
        for p in &points {
            let on_front = front.contains(p);
            let covered = front.iter().any(|m| m.dominates(p) || m == p);
            prop_assert!(
                on_front || covered,
                "{p:?} vanished: not on the front, not dominated"
            );
            if on_front {
                prop_assert!(
                    !front.iter().any(|m| m.dominates(p)),
                    "{p:?} is on the front yet dominated"
                );
            }
        }
    }

    #[test]
    fn insertion_order_does_not_change_the_front_set(points in arb_points(32)) {
        let forward = member_set(&build_front(&points));
        let mut reversed = points.clone();
        reversed.reverse();
        prop_assert_eq!(&forward, &member_set(&build_front(&reversed)));
        // A deterministic shuffle (stride permutation) as a third order.
        let mut strided = Vec::with_capacity(points.len());
        for offset in 0..7.min(points.len()) {
            strided.extend(points.iter().skip(offset).step_by(7).copied());
        }
        if strided.len() == points.len() {
            prop_assert_eq!(&forward, &member_set(&build_front(&strided)));
        }
    }

    #[test]
    fn merge_equals_bulk_insert(points in arb_points(32), split in 0usize..32) {
        let split = split.min(points.len());
        let (left, right) = points.split_at(split);
        let mut merged = build_front(left);
        merged.merge(&build_front(right));
        prop_assert_eq!(member_set(&merged), member_set(&build_front(&points)));
    }
}
