//! Property-based tests of the shared [`ParetoFront`] archive — the
//! invariants every exploration surface (chains, sweeps, corpus)
//! relies on:
//!
//! 1. no member dominates (or equals) another member;
//! 2. every point ever offered is either on the front or dominated by
//!    (or equal to) a member — dominated points are excluded, nothing
//!    non-dominated is lost;
//! 3. the resulting front *set* does not depend on insertion order.

use proptest::prelude::*;
use rdse_anneal::{crowding_distance, non_dominated_rank, Cost, Dominance, ParetoFront};

/// A small integer-valued cost vector: integer axes make collisions
/// (ties, duplicates, partial dominance) common enough to matter.
#[derive(Debug, Clone, Copy, PartialEq)]
struct V3(i8, i8, i8);

impl Cost for V3 {
    fn n_objectives(&self) -> usize {
        3
    }
    fn objective(&self, i: usize) -> f64 {
        f64::from([self.0, self.1, self.2][i])
    }
}

fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<V3>> {
    proptest::collection::vec(
        (0i8..12, 0i8..12, 0i8..12).prop_map(|(a, b, c)| V3(a, b, c)),
        1..=max_len,
    )
}

fn build_front(points: &[V3]) -> ParetoFront<V3> {
    let mut front = ParetoFront::new();
    for &p in points {
        front.insert(p);
    }
    front
}

/// Canonical sortable form of a front's member set.
fn member_set(front: &ParetoFront<V3>) -> Vec<(i8, i8, i8)> {
    let mut out: Vec<(i8, i8, i8)> = front.iter().map(|v| (v.0, v.1, v.2)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn no_member_dominates_or_equals_another(points in arb_points(40)) {
        let front = build_front(&points);
        let members = front.members();
        for (i, a) in members.iter().enumerate() {
            for (j, b) in members.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.dominates(b), "{a:?} dominates fellow member {b:?}");
                    prop_assert!(a != b, "duplicate member {a:?}");
                }
            }
        }
    }

    #[test]
    fn every_offered_point_is_covered(points in arb_points(40)) {
        // Exactness both ways: every dominated insertion is excluded,
        // and everything excluded has a reason (a dominating or equal
        // member).
        let front = build_front(&points);
        for p in &points {
            let on_front = front.contains(p);
            let covered = front.iter().any(|m| m.dominates(p) || m == p);
            prop_assert!(
                on_front || covered,
                "{p:?} vanished: not on the front, not dominated"
            );
            if on_front {
                prop_assert!(
                    !front.iter().any(|m| m.dominates(p)),
                    "{p:?} is on the front yet dominated"
                );
            }
        }
    }

    #[test]
    fn insertion_order_does_not_change_the_front_set(points in arb_points(32)) {
        let forward = member_set(&build_front(&points));
        let mut reversed = points.clone();
        reversed.reverse();
        prop_assert_eq!(&forward, &member_set(&build_front(&reversed)));
        // A deterministic shuffle (stride permutation) as a third order.
        let mut strided = Vec::with_capacity(points.len());
        for offset in 0..7.min(points.len()) {
            strided.extend(points.iter().skip(offset).step_by(7).copied());
        }
        if strided.len() == points.len() {
            prop_assert_eq!(&forward, &member_set(&build_front(&strided)));
        }
    }

    #[test]
    fn merge_equals_bulk_insert(points in arb_points(32), split in 0usize..32) {
        let split = split.min(points.len());
        let (left, right) = points.split_at(split);
        let mut merged = build_front(left);
        merged.merge(&build_front(right));
        prop_assert_eq!(member_set(&merged), member_set(&build_front(&points)));
    }

    #[test]
    fn rank_zero_is_exactly_the_pareto_front(points in arb_points(40)) {
        // NSGA-II's first front and the incremental archive must agree
        // on what "non-dominated" means — they share the Dominance
        // impl, and this pins that they stay in sync.
        let ranks = non_dominated_rank(&points);
        let front = member_set(&build_front(&points));
        let mut rank0: Vec<(i8, i8, i8)> = points
            .iter()
            .zip(&ranks)
            .filter(|&(_, &r)| r == 0)
            .map(|(v, _)| (v.0, v.1, v.2))
            .collect();
        rank0.sort_unstable();
        rank0.dedup();
        prop_assert_eq!(rank0, front);
    }

    #[test]
    fn ranks_are_insertion_order_independent(points in arb_points(32)) {
        // A rank belongs to the point's value, not its position: any
        // permutation of the input permutes the ranks identically.
        let forward = non_dominated_rank(&points);
        let mut reversed = points.clone();
        reversed.reverse();
        let mut back = non_dominated_rank(&reversed);
        back.reverse();
        prop_assert_eq!(&forward, &back);
        // Deterministic stride shuffle as a third order.
        let n = points.len();
        let mut perm: Vec<usize> = Vec::with_capacity(n);
        for offset in 0..7.min(n) {
            perm.extend((offset..n).step_by(7));
        }
        if perm.len() == n {
            let strided: Vec<V3> = perm.iter().map(|&i| points[i]).collect();
            let strided_ranks = non_dominated_rank(&strided);
            let mut unshuffled = vec![0usize; n];
            for (k, &i) in perm.iter().enumerate() {
                unshuffled[i] = strided_ranks[k];
            }
            prop_assert_eq!(&forward, &unshuffled);
        }
    }

    #[test]
    fn ranks_respect_dominance(points in arb_points(32)) {
        // If a dominates b, a's rank is strictly lower; equal points
        // always land in the same rank.
        let ranks = non_dominated_rank(&points);
        for (i, a) in points.iter().enumerate() {
            for (j, b) in points.iter().enumerate() {
                if a.dominates(b) {
                    prop_assert!(
                        ranks[i] < ranks[j],
                        "{a:?} (rank {}) dominates {b:?} (rank {})", ranks[i], ranks[j]
                    );
                }
                if a == b {
                    prop_assert_eq!(ranks[i], ranks[j]);
                }
            }
        }
    }

    #[test]
    fn crowding_boundaries_are_infinite(points in arb_points(32)) {
        // Per objective, some holder of the minimum and some holder of
        // the maximum must be marked infinite — extremal solutions
        // never lose a crowded tournament to interior ones.
        let dist = crowding_distance(&points);
        prop_assert_eq!(dist.len(), points.len());
        let infinite = |i: usize| dist[i] == f64::INFINITY;
        for m in 0..3 {
            let lo = points
                .iter()
                .map(|p| p.objective(m))
                .fold(f64::INFINITY, f64::min);
            let hi = points
                .iter()
                .map(|p| p.objective(m))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                (0..points.len()).any(|i| points[i].objective(m) == lo && infinite(i)),
                "no infinite point at the axis-{m} minimum"
            );
            prop_assert!(
                (0..points.len()).any(|i| points[i].objective(m) == hi && infinite(i)),
                "no infinite point at the axis-{m} maximum"
            );
        }
        // Interior distances are finite, non-negative, deterministic.
        for &d in &dist {
            prop_assert!(d >= 0.0);
        }
        let again = crowding_distance(&points);
        for (a, b) in dist.iter().zip(&again) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
