//! Multi-objective cost values and the scalarizers that project them
//! onto the annealer's acceptance axis.
//!
//! The paper's design-space exploration is fundamentally
//! multi-objective: FPGA area (CLBs), reconfiguration overhead and
//! schedule latency trade off against each other (§5, Fig. 3). The
//! engine, however, is a scalar optimizer — Metropolis acceptance needs
//! a single energy difference. This module separates the two concerns:
//!
//! * a [`Cost`] is the *full* cost of a solution — one or more
//!   objectives, all minimized — recorded verbatim in run results and
//!   [`ParetoFront`](crate::ParetoFront) archives;
//! * a [`Scalarizer`] projects a cost onto the scalar view the
//!   acceptance rule walks on ([`WeightedSum`], [`Lexicographic`], or
//!   the cost's own default via [`DefaultScalar`]).
//!
//! `f64` implements [`Cost`] as the single-objective case, and
//! [`DefaultScalar`] is the identity on it — so a scalar problem under
//! the default configuration runs *bit-identically* to the historical
//! `cost() -> f64` engine: same deltas, same RNG draws, same walk.

/// The cost of a candidate solution: a point in objective space, every
/// component minimized.
///
/// Implementations are typically small `Copy` structs (the engine
/// clones one per accepted move). The single-objective case is plain
/// `f64`; multi-objective problems expose each axis through
/// [`objective`](Cost::objective) so generic scalarizers and the
/// [`ParetoFront`](crate::ParetoFront) dominance test work without
/// knowing the concrete type.
pub trait Cost: Clone + PartialEq + std::fmt::Debug {
    /// Number of objectives (≥ 1).
    fn n_objectives(&self) -> usize {
        1
    }

    /// Value of objective `i` (lower is better). `i` is in
    /// `0..n_objectives()`.
    fn objective(&self, i: usize) -> f64;

    /// The cost's own scalar view — what the engine minimizes when no
    /// explicit [`Scalarizer`] is supplied. Defaults to the first
    /// objective.
    fn scalar(&self) -> f64 {
        self.objective(0)
    }
}

/// The single-objective cost: the value is the objective.
impl Cost for f64 {
    fn objective(&self, i: usize) -> f64 {
        debug_assert_eq!(i, 0, "f64 cost has exactly one objective");
        *self
    }

    fn scalar(&self) -> f64 {
        *self
    }
}

/// Projects a [`Cost`] onto the scalar axis driving Metropolis
/// acceptance.
///
/// The engine keeps the full cost vector of the current and best
/// solutions (and archives accepted vectors in an optional Pareto
/// front); only the *acceptance decision* goes through the scalarizer.
pub trait Scalarizer<C: Cost> {
    /// The scalar view of `cost` (lower is better).
    fn scalarize(&self, cost: &C) -> f64;

    /// The energy difference driving Metropolis acceptance when moving
    /// from `cur` to `new`. `scalar_delta` is
    /// `scalarize(new) - scalarize(cur)` as computed by the engine from
    /// its stored scalars; the default returns it unchanged.
    /// [`Lexicographic`] overrides this with a tiered comparison.
    fn delta(&self, new: &C, cur: &C, scalar_delta: f64) -> f64 {
        let _ = (new, cur);
        scalar_delta
    }
}

/// The identity scalarizer: minimizes [`Cost::scalar`]. For `f64` costs
/// this reproduces the historical scalar engine bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DefaultScalar;

impl<C: Cost> Scalarizer<C> for DefaultScalar {
    fn scalarize(&self, cost: &C) -> f64 {
        cost.scalar()
    }
}

/// Weighted-sum scalarization: `Σ wᵢ · objectiveᵢ`.
///
/// Objectives beyond the weight list contribute nothing (weight 0);
/// weights beyond the cost's objective count are ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSum {
    weights: Vec<f64>,
}

impl WeightedSum {
    /// Builds a weighted-sum scalarizer.
    ///
    /// # Errors
    ///
    /// Rejects an empty weight list, non-finite or negative weights,
    /// and the all-zero list (which would make every move look free).
    pub fn new(weights: Vec<f64>) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("weighted-sum scalarizer needs at least one weight".into());
        }
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(format!("weight {w} is not a finite non-negative number"));
        }
        if weights.iter().all(|&w| w == 0.0) {
            return Err("weighted-sum scalarizer needs at least one positive weight".into());
        }
        Ok(WeightedSum { weights })
    }

    /// The weight vector, in objective order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl<C: Cost> Scalarizer<C> for WeightedSum {
    fn scalarize(&self, cost: &C) -> f64 {
        let n = cost.n_objectives().min(self.weights.len());
        let mut sum = 0.0;
        for (i, &w) in self.weights.iter().take(n).enumerate() {
            sum += w * cost.objective(i);
        }
        sum
    }
}

/// Lexicographic scalarization over a priority order of objective
/// indices.
///
/// A single finite scalar cannot encode a true lexicographic order
/// without catastrophic precision loss in the lower tiers, so this
/// scalarizer splits the roles instead:
///
/// * [`scalarize`](Scalarizer::scalarize) returns the **primary**
///   objective — scalar run statistics and `target_cost` operate on
///   the highest-priority axis;
/// * [`delta`](Scalarizer::delta) performs the tiered comparison: the
///   acceptance energy is the difference in the *first* objective (in
///   priority order) on which the two costs disagree, and `0.0` on a
///   full tie. Ties on the primary objective are therefore broken by
///   the secondary one, and so on — at each tier's native scale, with
///   no magic weight constants.
///
/// The engine's best-so-far tracking also goes through `delta`, so the
/// retained best snapshot is the *tiered* best — a solution that ties
/// the primary axis but improves a lower tier replaces the incumbent,
/// and the reported winner always has a retrievable solution. The
/// recorded Pareto archive additionally exposes the whole trade-off
/// surface (see `lexi_min` in the mapping layer's report path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lexicographic {
    order: Vec<usize>,
}

impl Lexicographic {
    /// Builds a lexicographic scalarizer minimizing objectives in the
    /// given priority order (highest first).
    ///
    /// # Errors
    ///
    /// Rejects an empty order and duplicate objective indices.
    pub fn new(order: Vec<usize>) -> Result<Self, String> {
        if order.is_empty() {
            return Err("lexicographic scalarizer needs at least one objective".into());
        }
        for (i, a) in order.iter().enumerate() {
            if order[..i].contains(a) {
                return Err(format!("objective {a} listed twice in lexicographic order"));
            }
        }
        Ok(Lexicographic { order })
    }

    /// The priority order (objective indices, highest priority first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

impl<C: Cost> Scalarizer<C> for Lexicographic {
    fn scalarize(&self, cost: &C) -> f64 {
        cost.objective(self.order[0])
    }

    fn delta(&self, new: &C, cur: &C, _scalar_delta: f64) -> f64 {
        for &i in &self.order {
            let (a, b) = (new.objective(i), cur.objective(i));
            if a != b {
                return a - b;
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Pair(f64, f64);

    impl Cost for Pair {
        fn n_objectives(&self) -> usize {
            2
        }
        fn objective(&self, i: usize) -> f64 {
            [self.0, self.1][i]
        }
    }

    #[test]
    fn f64_is_the_identity_cost() {
        let c = 3.5f64;
        assert_eq!(c.n_objectives(), 1);
        assert_eq!(c.objective(0), 3.5);
        assert_eq!(DefaultScalar.scalarize(&c).to_bits(), 3.5f64.to_bits());
        assert_eq!(DefaultScalar.delta(&2.0, &3.5, 2.0 - 3.5), -1.5);
    }

    #[test]
    fn weighted_sum_combines_objectives() {
        let z = WeightedSum::new(vec![1.0, 10.0]).unwrap();
        assert_eq!(z.scalarize(&Pair(2.0, 3.0)), 32.0);
        // Extra weights beyond the objective count are ignored.
        let z = WeightedSum::new(vec![2.0, 1.0, 99.0]).unwrap();
        assert_eq!(z.scalarize(&Pair(1.0, 1.0)), 3.0);
    }

    #[test]
    fn weighted_sum_rejects_bad_weights() {
        assert!(WeightedSum::new(vec![]).is_err());
        assert!(WeightedSum::new(vec![-1.0]).is_err());
        assert!(WeightedSum::new(vec![f64::NAN]).is_err());
        assert!(WeightedSum::new(vec![0.0, 0.0]).is_err());
        assert!(WeightedSum::new(vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn lexicographic_breaks_ties_on_lower_tiers() {
        let z = Lexicographic::new(vec![0, 1]).unwrap();
        // Primary differs: its delta decides.
        assert_eq!(z.delta(&Pair(1.0, 9.0), &Pair(2.0, 0.0), -1.0), -1.0);
        // Primary ties: secondary decides, at its own scale.
        assert_eq!(z.delta(&Pair(2.0, 1.0), &Pair(2.0, 4.0), 0.0), -3.0);
        // Full tie: zero energy.
        assert_eq!(z.delta(&Pair(2.0, 4.0), &Pair(2.0, 4.0), 0.0), 0.0);
        // Scalar view is the primary objective.
        assert_eq!(z.scalarize(&Pair(7.0, 1.0)), 7.0);
    }

    #[test]
    fn lexicographic_rejects_duplicates_and_empty() {
        assert!(Lexicographic::new(vec![]).is_err());
        assert!(Lexicographic::new(vec![0, 1, 0]).is_err());
        assert!(Lexicographic::new(vec![1, 0]).is_ok());
    }
}
