//! Self-contained test problems.
//!
//! The paper states the accelerated annealing engine was "validated on
//! several types of problems, including graph partitioning and
//! continuous function minimization" (§4.1). These two problem families
//! are provided both as engine tests and as fixtures for the schedule
//! ablation experiments.

pub mod bipartition;
pub mod continuous;
