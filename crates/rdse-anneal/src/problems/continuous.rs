//! Continuous function minimization — the second validation problem
//! family of §4.1.
//!
//! Moves perturb one coordinate with Gaussian noise; three move classes
//! with different step sizes give the adaptive move-class controller
//! something to exploit (large steps dominate early, small steps late —
//! a discrete analogue of the classic annealing range limiter).

use crate::problem::Problem;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Relative step sizes of the three move classes.
const STEP_SCALES: [f64; 3] = [1.0, 0.1, 0.01];

/// A reversible coordinate perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinateMove {
    index: usize,
    previous: f64,
}

/// Sphere function `Σ xᵢ²` with coordinate-perturbation moves.
#[derive(Debug, Clone)]
pub struct Sphere {
    x: Vec<f64>,
    base_step: f64,
}

impl Sphere {
    /// Creates an instance of dimension `dim` with coordinates drawn
    /// uniformly from `[-radius, radius]` using `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `radius <= 0`.
    pub fn new(dim: usize, radius: f64, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(radius > 0.0, "radius must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        Sphere {
            x: (0..dim)
                .map(|_| rng.random_range(-radius..radius))
                .collect(),
            base_step: radius,
        }
    }

    /// Current coordinate vector.
    pub fn coordinates(&self) -> &[f64] {
        &self.x
    }
}

/// Standard normal sample via Box–Muller (avoids a distribution dep).
fn gaussian(rng: &mut dyn RngCore) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Problem for Sphere {
    type Move = CoordinateMove;
    type Snapshot = Vec<f64>;
    type Cost = f64;

    fn cost(&self) -> f64 {
        self.x.iter().map(|v| v * v).sum()
    }

    fn n_move_classes(&self) -> usize {
        STEP_SCALES.len()
    }

    fn try_move(&mut self, rng: &mut dyn RngCore, class: usize) -> Option<(Self::Move, f64)> {
        let index = rng.random_range(0..self.x.len());
        let previous = self.x[index];
        let scale = STEP_SCALES[class.min(STEP_SCALES.len() - 1)];
        self.x[index] += gaussian(rng) * self.base_step * scale;
        Some((CoordinateMove { index, previous }, self.cost()))
    }

    fn undo(&mut self, mv: Self::Move) {
        self.x[mv.index] = mv.previous;
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.x.clone()
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        self.x.clone_from(snapshot);
    }
}

/// Rosenbrock function `Σ 100(xᵢ₊₁ − xᵢ²)² + (1 − xᵢ)²` — the classic
/// curved-valley test for annealing schedules.
#[derive(Debug, Clone)]
pub struct Rosenbrock {
    x: Vec<f64>,
    base_step: f64,
}

impl Rosenbrock {
    /// Creates an instance of dimension `dim ≥ 2` with coordinates in
    /// `[-2, 2]`.
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim >= 2, "rosenbrock needs dimension at least 2");
        let mut rng = StdRng::seed_from_u64(seed);
        Rosenbrock {
            x: (0..dim).map(|_| rng.random_range(-2.0..2.0)).collect(),
            base_step: 1.0,
        }
    }

    /// Current coordinate vector.
    pub fn coordinates(&self) -> &[f64] {
        &self.x
    }
}

impl Problem for Rosenbrock {
    type Move = CoordinateMove;
    type Snapshot = Vec<f64>;
    type Cost = f64;

    fn cost(&self) -> f64 {
        self.x
            .windows(2)
            .map(|w| {
                let (a, b) = (w[0], w[1]);
                100.0 * (b - a * a).powi(2) + (1.0 - a).powi(2)
            })
            .sum()
    }

    fn n_move_classes(&self) -> usize {
        STEP_SCALES.len()
    }

    fn try_move(&mut self, rng: &mut dyn RngCore, class: usize) -> Option<(Self::Move, f64)> {
        let index = rng.random_range(0..self.x.len());
        let previous = self.x[index];
        let scale = STEP_SCALES[class.min(STEP_SCALES.len() - 1)];
        self.x[index] += gaussian(rng) * self.base_step * scale;
        Some((CoordinateMove { index, previous }, self.cost()))
    }

    fn undo(&mut self, mv: Self::Move) {
        self.x[mv.index] = mv.previous;
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.x.clone()
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        self.x.clone_from(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{anneal, RunOptions};
    use crate::schedule::{GeometricSchedule, LamSchedule};

    #[test]
    fn sphere_cost_at_origin_is_zero() {
        let mut p = Sphere::new(3, 1.0, 0);
        p.restore(&vec![0.0; 3]);
        assert_eq!(p.cost(), 0.0);
    }

    #[test]
    fn sphere_anneals_to_near_zero() {
        let mut p = Sphere::new(6, 5.0, 11);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 60_000,
                warmup_iterations: 2_000,
                seed: 13,
                ..RunOptions::default()
            },
        );
        assert!(r.best_cost < 0.5, "best cost {}", r.best_cost);
    }

    #[test]
    fn rosenbrock_improves_substantially() {
        let mut p = Rosenbrock::new(4, 3);
        let initial = p.cost();
        let mut s = GeometricSchedule::new(10.0, 0.999, 10);
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 80_000,
                warmup_iterations: 2_000,
                seed: 17,
                ..RunOptions::default()
            },
        );
        assert!(
            r.best_cost < initial * 0.1,
            "{} -> {}",
            initial,
            r.best_cost
        );
    }

    #[test]
    fn undo_is_exact() {
        let mut p = Rosenbrock::new(5, 9);
        let before = p.coordinates().to_vec();
        let cost_before = p.cost();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (mv, _) = p.try_move(&mut rng, 0).unwrap();
        p.undo(mv);
        assert_eq!(p.coordinates(), &before[..]);
        assert_eq!(p.cost(), cost_before);
    }

    #[test]
    fn adaptive_controller_not_worse_than_uniform_on_sphere() {
        let run = |adaptive| {
            let mut p = Sphere::new(8, 10.0, 21);
            let mut s = LamSchedule::new(0.5);
            anneal(
                &mut p,
                &mut s,
                &RunOptions {
                    max_iterations: 40_000,
                    warmup_iterations: 1_000,
                    seed: 23,
                    adaptive_moves: adaptive,
                    ..RunOptions::default()
                },
            )
            .best_cost
        };
        // Both should reach a decent solution; this guards the plumbing
        // rather than asserting superiority on one seed.
        assert!(run(true) < 5.0);
        assert!(run(false) < 5.0);
    }
}
