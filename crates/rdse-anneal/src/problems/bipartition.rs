//! Balanced graph bipartition — one of the validation problems of §4.1.
//!
//! Cost = (weight of edges crossing the cut) + `penalty · imbalance²`,
//! where imbalance is the difference between the two side sizes. Two
//! move classes are exposed: single-node flips and balanced pair swaps.

use crate::problem::Problem;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A reversible bipartition move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BipartitionMove {
    /// Flip one node to the other side.
    Flip(usize),
    /// Swap the sides of two nodes currently on opposite sides.
    Swap(usize, usize),
}

/// Balanced min-cut bipartition instance and current solution.
#[derive(Debug, Clone)]
pub struct Bipartition {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
    adj: Vec<Vec<(usize, f64)>>,
    side: Vec<bool>,
    penalty: f64,
    cut: f64,
    imbalance: i64,
}

impl Bipartition {
    /// Builds an instance from an edge list with a random initial
    /// partition drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n`.
    pub fn new(n: usize, edges: Vec<(usize, usize, f64)>, penalty: f64, seed: u64) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v, w) in &edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            adj[u].push((v, w));
            adj[v].push((u, w));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let side: Vec<bool> = (0..n).map(|_| rng.random()).collect();
        let mut p = Bipartition {
            n,
            edges,
            adj,
            side,
            penalty,
            cut: 0.0,
            imbalance: 0,
        };
        p.recompute();
        p
    }

    /// Classic sanity instance: two `k`-cliques joined by one bridge
    /// edge. The optimal balanced cut has cost 1.
    pub fn two_cliques(k: usize, seed: u64) -> Self {
        let mut edges = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                edges.push((a, b, 1.0));
                edges.push((k + a, k + b, 1.0));
            }
        }
        edges.push((0, k, 1.0));
        Bipartition::new(2 * k, edges, 1.0, seed)
    }

    fn recompute(&mut self) {
        self.cut = self
            .edges
            .iter()
            .filter(|&&(u, v, _)| self.side[u] != self.side[v])
            .map(|&(_, _, w)| w)
            .sum();
        let ones = self.side.iter().filter(|&&s| s).count() as i64;
        self.imbalance = 2 * ones - self.n as i64;
    }

    /// Cut weight of the current partition (without balance penalty).
    pub fn cut_weight(&self) -> f64 {
        self.cut
    }

    /// Signed size imbalance (`|side1| − |side0|`).
    pub fn imbalance(&self) -> i64 {
        self.imbalance
    }

    /// Change in cut weight if `v` flipped sides.
    fn flip_delta(&self, v: usize) -> f64 {
        let mut delta = 0.0;
        for &(u, w) in &self.adj[v] {
            if self.side[u] == self.side[v] {
                delta += w; // becomes cut
            } else {
                delta -= w; // becomes internal
            }
        }
        delta
    }

    fn do_flip(&mut self, v: usize) {
        self.cut += self.flip_delta(v);
        self.imbalance += if self.side[v] { -2 } else { 2 };
        self.side[v] = !self.side[v];
    }
}

impl Problem for Bipartition {
    type Move = BipartitionMove;
    type Snapshot = Vec<bool>;
    type Cost = f64;

    fn cost(&self) -> f64 {
        self.cut + self.penalty * (self.imbalance * self.imbalance) as f64
    }

    fn n_move_classes(&self) -> usize {
        2
    }

    fn try_move(&mut self, rng: &mut dyn RngCore, class: usize) -> Option<(Self::Move, f64)> {
        match class {
            0 => {
                let v = rng.random_range(0..self.n);
                self.do_flip(v);
                Some((BipartitionMove::Flip(v), self.cost()))
            }
            _ => {
                let a = rng.random_range(0..self.n);
                let b = rng.random_range(0..self.n);
                if self.side[a] == self.side[b] {
                    return None; // swap requires opposite sides
                }
                self.do_flip(a);
                self.do_flip(b);
                Some((BipartitionMove::Swap(a, b), self.cost()))
            }
        }
    }

    fn undo(&mut self, mv: Self::Move) {
        match mv {
            BipartitionMove::Flip(v) => self.do_flip(v),
            BipartitionMove::Swap(a, b) => {
                self.do_flip(a);
                self.do_flip(b);
            }
        }
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.side.clone()
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        self.side.clone_from(snapshot);
        self.recompute();
    }

    fn observables(&self) -> Vec<(&'static str, f64)> {
        vec![("cut", self.cut), ("imbalance", self.imbalance as f64)]
    }
}

/// Speculative scoring for bipartition: a candidate is the drawn move
/// itself, scored by apply–cost–undo against the unchanged state. Used
/// by the engine's speculation equivalence tests; scoring is serial
/// here (the mapping problem is where parallel scoring pays).
impl crate::speculate::SpeculativeProblem for Bipartition {
    type Candidate = BipartitionMove;

    fn propose_candidate(
        &mut self,
        rng: &mut dyn RngCore,
        class: usize,
    ) -> Option<BipartitionMove> {
        match class {
            0 => Some(BipartitionMove::Flip(rng.random_range(0..self.n))),
            _ => {
                let a = rng.random_range(0..self.n);
                let b = rng.random_range(0..self.n);
                if self.side[a] == self.side[b] {
                    return None;
                }
                Some(BipartitionMove::Swap(a, b))
            }
        }
    }

    fn score_candidates(&mut self, candidates: &[BipartitionMove], out: &mut Vec<Option<f64>>) {
        out.clear();
        for &mv in candidates {
            match mv {
                BipartitionMove::Flip(v) => {
                    self.do_flip(v);
                    out.push(Some(self.cost()));
                    self.do_flip(v);
                }
                BipartitionMove::Swap(a, b) => {
                    self.do_flip(a);
                    self.do_flip(b);
                    out.push(Some(self.cost()));
                    self.do_flip(a);
                    self.do_flip(b);
                }
            }
        }
    }

    fn commit_candidate(&mut self, candidate: &BipartitionMove, _index: usize) {
        match *candidate {
            BipartitionMove::Flip(v) => self.do_flip(v),
            BipartitionMove::Swap(a, b) => {
                self.do_flip(a);
                self.do_flip(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{anneal, RunOptions};
    use crate::schedule::LamSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn incremental_cut_matches_recompute() {
        let mut p = Bipartition::two_cliques(5, 0);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..500 {
            if let Some((mv, _)) = p.try_move(&mut rng, i % 2) {
                if i % 3 == 0 {
                    p.undo(mv);
                }
            }
            let mut fresh = p.clone();
            fresh.recompute();
            assert!((fresh.cut_weight() - p.cut_weight()).abs() < 1e-9);
            assert_eq!(fresh.imbalance(), p.imbalance());
        }
    }

    #[test]
    fn undo_restores_cost() {
        let mut p = Bipartition::two_cliques(4, 2);
        let before = p.cost();
        let mut rng = StdRng::seed_from_u64(5);
        let (mv, after) = loop {
            if let Some(x) = p.try_move(&mut rng, 0) {
                break x;
            }
        };
        assert_ne!(before, after);
        p.undo(mv);
        assert_eq!(p.cost(), before);
    }

    #[test]
    fn annealing_finds_the_bridge_cut() {
        let mut p = Bipartition::two_cliques(8, 1);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 40_000,
                warmup_iterations: 1000,
                seed: 3,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.best_cost, 1.0, "expected the single bridge edge cut");
        assert_eq!(p.imbalance(), 0);
    }
}
