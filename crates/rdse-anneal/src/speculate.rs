//! Speculative move evaluation: scoring the next W proposals in
//! parallel without forking the walk.
//!
//! The annealing loop is inherently sequential — each acceptance
//! decision feeds the next proposal through the RNG stream and the
//! current solution. But the *common case* of a converging run is
//! rejection, and a rejected move commutes with everything after it:
//! the state, the RNG and the controller all leave a rejected step
//! exactly as they entered it (plus the step's own fixed RNG
//! consumption and bookkeeping). So a **rejected prefix is exactly the
//! speculation that commutes**:
//!
//! 1. **Draw** the next W proposals from the RNG stream in order,
//!    against the current state, *hypothesizing that each is rejected*
//!    (one acceptance draw consumed, one rejection recorded) — because
//!    under that hypothesis the state never changes, all W proposals
//!    see exactly the state the sequential walk would have shown them.
//! 2. **Score** all W candidates concurrently against the current
//!    state (the problem fans this out to a thread pool).
//! 3. **Replay** the accept/reject decisions sequentially in proposal
//!    order. Every decision that *is* a rejection confirms the
//!    hypothesis — nothing to fix. The first decision that is not
//!    (an acceptance, or an evaluation-infeasible proposal) truncates
//!    the round: the RNG and controller are restored from checkpoints
//!    taken in step 1 to the exact state the sequential walk would
//!    hold after that step, the move is committed, and the remaining
//!    speculated candidates are discarded.
//!
//! The accept sequence, RNG consumption, controller statistics, trace
//! and final solution are therefore **bit-identical to the sequential
//! walk at any worker count** — parallelism only changes how fast the
//! wasted tail of each round is thrown away. The expected useful
//! prefix per round is `(1 − (1 − p)^W) / p` for acceptance rate `p`,
//! approaching W as the run freezes — speculation pays off exactly in
//! the long rejection-dominated tail where the sequential walk spends
//! most of its time.

use crate::controller::MoveClassController;
use crate::cost::Scalarizer;
use crate::problem::Problem;
use crate::runner::{Annealer, StopReason};
use crate::schedule::{IterationOutcome, Schedule};
use crate::TracePoint;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::time::Instant;

/// A problem whose proposals can be drawn and scored separately.
///
/// [`Problem::try_move`] conflates three things: drawing a proposal
/// from the RNG, scoring it, and applying it. Speculation needs them
/// apart — W proposals are drawn against one state, scored in
/// parallel, and at most one is applied. Implementations must uphold:
///
/// * [`propose_candidate`](SpeculativeProblem::propose_candidate)
///   consumes **exactly** the RNG draws `try_move` would for the same
///   state and class, and leaves the state unchanged;
/// * [`score_candidates`](SpeculativeProblem::score_candidates)
///   returns for each candidate **exactly** the cost `try_move` would
///   have produced (`None` where `try_move` would return `None` after
///   proposing), and leaves the state unchanged;
/// * [`commit_candidate`](SpeculativeProblem::commit_candidate) leaves
///   the state bit-identical to `try_move` having applied that
///   proposal.
pub trait SpeculativeProblem: Problem {
    /// A drawn-but-unapplied proposal: where the move would put its
    /// task, without the move having happened.
    type Candidate;

    /// Draws a proposal of `class` from `rng` against the current
    /// state, consuming exactly the draws [`Problem::try_move`] would.
    /// Returns `None` for a proposal-infeasible draw (`try_move` would
    /// have returned `None` before evaluating). The state is left
    /// unchanged either way.
    fn propose_candidate(&mut self, rng: &mut dyn RngCore, class: usize)
        -> Option<Self::Candidate>;

    /// Scores every candidate against the current state, writing one
    /// verdict per candidate into `out` (cleared first): `Some(cost)`
    /// exactly as [`Problem::try_move`] would report, or `None` where
    /// evaluation would have failed. Implementations are free to fan
    /// this out across threads — verdicts must not depend on the
    /// worker count.
    fn score_candidates(
        &mut self,
        candidates: &[Self::Candidate],
        out: &mut Vec<Option<Self::Cost>>,
    );

    /// Applies candidate `index` of the last
    /// [`score_candidates`](SpeculativeProblem::score_candidates)
    /// slate to the current state.
    fn commit_candidate(&mut self, candidate: &Self::Candidate, index: usize);

    /// Observes one finished speculation round: `speculated` candidates
    /// were scored, `committed` of their verdicts were consumed by the
    /// replay, `wasted` were discarded past the truncation point.
    fn note_round(&mut self, _speculated: u64, _committed: u64, _wasted: u64) {}
}

/// What phase A hypothesized for one speculated iteration.
enum EntryKind {
    /// The proposal itself was infeasible; recorded immediately (this
    /// is not a hypothesis — it is certain).
    Infeasible,
    /// A candidate was drawn and hypothesized rejected; `slot` indexes
    /// the scoring slate.
    Scored {
        slot: usize,
        /// RNG state before the speculative acceptance draw — restored
        /// when the real decision turns out not to consume one.
        rng_before: StdRng,
        /// The speculative acceptance draw itself.
        u: f64,
    },
}

struct Entry {
    class: usize,
    kind: EntryKind,
    /// RNG state after this iteration under the rejection hypothesis —
    /// restored when a stop condition truncates the round on a
    /// confirmed-rejected (or proposal-infeasible) entry.
    rng_exit: StdRng,
}

/// Reusable per-segment scratch: no steady-state allocation per round.
#[derive(Default)]
struct SpecScratch<C> {
    entries: Vec<Entry>,
    outs: Vec<Option<C>>,
    /// Controller state at round start; on truncation the controller
    /// is rebuilt from it by replaying the confirmed records.
    ctrl_start: Option<MoveClassController>,
}

impl<P, S, Z> Annealer<P, S, Z>
where
    P: SpeculativeProblem,
    S: Schedule,
    Z: Scalarizer<P::Cost>,
{
    /// Runs up to `steps` iterations like [`run_segment`], scoring up
    /// to `width` speculative proposals per round through
    /// [`SpeculativeProblem::score_candidates`]. Bit-identical to
    /// [`run_segment`] for every `width` and any worker count backing
    /// the problem's scoring. `width <= 1` delegates to the sequential
    /// loop. The warm-up phase always runs sequentially: at infinite
    /// temperature every feasible move is accepted, so there is no
    /// rejected prefix to speculate on.
    ///
    /// [`run_segment`]: Annealer::run_segment
    pub fn run_segment_speculative(&mut self, steps: u64, width: usize) -> bool {
        if width <= 1 {
            return self.run_segment(steps);
        }
        let segment_start = Instant::now();
        let mut done = 0u64;
        while done < steps && !self.is_finished() && self.iter < self.opts.warmup_iterations {
            self.step_inner(segment_start);
            done += 1;
        }
        let mut candidates: Vec<P::Candidate> = Vec::new();
        let mut scratch: SpecScratch<P::Cost> = SpecScratch {
            entries: Vec::new(),
            outs: Vec::new(),
            ctrl_start: None,
        };
        while done < steps && !self.is_finished() {
            done += self.speculative_round(
                segment_start,
                width,
                steps - done,
                &mut candidates,
                &mut scratch,
            );
        }
        self.elapsed += segment_start.elapsed();
        !self.is_finished()
    }

    /// One speculation round; returns the number of iterations
    /// consumed (at least 1).
    fn speculative_round(
        &mut self,
        segment_start: Instant,
        width: usize,
        remaining: u64,
        candidates: &mut Vec<P::Candidate>,
        scratch: &mut SpecScratch<P::Cost>,
    ) -> u64 {
        // The cooling boundary fires at the top of the first
        // post-warm-up iteration, exactly as in the sequential loop.
        if self.iter == self.opts.warmup_iterations && self.iter > 0 {
            self.schedule
                .begin(self.warmup.mean(), self.warmup.std_dev());
        }
        let budget = remaining.min(self.opts.max_iterations - self.iter);
        debug_assert!(budget > 0);

        // Phase A: draw up to `width` candidates (plus any interleaved
        // proposal-infeasible iterations) under the all-rejected
        // hypothesis. The state never changes, so every draw sees
        // exactly what the sequential walk would have shown it.
        scratch.entries.clear();
        candidates.clear();
        match &mut scratch.ctrl_start {
            Some(ctrl) => ctrl.clone_from(&self.controller),
            none => *none = Some(self.controller.clone()),
        }
        while candidates.len() < width && (scratch.entries.len() as u64) < budget {
            let class = self.controller.pick(&mut self.rng);
            match self.problem.propose_candidate(&mut self.rng, class) {
                None => {
                    self.controller.record(class, false, false);
                    scratch.entries.push(Entry {
                        class,
                        kind: EntryKind::Infeasible,
                        rng_exit: self.rng.clone(),
                    });
                }
                Some(candidate) => {
                    let rng_before = self.rng.clone();
                    let u = self.rng.random::<f64>();
                    self.controller.record_delta(class, true, false, 0.0);
                    scratch.entries.push(Entry {
                        class,
                        kind: EntryKind::Scored {
                            slot: candidates.len(),
                            rng_before,
                            u,
                        },
                        rng_exit: self.rng.clone(),
                    });
                    candidates.push(candidate);
                }
            }
        }

        // Phase B: score the whole slate against the unchanged state.
        self.problem.score_candidates(candidates, &mut scratch.outs);

        // Phase C: replay the decisions in proposal order.
        let speculated = candidates.len() as u64;
        let mut consumed_scored = 0u64;
        let mut consumed = 0u64;
        let total = scratch.entries.len();
        for k in 0..total {
            let iter = self.iter;
            let last = k + 1 == total;
            let outcome;
            let mut truncate = false;
            let class = scratch.entries[k].class;
            // Checkpoint copies are 32-byte memcpys; taking them up
            // front keeps the replay free of borrows into `scratch`.
            let rng_exit = scratch.entries[k].rng_exit.clone();
            let scored = match scratch.entries[k].kind {
                EntryKind::Infeasible => None,
                EntryKind::Scored {
                    slot,
                    ref rng_before,
                    u,
                } => Some((slot, rng_before.clone(), u)),
            };
            match scored {
                None => {
                    self.infeasible += 1;
                    outcome = IterationOutcome {
                        cost: self.cost,
                        accepted: false,
                        feasible: false,
                    };
                }
                Some((slot, rng_before, u)) => {
                    match scratch.outs[slot].clone() {
                        None => {
                            // Evaluation-infeasible: the sequential
                            // walk consumed no acceptance draw and
                            // recorded an infeasible proposal.
                            self.rng = rng_before;
                            self.rebuild_controller(scratch, k, |ctrl| {
                                ctrl.record(class, false, false);
                            });
                            self.infeasible += 1;
                            consumed_scored += 1;
                            truncate = true;
                            outcome = IterationOutcome {
                                cost: self.cost,
                                accepted: false,
                                feasible: false,
                            };
                        }
                        Some(new_objectives) => {
                            let new_cost = self.scalarizer.scalarize(&new_objectives);
                            let delta = self.scalarizer.delta(
                                &new_objectives,
                                &self.cost_objectives,
                                new_cost - self.cost,
                            );
                            // Post-warm-up: s_eff is the live inverse
                            // temperature, updated entry by entry. An
                            // improvement or a zero inverse temperature
                            // accepts without consuming the draw.
                            let (accept, used_u) = if delta <= 0.0 || self.s == 0.0 {
                                (true, false)
                            } else {
                                (u < (-delta * self.s).exp(), true)
                            };
                            consumed_scored += 1;
                            if accept {
                                self.rng = if used_u { rng_exit.clone() } else { rng_before };
                                self.rebuild_controller(scratch, k, |ctrl| {
                                    ctrl.record_delta(class, true, true, delta);
                                });
                                self.problem.commit_candidate(&candidates[slot], slot);
                                let vector_changed = new_objectives != self.cost_objectives;
                                self.cost = new_cost;
                                self.cost_objectives = new_objectives;
                                self.accepted += 1;
                                if vector_changed {
                                    if let Some(front) = &mut self.front {
                                        front.insert(self.cost_objectives.clone());
                                    }
                                }
                                let improved = self.scalarizer.delta(
                                    &self.cost_objectives,
                                    &self.best_objectives,
                                    self.cost - self.best_cost,
                                ) < 0.0;
                                if improved {
                                    self.best_cost = self.cost;
                                    self.best_objectives = self.cost_objectives.clone();
                                    self.best_snapshot = self.problem.snapshot();
                                    self.last_improvement = iter;
                                }
                                truncate = true;
                                outcome = IterationOutcome {
                                    cost: self.cost,
                                    accepted: true,
                                    feasible: true,
                                };
                            } else {
                                // Hypothesis confirmed: the RNG and
                                // controller already hold this entry's
                                // exit state on the all-rejected path.
                                self.rejected += 1;
                                outcome = IterationOutcome {
                                    cost: self.cost,
                                    accepted: false,
                                    feasible: true,
                                };
                            }
                        }
                    }
                }
            }

            self.s = self.schedule.update(outcome);
            if self.opts.trace_every > 0 && iter.is_multiple_of(self.opts.trace_every) {
                self.trace.push(TracePoint {
                    iteration: iter,
                    cost: self.cost,
                    best_cost: self.best_cost,
                    inverse_temperature: self.s,
                    observables: self.problem.observables(),
                });
            }
            self.iter += 1;
            consumed += 1;

            let stopped = self.post_step_stops(segment_start);
            if stopped && !truncate && !last {
                // Stopping on a confirmed-rejected (or proposal-
                // infeasible) entry mid-round: the global RNG and
                // controller sit at the end of phase A — rewind them
                // to this entry's exit state. The hypothesized records
                // of entries 0..=k are all confirmed exact, so the
                // rebuild just replays them.
                self.rng = rng_exit;
                self.rebuild_controller(scratch, k + 1, |_| {});
            }
            if stopped || truncate {
                break;
            }
        }

        self.problem
            .note_round(speculated, consumed_scored, speculated - consumed_scored);
        consumed
    }

    /// Restores the controller to its round-start state, replays the
    /// hypothesized records of entries `0..k` (which are confirmed
    /// exact up to there), then applies `actual` for the divergent
    /// entry.
    fn rebuild_controller(
        &mut self,
        scratch: &mut SpecScratch<P::Cost>,
        k: usize,
        actual: impl FnOnce(&mut MoveClassController),
    ) {
        let start = scratch
            .ctrl_start
            .as_mut()
            .expect("round-start controller snapshot");
        std::mem::swap(&mut self.controller, start);
        for entry in &scratch.entries[..k] {
            match entry.kind {
                EntryKind::Infeasible => self.controller.record(entry.class, false, false),
                EntryKind::Scored { .. } => {
                    self.controller.record_delta(entry.class, true, false, 0.0)
                }
            }
        }
        actual(&mut self.controller);
    }

    /// The post-iteration stop checks of the sequential loop, in the
    /// same order (only ever called post-warm-up). Returns whether a
    /// stop condition fired.
    fn post_step_stops(&mut self, segment_start: Instant) -> bool {
        if let Some(target) = self.opts.target_cost {
            if self.best_cost <= target {
                self.stop = Some(StopReason::TargetReached);
                return true;
            }
        }
        if self.opts.freeze_window > 0
            && self.iter - self.last_improvement > self.opts.freeze_window
            && self.schedule.acceptance().is_some_and(|a| a < 0.01)
        {
            self.stop = Some(StopReason::Frozen);
            return true;
        }
        if self.iter.is_multiple_of(256) {
            if let Some(budget) = self.opts.time_budget {
                if self.elapsed + segment_start.elapsed() >= budget {
                    self.stop = Some(StopReason::TimeBudget);
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::problem::Problem;
    use crate::problems::bipartition::Bipartition;
    use crate::runner::{Annealer, RunOptions, StopReason};
    use crate::schedule::LamSchedule;

    fn opts(seed: u64) -> RunOptions {
        RunOptions {
            max_iterations: 20_000,
            warmup_iterations: 1_000,
            seed,
            trace_every: 97,
            ..RunOptions::default()
        }
    }

    fn annealer(seed: u64, opts: RunOptions) -> Annealer<Bipartition, LamSchedule> {
        let mut a = Annealer::new(
            Bipartition::two_cliques(8, seed ^ 0x5a),
            LamSchedule::new(1.0),
            opts,
        );
        a.track_front();
        a
    }

    /// Asserts two annealers hold bit-identical walk state: solution,
    /// costs, counters, RNG position and trace.
    fn assert_walk_equal(
        a: &Annealer<Bipartition, LamSchedule>,
        b: &Annealer<Bipartition, LamSchedule>,
    ) {
        assert_eq!(a.iter, b.iter);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.infeasible, b.infeasible);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        assert_eq!(a.s.to_bits(), b.s.to_bits());
        assert_eq!(a.rng, b.rng, "RNG position diverged");
        assert_eq!(a.problem().snapshot(), b.problem().snapshot());
        assert_eq!(a.best_snapshot, b.best_snapshot);
        assert_eq!(a.last_improvement, b.last_improvement);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stop, b.stop);
    }

    #[test]
    fn speculative_walk_is_bit_identical_to_sequential() {
        for seed in [1u64, 17, 42] {
            for width in [2usize, 4, 8] {
                let mut seq = annealer(seed, opts(seed));
                seq.run_segment(u64::MAX);
                let mut spec = annealer(seed, opts(seed));
                spec.run_segment_speculative(u64::MAX, width);
                assert_walk_equal(&seq, &spec);
            }
        }
    }

    #[test]
    fn width_one_delegates_to_sequential() {
        let mut seq = annealer(7, opts(7));
        seq.run_segment(u64::MAX);
        let mut spec = annealer(7, opts(7));
        spec.run_segment_speculative(u64::MAX, 1);
        assert_walk_equal(&seq, &spec);
    }

    #[test]
    fn ragged_segments_and_mode_switches_do_not_perturb_the_walk() {
        // Alternate speculative and sequential segments with ragged
        // sizes: if the RNG or controller were off by even one draw at
        // a segment boundary, the walks would fork.
        for seed in [1u64, 17, 42] {
            let mut seq = annealer(seed, opts(seed));
            seq.run_segment(u64::MAX);
            let mut spec = annealer(seed, opts(seed));
            let mut speculative = true;
            for seg in [1u64, 7, 350, 999, 1, 13, 4096, u64::MAX] {
                let more = if speculative {
                    spec.run_segment_speculative(seg, 5)
                } else {
                    spec.run_segment(seg)
                };
                speculative = !speculative;
                if !more {
                    break;
                }
            }
            assert_walk_equal(&seq, &spec);
        }
    }

    #[test]
    fn target_cost_stop_truncates_identically() {
        let make = |seed| {
            let o = RunOptions {
                max_iterations: 200_000,
                warmup_iterations: 100,
                target_cost: Some(1.0),
                seed,
                ..RunOptions::default()
            };
            annealer(seed, o)
        };
        for seed in [4u64, 17] {
            let mut seq = make(seed);
            seq.run_segment(u64::MAX);
            let mut spec = make(seed);
            spec.run_segment_speculative(u64::MAX, 8);
            assert_eq!(spec.stop_reason(), Some(StopReason::TargetReached));
            assert_walk_equal(&seq, &spec);
        }
    }

    #[test]
    fn freeze_stop_truncates_identically() {
        let make = |seed| {
            let o = RunOptions {
                max_iterations: 400_000,
                warmup_iterations: 500,
                freeze_window: 2_000,
                seed,
                ..RunOptions::default()
            };
            annealer(seed, o)
        };
        for seed in [3u64, 42] {
            let mut seq = make(seed);
            seq.run_segment(u64::MAX);
            let mut spec = make(seed);
            spec.run_segment_speculative(u64::MAX, 6);
            assert_walk_equal(&seq, &spec);
        }
    }

    #[test]
    fn bandit_and_uniform_controllers_replay_identically() {
        for (adaptive, bandit) in [(false, false), (true, true), (false, true)] {
            let o = RunOptions {
                adaptive_moves: adaptive,
                bandit_moves: bandit,
                ..opts(17)
            };
            let mut seq = annealer(17, o.clone());
            seq.run_segment(u64::MAX);
            let mut spec = annealer(17, o);
            spec.run_segment_speculative(u64::MAX, 4);
            assert_walk_equal(&seq, &spec);
        }
    }
}
