//! Streaming statistics used by the adaptive schedule.
//!
//! Lam's schedule is expressed in terms of statistical quantities of the
//! cost function — mean, variance and acceptance ratio — estimated on
//! the fly. Exponentially weighted moving averages (EWMA) give the
//! schedule its adaptivity; a plain Welford accumulator summarizes the
//! infinite-temperature warm-up phase.

/// Exponentially weighted moving average.
///
/// # Examples
///
/// ```
/// use rdse_anneal::Ewma;
///
/// let mut acc = Ewma::new(0.9);
/// acc.update(1.0);
/// acc.update(0.0);
/// assert!(acc.value() < 1.0 && acc.value() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    weight: f64,
    value: f64,
    initialized: bool,
}

impl Ewma {
    /// Creates an EWMA with smoothing weight `weight ∈ (0, 1)`; values
    /// close to 1 average over a long horizon.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not in `(0, 1)`.
    pub fn new(weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight < 1.0,
            "EWMA weight must lie in (0, 1)"
        );
        Ewma {
            weight,
            value: 0.0,
            initialized: false,
        }
    }

    /// Creates an EWMA pre-seeded with `initial` so early reads are
    /// biased toward a known prior instead of the first sample.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not in `(0, 1)`.
    pub fn with_initial(weight: f64, initial: f64) -> Self {
        let mut e = Ewma::new(weight);
        e.value = initial;
        e.initialized = true;
        e
    }

    /// Feeds one sample.
    pub fn update(&mut self, sample: f64) {
        if self.initialized {
            self.value = self.weight * self.value + (1.0 - self.weight) * sample;
        } else {
            self.value = sample;
            self.initialized = true;
        }
    }

    /// Current smoothed value (0.0 before the first sample).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been seen or a prior was set.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }
}

/// EWMA estimate of mean and standard deviation.
///
/// Tracks first and second moments with the same smoothing weight; the
/// variance estimate is clamped at zero to absorb rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaMoments {
    mean: Ewma,
    sq: Ewma,
}

impl EwmaMoments {
    /// Creates the estimator with the given smoothing weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not in `(0, 1)`.
    pub fn new(weight: f64) -> Self {
        EwmaMoments {
            mean: Ewma::new(weight),
            sq: Ewma::new(weight),
        }
    }

    /// Feeds one sample.
    pub fn update(&mut self, sample: f64) {
        self.mean.update(sample);
        self.sq.update(sample * sample);
    }

    /// Smoothed mean.
    pub fn mean(&self) -> f64 {
        self.mean.value()
    }

    /// Smoothed standard deviation (`sqrt(E[x²] − E[x]²)`, clamped ≥ 0).
    pub fn std_dev(&self) -> f64 {
        let var = self.sq.value() - self.mean.value() * self.mean.value();
        var.max(0.0).sqrt()
    }

    /// Whether any sample has been seen.
    pub fn is_initialized(&self) -> bool {
        self.mean.is_initialized()
    }
}

/// Exact running mean/variance (Welford), used for warm-up summaries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one sample.
    pub fn update(&mut self, sample: f64) {
        self.n += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (sample - self.mean);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0.0 with fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_taken_verbatim() {
        let mut e = Ewma::new(0.99);
        e.update(42.0);
        assert_eq!(e.value(), 42.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.9);
        for _ in 0..500 {
            e.update(3.0);
        }
        assert!((e.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_with_initial_biases_early_reads() {
        let mut e = Ewma::with_initial(0.5, 10.0);
        assert_eq!(e.value(), 10.0);
        e.update(0.0);
        assert_eq!(e.value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn ewma_rejects_bad_weight() {
        let _ = Ewma::new(1.0);
    }

    #[test]
    fn moments_track_constant() {
        let mut m = EwmaMoments::new(0.9);
        for _ in 0..200 {
            m.update(5.0);
        }
        assert!((m.mean() - 5.0).abs() < 1e-9);
        assert!(m.std_dev() < 1e-6);
    }

    #[test]
    fn moments_nonzero_spread() {
        let mut m = EwmaMoments::new(0.99);
        for i in 0..1000 {
            m.update(if i % 2 == 0 { 0.0 } else { 2.0 });
        }
        assert!((m.mean() - 1.0).abs() < 0.1);
        assert!((m.std_dev() - 1.0).abs() < 0.1);
    }

    #[test]
    fn online_stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.update(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.count(), 0);
    }
}
