//! The problem abstraction annealed by [`anneal`](crate::anneal).
//!
//! The paper's tool is object-oriented: application and architecture
//! models plug into a generic optimizer, and "adaptation to new models
//! of computation and target architectures only requires the definition
//! of simple simulated annealing moves" (§6). [`Problem`] is the Rust
//! rendering of that contract.

use crate::cost::Cost;
use rand::RngCore;

/// An optimization problem explorable by simulated annealing.
///
/// Implementations hold the *current* solution state. A move is
/// proposed and tentatively applied by [`try_move`]; the engine then
/// either keeps it or calls [`undo`]. Implementations must guarantee
/// that `undo` restores the state (and cost) exactly — bit-identically,
/// since the engine's acceptance decisions feed back into the RNG
/// stream and any drift would fork the walk.
///
/// # Costs may be vectors
///
/// [`Cost`](Problem::Cost) is an associated type constrained by the
/// [`Cost`] trait: single-objective problems use plain `f64`
/// (unchanged from the historical engine), multi-objective problems
/// return a small `Copy` vector of objectives. The engine accepts
/// moves on a *scalarized* view of the cost (see
/// [`Scalarizer`](crate::Scalarizer)) while recording the full vectors
/// — the problem itself never needs to know which scalarization is in
/// force.
///
/// # Moves are deltas, snapshots are copies
///
/// The two associated types have sharply different cost profiles and
/// should not be conflated:
///
/// * [`Move`] travels on the **hot path** — it is created on every
///   proposal and consumed on every rejection. Make it a *compact
///   reverse delta*: just the touched assignment plus whatever scalar
///   state `undo` must put back, ideally `Copy`. It must **not** be a
///   clone of the solution.
/// * [`Snapshot`] is **cold** — taken only when the incumbent best
///   improves, restored at most once per exchange or at the end of a
///   run. A full copy of the solution is expected here.
///
/// ## Worked delta example
///
/// For the mapping problem of `rdse-mapping`, a §4.2 pair move
/// relocates one task `vs`. The delta records only where `vs` came
/// from — e.g. *"`vs` sat at slot 2 of context 1 on device 0 with
/// implementation 3"* — so `undo` is one detach plus one positional
/// re-insert, O(touched), regardless of how many tasks the mapping
/// holds:
///
/// ```text
/// try_move:  capture PrevSlot(vs)  →  mutate in place  →  re-score
///            Move = { delta: (vs, PrevSlot), prev_cost_summary }
/// undo:      detach(vs); reinstate vs at PrevSlot; restore summary
/// ```
///
/// The snapshot for the same problem is `(Mapping, EvalSummary)`:
/// the full solution clone plus the `Copy` scalar summary.
///
/// [`Move`]: Problem::Move
/// [`Snapshot`]: Problem::Snapshot
/// [`try_move`]: Problem::try_move
/// [`undo`]: Problem::undo
pub trait Problem {
    /// A reversible move: a compact delta carrying whatever the problem
    /// needs to undo it in O(touched). Created per proposal — keep it
    /// small (ideally `Copy`), never a clone of the solution.
    type Move;
    /// A full copy of the solution, used to keep the best-so-far.
    type Snapshot;
    /// The cost of a solution — `f64` for single-objective problems, a
    /// compact objective vector for multi-objective ones. Travels on
    /// the hot path with every proposal: keep it `Copy`-cheap.
    type Cost: Cost;

    /// Cost of the current solution (every objective minimized).
    fn cost(&self) -> Self::Cost;

    /// Number of move classes the problem exposes (≥ 1). The engine's
    /// [`MoveClassController`](crate::MoveClassController) draws a class
    /// in `0..n_move_classes()` and passes it to [`try_move`].
    ///
    /// [`try_move`]: Problem::try_move
    fn n_move_classes(&self) -> usize {
        1
    }

    /// Proposes a random move of the given class and applies it
    /// tentatively, returning the move and the *new* cost.
    ///
    /// Returns `None` when the sampled move is infeasible (for the
    /// paper's mapping problem: it would create a cycle in the search
    /// graph) — the state must then be left unchanged.
    fn try_move(&mut self, rng: &mut dyn RngCore, class: usize)
        -> Option<(Self::Move, Self::Cost)>;

    /// Reverts the most recent un-undone move returned by [`try_move`].
    ///
    /// [`try_move`]: Problem::try_move
    fn undo(&mut self, mv: Self::Move);

    /// Captures the current solution.
    fn snapshot(&self) -> Self::Snapshot;

    /// Restores a previously captured solution. The snapshot is
    /// borrowed because the engine retains it (it is the incumbent
    /// best); problems owning heap state must copy it back in.
    fn restore(&mut self, snapshot: &Self::Snapshot);

    /// Restores a solution from a snapshot the engine no longer needs,
    /// e.g. the final restore-to-best when a run finishes. Problems
    /// whose snapshots own heap state should override this to move the
    /// state back in without the clone [`restore`] requires; the
    /// default delegates to [`restore`].
    ///
    /// [`restore`]: Problem::restore
    fn restore_owned(&mut self, snapshot: Self::Snapshot) {
        self.restore(&snapshot);
    }

    /// Problem-specific observables recorded in run traces (e.g. the
    /// number of FPGA contexts plotted in Fig. 2 of the paper).
    fn observables(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// A mutable reference anneals as the problem it points to. This lets
/// the borrowing [`anneal`](crate::anneal) entry point drive the
/// owning [`Annealer`](crate::Annealer) state machine.
impl<P: Problem + ?Sized> Problem for &mut P {
    type Move = P::Move;
    type Snapshot = P::Snapshot;
    type Cost = P::Cost;

    fn cost(&self) -> Self::Cost {
        (**self).cost()
    }

    fn n_move_classes(&self) -> usize {
        (**self).n_move_classes()
    }

    fn try_move(
        &mut self,
        rng: &mut dyn RngCore,
        class: usize,
    ) -> Option<(Self::Move, Self::Cost)> {
        (**self).try_move(rng, class)
    }

    fn undo(&mut self, mv: Self::Move) {
        (**self).undo(mv)
    }

    fn snapshot(&self) -> Self::Snapshot {
        (**self).snapshot()
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        (**self).restore(snapshot)
    }

    fn restore_owned(&mut self, snapshot: Self::Snapshot) {
        (**self).restore_owned(snapshot)
    }

    fn observables(&self) -> Vec<(&'static str, f64)> {
        (**self).observables()
    }
}
