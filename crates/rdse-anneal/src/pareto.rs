//! A generic, incrementally maintained Pareto archive.
//!
//! Every exploration surface of the tool reports trade-off fronts —
//! per-chain annealing archives, the `rdse sweep` grid, architecture
//! co-exploration, the scenario corpus. They all share this one
//! implementation, so "non-dominated" means the same thing everywhere
//! and the domination loop exists exactly once.

use crate::cost::Cost;

/// Strict Pareto dominance between points of the same type.
///
/// `a.dominates(b)` means `a` is at least as good on **every**
/// objective and strictly better on at least one (all objectives
/// minimized). Equal points do not dominate each other.
///
/// Every [`Cost`] gets this for free via its
/// [`objective`](Cost::objective) axes; non-cost report types (e.g. a
/// sweep grid point) can implement it directly.
pub trait Dominance {
    /// Whether `self` strictly Pareto-dominates `other`.
    fn dominates(&self, other: &Self) -> bool;
}

impl<C: Cost> Dominance for C {
    fn dominates(&self, other: &Self) -> bool {
        let n = self.n_objectives();
        debug_assert_eq!(n, other.n_objectives(), "comparable costs share axes");
        let mut strict = false;
        for i in 0..n {
            let (a, b) = (self.objective(i), other.objective(i));
            if a > b {
                return false;
            }
            if a < b {
                strict = true;
            }
        }
        strict
    }
}

/// An incrementally maintained set of mutually non-dominated points.
///
/// [`insert`](ParetoFront::insert) is the only way in: a candidate
/// dominated by (or equal to) a member is rejected, and an accepted
/// candidate evicts every member it dominates. The archive therefore
/// holds the exact Pareto front of everything ever offered to it,
/// independent of insertion order (set-wise; the internal order is
/// first-insertion order and [`sorted_members`](ParetoFront::sorted_members)
/// provides a canonical view for reports).
///
/// # Examples
///
/// ```
/// use rdse_anneal::ParetoFront;
///
/// // f64 implements Cost: a one-objective front keeps only the minimum.
/// let mut front = ParetoFront::new();
/// for c in [3.0f64, 1.0, 2.0, 1.0] {
///     front.insert(c);
/// }
/// assert_eq!(front.members(), &[1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront<P> {
    members: Vec<P>,
}

impl<P> Default for ParetoFront<P> {
    fn default() -> Self {
        ParetoFront {
            members: Vec::new(),
        }
    }
}

impl<P: Dominance + PartialEq> ParetoFront<P> {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers `point` to the archive. Returns `true` if it entered
    /// (evicting any members it dominates), `false` if a member
    /// dominates or equals it.
    pub fn insert(&mut self, point: P) -> bool {
        // Newest-first scan: annealing walks offer near-neighbours of
        // recent members, so a dominating member (the common rejection)
        // is found fastest from the back.
        if self
            .members
            .iter()
            .rev()
            .any(|m| m.dominates(&point) || *m == point)
        {
            return false;
        }
        self.members.retain(|m| !point.dominates(m));
        self.members.push(point);
        true
    }

    /// Merges every member of `other` into this front.
    pub fn merge(&mut self, other: &ParetoFront<P>)
    where
        P: Clone,
    {
        for m in &other.members {
            self.insert(m.clone());
        }
    }

    /// Whether `point` is a member (exact equality).
    pub fn contains(&self, point: &P) -> bool {
        self.members.contains(point)
    }

    /// The members, in first-insertion order.
    pub fn members(&self) -> &[P] {
        &self.members
    }

    /// The members sorted by a caller-supplied total order — the
    /// canonical view for reports and golden snapshots (insertion order
    /// is an implementation detail).
    pub fn sorted_members(&self, mut cmp: impl FnMut(&P, &P) -> std::cmp::Ordering) -> Vec<P>
    where
        P: Clone,
    {
        let mut out = self.members.clone();
        out.sort_by(&mut cmp);
        out
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over the members in first-insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, P> {
        self.members.iter()
    }
}

impl<'a, P> IntoIterator for &'a ParetoFront<P> {
    type Item = &'a P;
    type IntoIter = std::slice::Iter<'a, P>;

    fn into_iter(self) -> Self::IntoIter {
        self.members.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct P2(f64, f64);

    impl Cost for P2 {
        fn n_objectives(&self) -> usize {
            2
        }
        fn objective(&self, i: usize) -> f64 {
            [self.0, self.1][i]
        }
    }

    #[test]
    fn insert_keeps_only_non_dominated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(P2(3.0, 1.0)));
        assert!(f.insert(P2(1.0, 3.0)));
        // Dominated by (3,1): rejected.
        assert!(!f.insert(P2(4.0, 2.0)));
        // Dominates (3,1): evicts it.
        assert!(f.insert(P2(2.0, 1.0)));
        assert_eq!(f.len(), 2);
        assert!(f.contains(&P2(1.0, 3.0)));
        assert!(f.contains(&P2(2.0, 1.0)));
        assert!(!f.contains(&P2(3.0, 1.0)));
    }

    #[test]
    fn duplicates_enter_once() {
        let mut f = ParetoFront::new();
        assert!(f.insert(P2(1.0, 2.0)));
        assert!(!f.insert(P2(1.0, 2.0)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut f = ParetoFront::new();
        f.insert(P2(1.0, 5.0));
        f.insert(P2(5.0, 1.0));
        f.insert(P2(3.0, 3.0));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn merge_is_a_bulk_insert() {
        let mut a = ParetoFront::new();
        a.insert(P2(1.0, 4.0));
        a.insert(P2(4.0, 1.0));
        let mut b = ParetoFront::new();
        b.insert(P2(0.5, 4.5)); // incomparable with (1,4)
        b.insert(P2(3.0, 0.5)); // dominates (4,1)
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!(!a.contains(&P2(4.0, 1.0)));
    }

    #[test]
    fn sorted_members_is_canonical() {
        let mut f = ParetoFront::new();
        f.insert(P2(5.0, 1.0));
        f.insert(P2(1.0, 5.0));
        let sorted = f.sorted_members(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(sorted, vec![P2(1.0, 5.0), P2(5.0, 1.0)]);
    }
}
