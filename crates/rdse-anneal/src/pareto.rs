//! A generic, incrementally maintained Pareto archive.
//!
//! Every exploration surface of the tool reports trade-off fronts —
//! per-chain annealing archives, the `rdse sweep` grid, architecture
//! co-exploration, the scenario corpus. They all share this one
//! implementation, so "non-dominated" means the same thing everywhere
//! and the domination loop exists exactly once.

use crate::cost::Cost;

/// Strict Pareto dominance between points of the same type.
///
/// `a.dominates(b)` means `a` is at least as good on **every**
/// objective and strictly better on at least one (all objectives
/// minimized). Equal points do not dominate each other.
///
/// Every [`Cost`] gets this for free via its
/// [`objective`](Cost::objective) axes; non-cost report types (e.g. a
/// sweep grid point) can implement it directly.
pub trait Dominance {
    /// Whether `self` strictly Pareto-dominates `other`.
    fn dominates(&self, other: &Self) -> bool;
}

impl<C: Cost> Dominance for C {
    fn dominates(&self, other: &Self) -> bool {
        let n = self.n_objectives();
        debug_assert_eq!(n, other.n_objectives(), "comparable costs share axes");
        let mut strict = false;
        for i in 0..n {
            let (a, b) = (self.objective(i), other.objective(i));
            if a > b {
                return false;
            }
            if a < b {
                strict = true;
            }
        }
        strict
    }
}

/// An incrementally maintained set of mutually non-dominated points.
///
/// [`insert`](ParetoFront::insert) is the only way in: a candidate
/// dominated by (or equal to) a member is rejected, and an accepted
/// candidate evicts every member it dominates. The archive therefore
/// holds the exact Pareto front of everything ever offered to it,
/// independent of insertion order (set-wise; the internal order is
/// first-insertion order and [`sorted_members`](ParetoFront::sorted_members)
/// provides a canonical view for reports).
///
/// # Examples
///
/// ```
/// use rdse_anneal::ParetoFront;
///
/// // f64 implements Cost: a one-objective front keeps only the minimum.
/// let mut front = ParetoFront::new();
/// for c in [3.0f64, 1.0, 2.0, 1.0] {
///     front.insert(c);
/// }
/// assert_eq!(front.members(), &[1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront<P> {
    members: Vec<P>,
}

impl<P> Default for ParetoFront<P> {
    fn default() -> Self {
        ParetoFront {
            members: Vec::new(),
        }
    }
}

impl<P: Dominance + PartialEq> ParetoFront<P> {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers `point` to the archive. Returns `true` if it entered
    /// (evicting any members it dominates), `false` if a member
    /// dominates or equals it.
    pub fn insert(&mut self, point: P) -> bool {
        // Newest-first scan: annealing walks offer near-neighbours of
        // recent members, so a dominating member (the common rejection)
        // is found fastest from the back.
        if self
            .members
            .iter()
            .rev()
            .any(|m| m.dominates(&point) || *m == point)
        {
            return false;
        }
        self.members.retain(|m| !point.dominates(m));
        self.members.push(point);
        true
    }

    /// Merges every member of `other` into this front.
    pub fn merge(&mut self, other: &ParetoFront<P>)
    where
        P: Clone,
    {
        for m in &other.members {
            self.insert(m.clone());
        }
    }

    /// Whether `point` is a member (exact equality).
    pub fn contains(&self, point: &P) -> bool {
        self.members.contains(point)
    }

    /// The members, in first-insertion order.
    pub fn members(&self) -> &[P] {
        &self.members
    }

    /// The members sorted by a caller-supplied total order — the
    /// canonical view for reports and golden snapshots (insertion order
    /// is an implementation detail).
    pub fn sorted_members(&self, mut cmp: impl FnMut(&P, &P) -> std::cmp::Ordering) -> Vec<P>
    where
        P: Clone,
    {
        let mut out = self.members.clone();
        out.sort_by(&mut cmp);
        out
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over the members in first-insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, P> {
        self.members.iter()
    }
}

impl<'a, P> IntoIterator for &'a ParetoFront<P> {
    type Item = &'a P;
    type IntoIter = std::slice::Iter<'a, P>;

    fn into_iter(self) -> Self::IntoIter {
        self.members.iter()
    }
}

/// Fast non-dominated sorting (NSGA-II): assigns every point its
/// Pareto rank.
///
/// Rank 0 is the set of points dominated by nothing (the Pareto front
/// of the input); rank `r + 1` is the front of what remains after
/// removing ranks `0..=r`. Duplicates share a rank (equal points never
/// dominate each other). Ranks are a property of the point *values*,
/// so the result is independent of input order: permuting the input
/// permutes the output identically.
///
/// Runs in O(n²) dominance checks — the classic Deb et al. bound,
/// fine for the population sizes a GA generation produces.
///
/// # Examples
///
/// ```
/// use rdse_anneal::non_dominated_rank;
///
/// // f64 is a one-objective Cost: rank = order of distinct values.
/// assert_eq!(non_dominated_rank(&[3.0f64, 1.0, 2.0, 1.0]), vec![2, 0, 1, 0]);
/// ```
pub fn non_dominated_rank<P: Dominance>(points: &[P]) -> Vec<usize> {
    let n = points.len();
    let mut n_dominators = vec![0usize; n];
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if points[i].dominates(&points[j]) {
                dominated[i].push(j);
                n_dominators[j] += 1;
            } else if points[j].dominates(&points[i]) {
                dominated[j].push(i);
                n_dominators[i] += 1;
            }
        }
    }
    let mut rank = vec![0usize; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| n_dominators[i] == 0).collect();
    let mut r = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            rank[i] = r;
            for &j in &dominated[i] {
                n_dominators[j] -= 1;
                if n_dominators[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        r += 1;
    }
    rank
}

/// NSGA-II crowding distance of each point within one rank class.
///
/// Per objective the points are sorted (ties broken by input index, so
/// the result is deterministic) and each interior point accumulates
/// the normalized span of its neighbours; the two boundary points of
/// every axis get `f64::INFINITY`, which keeps objective-extremal
/// solutions alive through crowded-tournament selection. Classes of
/// one or two points are all-infinite by convention.
///
/// The input should be a single rank class (see
/// [`non_dominated_rank`]); mixing ranks yields distances that are
/// meaningless for selection.
pub fn crowding_distance<C: Cost>(points: &[C]) -> Vec<f64> {
    let n = points.len();
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let n_obj = points[0].n_objectives();
    let mut dist = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    for m in 0..n_obj {
        order.sort_by(|&a, &b| {
            points[a]
                .objective(m)
                .total_cmp(&points[b].objective(m))
                .then(a.cmp(&b))
        });
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let span = points[order[n - 1]].objective(m) - points[order[0]].objective(m);
        if span <= 0.0 {
            continue;
        }
        for k in 1..n - 1 {
            dist[order[k]] +=
                (points[order[k + 1]].objective(m) - points[order[k - 1]].objective(m)) / span;
        }
    }
    dist
}

/// Exact hypervolume of `points` with respect to a reference point
/// (all objectives minimized; the reference bounds the dominated
/// region from above).
///
/// Uses the WFG-style inclusion–exclusion recursion: each point
/// contributes the volume of its box to the reference minus the
/// hypervolume of the *later* points clamped into that box. Exact and
/// dependency-free, with worst-case exponential time in the number of
/// points — intended for the small fronts (tens of points) the
/// explorers produce, where it is effectively instant.
///
/// Points at or beyond the reference on any axis contribute nothing.
/// Returns `0.0` for an empty set.
///
/// # Panics
///
/// Panics if `reference.len()` differs from a point's
/// [`n_objectives`](Cost::n_objectives).
pub fn hypervolume<C: Cost>(points: &[C], reference: &[f64]) -> f64 {
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            assert_eq!(
                p.n_objectives(),
                reference.len(),
                "reference point must match the objective count"
            );
            (0..p.n_objectives()).map(|i| p.objective(i)).collect()
        })
        .collect();
    hv_recurse(&rows, reference)
}

fn hv_recurse(rows: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut total = 0.0;
    for (k, s) in rows.iter().enumerate() {
        let vol: f64 = s
            .iter()
            .zip(reference)
            .map(|(&a, &r)| (r - a).max(0.0))
            .product();
        if vol <= 0.0 {
            continue;
        }
        // Later points, worsened to the corner of `s` (their overlap
        // with s's box), minus anything dominated after clamping.
        let mut limited: Vec<Vec<f64>> = Vec::with_capacity(rows.len() - k - 1);
        for q in &rows[k + 1..] {
            let clamped: Vec<f64> = q.iter().zip(s).map(|(&qv, &sv)| qv.max(sv)).collect();
            let redundant = limited
                .iter()
                .any(|m: &Vec<f64>| m.iter().zip(&clamped).all(|(a, b)| a <= b));
            if !redundant {
                limited.retain(|m| !clamped.iter().zip(m).all(|(a, b)| a <= b));
                limited.push(clamped);
            }
        }
        total += vol - hv_recurse(&limited, reference);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct P2(f64, f64);

    impl Cost for P2 {
        fn n_objectives(&self) -> usize {
            2
        }
        fn objective(&self, i: usize) -> f64 {
            [self.0, self.1][i]
        }
    }

    #[test]
    fn insert_keeps_only_non_dominated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(P2(3.0, 1.0)));
        assert!(f.insert(P2(1.0, 3.0)));
        // Dominated by (3,1): rejected.
        assert!(!f.insert(P2(4.0, 2.0)));
        // Dominates (3,1): evicts it.
        assert!(f.insert(P2(2.0, 1.0)));
        assert_eq!(f.len(), 2);
        assert!(f.contains(&P2(1.0, 3.0)));
        assert!(f.contains(&P2(2.0, 1.0)));
        assert!(!f.contains(&P2(3.0, 1.0)));
    }

    #[test]
    fn duplicates_enter_once() {
        let mut f = ParetoFront::new();
        assert!(f.insert(P2(1.0, 2.0)));
        assert!(!f.insert(P2(1.0, 2.0)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut f = ParetoFront::new();
        f.insert(P2(1.0, 5.0));
        f.insert(P2(5.0, 1.0));
        f.insert(P2(3.0, 3.0));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn merge_is_a_bulk_insert() {
        let mut a = ParetoFront::new();
        a.insert(P2(1.0, 4.0));
        a.insert(P2(4.0, 1.0));
        let mut b = ParetoFront::new();
        b.insert(P2(0.5, 4.5)); // incomparable with (1,4)
        b.insert(P2(3.0, 0.5)); // dominates (4,1)
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!(!a.contains(&P2(4.0, 1.0)));
    }

    #[test]
    fn sorted_members_is_canonical() {
        let mut f = ParetoFront::new();
        f.insert(P2(5.0, 1.0));
        f.insert(P2(1.0, 5.0));
        let sorted = f.sorted_members(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(sorted, vec![P2(1.0, 5.0), P2(5.0, 1.0)]);
    }

    #[test]
    fn rank_layers_peel_successive_fronts() {
        // Front 0: (1,4), (4,1). Front 1: (2,5), (5,2). Front 2: (6,6).
        let pts = [
            P2(2.0, 5.0),
            P2(1.0, 4.0),
            P2(6.0, 6.0),
            P2(4.0, 1.0),
            P2(5.0, 2.0),
        ];
        assert_eq!(non_dominated_rank(&pts), vec![1, 0, 2, 0, 1]);
    }

    #[test]
    fn equal_points_share_a_rank() {
        let pts = [P2(1.0, 1.0), P2(1.0, 1.0), P2(2.0, 2.0)];
        assert_eq!(non_dominated_rank(&pts), vec![0, 0, 1]);
    }

    #[test]
    fn crowding_marks_boundaries_infinite() {
        let pts = [
            P2(1.0, 5.0),
            P2(2.0, 4.0),
            P2(3.0, 3.0),
            P2(4.0, 2.0),
            P2(5.0, 1.0),
        ];
        let d = crowding_distance(&pts);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[4], f64::INFINITY);
        // Interior points on an evenly spaced front share one finite
        // distance: (gap left + gap right) / span, per axis.
        assert!(d[1].is_finite() && d[2].is_finite() && d[3].is_finite());
        assert_eq!(d[1].to_bits(), d[2].to_bits());
        assert_eq!(d[2].to_bits(), d[3].to_bits());
    }

    #[test]
    fn tiny_classes_are_all_infinite() {
        assert!(crowding_distance::<P2>(&[]).is_empty());
        assert_eq!(crowding_distance(&[P2(1.0, 2.0)]), vec![f64::INFINITY]);
        let two = crowding_distance(&[P2(1.0, 2.0), P2(2.0, 1.0)]);
        assert_eq!(two, vec![f64::INFINITY, f64::INFINITY]);
    }

    #[test]
    fn hypervolume_of_rectangles() {
        // One point: a plain box.
        assert_eq!(hypervolume(&[P2(1.0, 1.0)], &[3.0, 3.0]), 4.0);
        // Two incomparable points: union of boxes minus the overlap.
        // (1,2) -> 2x1 = 2; (2,1) -> 1x2 = 2; overlap (2,2) -> 1.
        let hv = hypervolume(&[P2(1.0, 2.0), P2(2.0, 1.0)], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12, "hv = {hv}");
        // A dominated point adds nothing; beyond-reference adds nothing.
        let hv2 = hypervolume(
            &[P2(1.0, 2.0), P2(2.0, 1.0), P2(2.5, 2.5), P2(4.0, 0.0)],
            &[3.0, 3.0],
        );
        assert!((hv2 - 3.0).abs() < 1e-12, "hv2 = {hv2}");
        // Empty set: zero.
        assert_eq!(hypervolume::<P2>(&[], &[3.0, 3.0]), 0.0);
    }

    #[test]
    fn hypervolume_is_monotone_under_improvement() {
        let base = [P2(2.0, 2.0)];
        let better = [P2(1.0, 1.0)];
        let r = [5.0, 5.0];
        assert!(hypervolume(&better, &r) > hypervolume(&base, &r));
    }
}
