//! Adaptive move-class selection.
//!
//! In Lam's framework "move generation affects the correlation between
//! consecutive cost values and the adaptive schedule specifies how to
//! control move generation to maximize cooling speed while satisfying
//! the quasi-equilibrium condition" (§4.1). For placement tools this is
//! the classic range-limiter; for the combinatorial mapping problem the
//! analogue is choosing *which kind* of move to draw. The paper's
//! refinement of the selection process lives in an unavailable thesis
//! (\[11\]); [`MoveClassController`] approximates it by tracking a
//! per-class acceptance EWMA and weighting classes by Lam's rate factor
//! `f(ρ_c)`, so classes running close to the optimal 0.44 acceptance are
//! drawn more often than classes that are either always rejected (too
//! disruptive at the current temperature) or always accepted
//! (uninformative).

use crate::schedule::lam_rate_factor;
use crate::stats::Ewma;
use rand::Rng;
use rand::RngCore;

/// Floor weight so no class ever starves.
const MIN_WEIGHT: f64 = 0.05;

/// UCB exploration coefficient. Credits are EWMA-normalized into
/// [0, 1], so a moderate coefficient keeps exploration alive without
/// drowning the credit signal.
const UCB_EXPLORATION: f64 = 0.5;

/// Deterministic UCB1 state over move classes, credited by realized
/// improvement rather than raw acceptance.
#[derive(Debug, Clone)]
struct Bandit {
    /// Times each class was drawn (feasible or not).
    pulls: Vec<u64>,
    /// EWMA of the normalized improvement each pull realized.
    credit: Vec<Ewma>,
    /// Total pulls across classes.
    total: u64,
    /// Running maximum raw improvement, the normalization scale.
    max_gain: f64,
}

impl Bandit {
    fn new(n_classes: usize) -> Self {
        Bandit {
            pulls: vec![0; n_classes],
            credit: vec![Ewma::with_initial(0.99, 0.0); n_classes],
            total: 0,
            max_gain: 0.0,
        }
    }

    /// Argmax of the UCB score; unpulled classes first, ties to the
    /// lowest index. Fully deterministic — consumes no randomness.
    fn pick(&self) -> usize {
        if let Some(unpulled) = self.pulls.iter().position(|&p| p == 0) {
            return unpulled;
        }
        let ln_total = (self.total.max(1) as f64).ln();
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.pulls.len() {
            let score =
                self.credit[c].value() + UCB_EXPLORATION * (ln_total / self.pulls[c] as f64).sqrt();
            if score > best_score {
                best = c;
                best_score = score;
            }
        }
        best
    }

    fn record(&mut self, class: usize, feasible: bool, accepted: bool, delta: f64) {
        let gain = if feasible && accepted {
            (-delta).max(0.0)
        } else {
            0.0
        };
        if gain > self.max_gain {
            self.max_gain = gain;
        }
        let reward = if self.max_gain > 0.0 {
            gain / self.max_gain
        } else {
            0.0
        };
        self.credit[class].update(reward);
        self.pulls[class] += 1;
        self.total += 1;
    }
}

/// Adaptive roulette over move classes.
///
/// # Examples
///
/// ```
/// use rdse_anneal::MoveClassController;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut ctl = MoveClassController::new(3);
/// let mut rng = StdRng::seed_from_u64(1);
/// let class = ctl.pick(&mut rng);
/// assert!(class < 3);
/// ctl.record(class, true, true);
/// ```
#[derive(Debug, Clone)]
pub struct MoveClassController {
    acceptance: Vec<Ewma>,
    adaptive: bool,
    bandit: Option<Bandit>,
}

impl MoveClassController {
    /// Creates an adaptive controller over `n_classes ≥ 1` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes >= 1, "need at least one move class");
        MoveClassController {
            acceptance: vec![Ewma::with_initial(0.99, 0.5); n_classes],
            adaptive: true,
            bandit: None,
        }
    }

    /// Creates a controller that draws classes uniformly (the paper's
    /// baseline behaviour: a single undifferentiated random move rule).
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn uniform(n_classes: usize) -> Self {
        let mut c = MoveClassController::new(n_classes);
        c.adaptive = false;
        c
    }

    /// Creates a deterministic UCB1 bandit over the classes, credited
    /// by *realized improvement* ([`record_delta`]) rather than
    /// acceptance rate: a class whose accepted moves actually lower
    /// the cost earns weight, one that only produces plateau or uphill
    /// acceptances does not.
    ///
    /// Selection is the UCB argmax (unpulled classes first, ties to
    /// the lowest index) and consumes **no randomness** — the walk is
    /// a pure function of the recorded rewards, so a bandit run is
    /// deterministic per seed by construction.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    ///
    /// [`record_delta`]: MoveClassController::record_delta
    pub fn bandit(n_classes: usize) -> Self {
        let mut c = MoveClassController::new(n_classes);
        c.bandit = Some(Bandit::new(n_classes));
        c
    }

    /// Number of classes managed.
    pub fn n_classes(&self) -> usize {
        self.acceptance.len()
    }

    /// Current selection weight of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn weight(&self, class: usize) -> f64 {
        if self.adaptive {
            lam_rate_factor(self.acceptance[class].value()).max(MIN_WEIGHT)
        } else {
            assert!(class < self.acceptance.len(), "class out of range");
            1.0
        }
    }

    /// Draws a class according to the current weights. A bandit
    /// controller picks its UCB argmax and leaves `rng` untouched.
    pub fn pick(&self, rng: &mut dyn RngCore) -> usize {
        let n = self.n_classes();
        if n == 1 {
            return 0;
        }
        if let Some(bandit) = &self.bandit {
            return bandit.pick();
        }
        let total: f64 = (0..n).map(|c| self.weight(c)).sum();
        let mut x: f64 = rng.random::<f64>() * total;
        for c in 0..n {
            x -= self.weight(c);
            if x <= 0.0 {
                return c;
            }
        }
        n - 1
    }

    /// Records the outcome of a move of `class`. Infeasible proposals
    /// count as rejections: a class that mostly produces cyclic search
    /// graphs should be cooled down too.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn record(&mut self, class: usize, feasible: bool, accepted: bool) {
        self.record_delta(class, feasible, accepted, 0.0);
    }

    /// Records the outcome of a move of `class` together with the
    /// realized scalarized cost delta (negative = improvement). The
    /// acceptance EWMA is always updated; a bandit controller
    /// additionally credits the class with the normalized improvement.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn record_delta(&mut self, class: usize, feasible: bool, accepted: bool, delta: f64) {
        self.acceptance[class].update(if feasible && accepted { 1.0 } else { 0.0 });
        if let Some(bandit) = &mut self.bandit {
            bandit.record(class, feasible, accepted, delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_class_always_zero() {
        let ctl = MoveClassController::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(ctl.pick(&mut rng), 0);
        }
    }

    #[test]
    fn rejected_class_gets_downweighted() {
        let mut ctl = MoveClassController::new(2);
        for _ in 0..2000 {
            ctl.record(0, true, false); // class 0: always rejected
            ctl.record(1, true, true); // class 1: always accepted... also low f
        }
        // Class 0 acceptance -> 0 => weight floored; make class 1 sit at
        // the sweet spot instead.
        let mut ctl2 = MoveClassController::new(2);
        for i in 0..2000 {
            ctl2.record(0, true, false);
            ctl2.record(1, true, i % 9 < 4); // ~0.44 acceptance
        }
        assert!(ctl2.weight(1) > ctl2.weight(0));
        let mut rng = StdRng::seed_from_u64(3);
        let picks1: usize = (0..5000).map(|_| ctl2.pick(&mut rng)).sum();
        // Class 1 should be drawn much more often than class 0.
        assert!(picks1 > 3500, "class 1 picked {picks1} / 5000");
    }

    #[test]
    fn uniform_controller_is_unbiased() {
        let ctl = MoveClassController::uniform(4);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[ctl.pick(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 1500 && c < 2500, "counts {counts:?}");
        }
    }

    #[test]
    fn infeasible_counts_as_rejection() {
        let mut ctl = MoveClassController::new(2);
        for _ in 0..500 {
            ctl.record(0, false, false);
        }
        assert!(ctl.weight(0) <= ctl.weight(1));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_classes_rejected() {
        let _ = MoveClassController::new(0);
    }

    #[test]
    fn bandit_pick_consumes_no_randomness() {
        let mut ctl = MoveClassController::bandit(3);
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..100 {
            let class = ctl.pick(&mut rng);
            ctl.record_delta(class, true, true, -(f64::from(i % 5)));
        }
        // The RNG stream is exactly where a fresh one starts.
        let mut fresh = StdRng::seed_from_u64(42);
        assert_eq!(rng.random::<u64>(), fresh.random::<u64>());
    }

    #[test]
    fn bandit_is_deterministic() {
        let drive = || {
            let mut ctl = MoveClassController::bandit(2);
            let mut rng = StdRng::seed_from_u64(0);
            let mut picks = Vec::new();
            for i in 0..500u32 {
                let class = ctl.pick(&mut rng);
                picks.push(class);
                // Class 0 improves on a fixed cadence; class 1 never.
                let delta = if class == 0 && i % 3 == 0 { -2.0 } else { 0.0 };
                ctl.record_delta(class, true, delta < 0.0, delta);
            }
            picks
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn bandit_prefers_the_improving_class() {
        let mut ctl = MoveClassController::bandit(2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            let class = ctl.pick(&mut rng);
            counts[class] += 1;
            // Class 0 reliably realizes improvement, class 1 never does.
            let delta = if class == 0 { -1.0 } else { 0.0 };
            ctl.record_delta(class, true, true, delta);
        }
        assert!(
            counts[0] > counts[1] * 3,
            "improving class starved: {counts:?}"
        );
    }

    #[test]
    fn bandit_tries_every_class_first() {
        let ctl = MoveClassController::bandit(4);
        let mut rng = StdRng::seed_from_u64(0);
        // All classes unpulled: the lowest index goes first.
        assert_eq!(ctl.pick(&mut rng), 0);
        let mut ctl = MoveClassController::bandit(4);
        ctl.record_delta(0, true, true, -1.0);
        ctl.record_delta(1, true, false, 0.0);
        // 2 and 3 are still unpulled; 2 comes first.
        assert_eq!(ctl.pick(&mut rng), 2);
    }
}
