//! Adaptive move-class selection.
//!
//! In Lam's framework "move generation affects the correlation between
//! consecutive cost values and the adaptive schedule specifies how to
//! control move generation to maximize cooling speed while satisfying
//! the quasi-equilibrium condition" (§4.1). For placement tools this is
//! the classic range-limiter; for the combinatorial mapping problem the
//! analogue is choosing *which kind* of move to draw. The paper's
//! refinement of the selection process lives in an unavailable thesis
//! (\[11\]); [`MoveClassController`] approximates it by tracking a
//! per-class acceptance EWMA and weighting classes by Lam's rate factor
//! `f(ρ_c)`, so classes running close to the optimal 0.44 acceptance are
//! drawn more often than classes that are either always rejected (too
//! disruptive at the current temperature) or always accepted
//! (uninformative).

use crate::schedule::lam_rate_factor;
use crate::stats::Ewma;
use rand::Rng;
use rand::RngCore;

/// Floor weight so no class ever starves.
const MIN_WEIGHT: f64 = 0.05;

/// Adaptive roulette over move classes.
///
/// # Examples
///
/// ```
/// use rdse_anneal::MoveClassController;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut ctl = MoveClassController::new(3);
/// let mut rng = StdRng::seed_from_u64(1);
/// let class = ctl.pick(&mut rng);
/// assert!(class < 3);
/// ctl.record(class, true, true);
/// ```
#[derive(Debug, Clone)]
pub struct MoveClassController {
    acceptance: Vec<Ewma>,
    adaptive: bool,
}

impl MoveClassController {
    /// Creates an adaptive controller over `n_classes ≥ 1` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes >= 1, "need at least one move class");
        MoveClassController {
            acceptance: vec![Ewma::with_initial(0.99, 0.5); n_classes],
            adaptive: true,
        }
    }

    /// Creates a controller that draws classes uniformly (the paper's
    /// baseline behaviour: a single undifferentiated random move rule).
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn uniform(n_classes: usize) -> Self {
        let mut c = MoveClassController::new(n_classes);
        c.adaptive = false;
        c
    }

    /// Number of classes managed.
    pub fn n_classes(&self) -> usize {
        self.acceptance.len()
    }

    /// Current selection weight of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn weight(&self, class: usize) -> f64 {
        if self.adaptive {
            lam_rate_factor(self.acceptance[class].value()).max(MIN_WEIGHT)
        } else {
            assert!(class < self.acceptance.len(), "class out of range");
            1.0
        }
    }

    /// Draws a class according to the current weights.
    pub fn pick(&self, rng: &mut dyn RngCore) -> usize {
        let n = self.n_classes();
        if n == 1 {
            return 0;
        }
        let total: f64 = (0..n).map(|c| self.weight(c)).sum();
        let mut x: f64 = rng.random::<f64>() * total;
        for c in 0..n {
            x -= self.weight(c);
            if x <= 0.0 {
                return c;
            }
        }
        n - 1
    }

    /// Records the outcome of a move of `class`. Infeasible proposals
    /// count as rejections: a class that mostly produces cyclic search
    /// graphs should be cooled down too.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn record(&mut self, class: usize, feasible: bool, accepted: bool) {
        self.acceptance[class].update(if feasible && accepted { 1.0 } else { 0.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_class_always_zero() {
        let ctl = MoveClassController::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(ctl.pick(&mut rng), 0);
        }
    }

    #[test]
    fn rejected_class_gets_downweighted() {
        let mut ctl = MoveClassController::new(2);
        for _ in 0..2000 {
            ctl.record(0, true, false); // class 0: always rejected
            ctl.record(1, true, true); // class 1: always accepted... also low f
        }
        // Class 0 acceptance -> 0 => weight floored; make class 1 sit at
        // the sweet spot instead.
        let mut ctl2 = MoveClassController::new(2);
        for i in 0..2000 {
            ctl2.record(0, true, false);
            ctl2.record(1, true, i % 9 < 4); // ~0.44 acceptance
        }
        assert!(ctl2.weight(1) > ctl2.weight(0));
        let mut rng = StdRng::seed_from_u64(3);
        let picks1: usize = (0..5000).map(|_| ctl2.pick(&mut rng)).sum();
        // Class 1 should be drawn much more often than class 0.
        assert!(picks1 > 3500, "class 1 picked {picks1} / 5000");
    }

    #[test]
    fn uniform_controller_is_unbiased() {
        let ctl = MoveClassController::uniform(4);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[ctl.pick(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 1500 && c < 2500, "counts {counts:?}");
        }
    }

    #[test]
    fn infeasible_counts_as_rejection() {
        let mut ctl = MoveClassController::new(2);
        for _ in 0..500 {
            ctl.record(0, false, false);
        }
        assert!(ctl.weight(0) <= ctl.weight(1));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_classes_rejected() {
        let _ = MoveClassController::new(0);
    }
}
