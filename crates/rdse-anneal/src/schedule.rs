//! Cooling schedules.
//!
//! The adaptive [`LamSchedule`] follows J. Lam's thesis (reference \[9\]
//! of the paper): view the cost as the energy of a dynamical system and
//! raise the inverse temperature `s = 1/T` at the maximal rate that
//! keeps the system in quasi-equilibrium. The practical form of the
//! update is
//!
//! ```text
//! s ← s + λ · f(ρ) / σ,      f(ρ) = 4ρ(1−ρ)² / (2−ρ)²
//! ```
//!
//! where `σ` is the running standard deviation of the cost and `ρ` the
//! running acceptance ratio. `f` peaks at ρ ≈ 0.44 — the well-known
//! optimal acceptance target of Lam's derivation — so cooling is
//! fastest exactly when the sampler sits at the edge of equilibrium.
//! The quality factor `λ` is the single user knob the paper mentions
//! ("lets the designer select the quality of the optimization, hence its
//! computing time"): smaller λ cools more slowly and finds better
//! solutions.

use crate::stats::{Ewma, EwmaMoments};

/// Outcome of one annealing iteration, fed back into the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationOutcome {
    /// Cost after the accept/reject decision.
    pub cost: f64,
    /// Whether the proposed move was accepted.
    pub accepted: bool,
    /// Whether the proposed move was feasible at all.
    pub feasible: bool,
}

/// A cooling schedule: maps iteration outcomes to inverse temperatures.
pub trait Schedule {
    /// Resets internal state for a fresh run.
    fn reset(&mut self);

    /// Optionally absorbs warm-up statistics (mean/σ of the cost at
    /// infinite temperature) before cooling starts.
    fn begin(&mut self, warmup_mean: f64, warmup_std_dev: f64) {
        let _ = (warmup_mean, warmup_std_dev);
    }

    /// Records one iteration and returns the inverse temperature to use
    /// for the *next* acceptance test.
    fn update(&mut self, outcome: IterationOutcome) -> f64;

    /// Current inverse temperature `s = 1/T` (0 means infinite T).
    fn inverse_temperature(&self) -> f64;

    /// Current smoothed acceptance ratio, if the schedule tracks one.
    fn acceptance(&self) -> Option<f64> {
        None
    }

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// A mutable reference schedules as the schedule it points to. This
/// lets the borrowing [`anneal`](crate::anneal) entry point drive the
/// owning [`Annealer`](crate::Annealer) state machine.
impl<S: Schedule + ?Sized> Schedule for &mut S {
    fn reset(&mut self) {
        (**self).reset()
    }

    fn begin(&mut self, warmup_mean: f64, warmup_std_dev: f64) {
        (**self).begin(warmup_mean, warmup_std_dev)
    }

    fn update(&mut self, outcome: IterationOutcome) -> f64 {
        (**self).update(outcome)
    }

    fn inverse_temperature(&self) -> f64 {
        (**self).inverse_temperature()
    }

    fn acceptance(&self) -> Option<f64> {
        (**self).acceptance()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Lam's adaptive schedule (see module docs).
#[derive(Debug, Clone)]
pub struct LamSchedule {
    lambda: f64,
    s: f64,
    acceptance: Ewma,
    moments: EwmaMoments,
    sigma_floor: f64,
}

/// Lam's optimal acceptance target (the argmax of `f`).
pub const LAM_TARGET_ACCEPTANCE: f64 = 0.44;

/// The rate factor `f(ρ) = 4ρ(1−ρ)²/(2−ρ)²` of Lam's schedule.
///
/// # Examples
///
/// ```
/// use rdse_anneal::schedule::lam_rate_factor;
/// // The factor vanishes at both extremes and peaks near 0.44.
/// assert_eq!(lam_rate_factor(0.0), 0.0);
/// assert!(lam_rate_factor(0.44) > lam_rate_factor(0.1));
/// assert!(lam_rate_factor(0.44) > lam_rate_factor(0.9));
/// ```
pub fn lam_rate_factor(rho: f64) -> f64 {
    let rho = rho.clamp(0.0, 1.0);
    4.0 * rho * (1.0 - rho) * (1.0 - rho) / ((2.0 - rho) * (2.0 - rho))
}

impl LamSchedule {
    /// Creates the schedule with quality factor `lambda` (> 0). Typical
    /// values: 0.1 for high quality, 1.0 for quick runs.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        LamSchedule {
            lambda,
            s: 0.0,
            acceptance: Ewma::with_initial(0.998, 0.5),
            moments: EwmaMoments::new(0.99),
            sigma_floor: f64::EPSILON,
        }
    }

    /// The quality factor λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Schedule for LamSchedule {
    fn reset(&mut self) {
        self.s = 0.0;
        self.acceptance = Ewma::with_initial(0.998, 0.5);
        self.moments = EwmaMoments::new(0.99);
    }

    fn begin(&mut self, warmup_mean: f64, warmup_std_dev: f64) {
        if warmup_std_dev > 0.0 {
            self.moments = EwmaMoments::new(0.99);
            // Seed the moment estimator with the warm-up distribution so
            // the very first updates of s are sane (this is our stand-in
            // for the refined estimation procedure of reference [11]).
            self.moments.update(warmup_mean + warmup_std_dev);
            self.moments.update(warmup_mean - warmup_std_dev);
            self.sigma_floor = warmup_std_dev * 1e-6;
        }
    }

    fn update(&mut self, outcome: IterationOutcome) -> f64 {
        if outcome.feasible {
            self.acceptance
                .update(if outcome.accepted { 1.0 } else { 0.0 });
        }
        self.moments.update(outcome.cost);
        let sigma = self.moments.std_dev().max(self.sigma_floor);
        if sigma > 0.0 {
            // Floor the rate factor: with a perfectly correlated start
            // (ρ ≈ 1) the textbook factor is 0 and cooling would never
            // begin.
            let f = lam_rate_factor(self.acceptance.value()).max(0.005);
            self.s += self.lambda * f / sigma;
        }
        self.s
    }

    fn inverse_temperature(&self) -> f64 {
        self.s
    }

    fn acceptance(&self) -> Option<f64> {
        Some(self.acceptance.value())
    }

    fn name(&self) -> &'static str {
        "lam-adaptive"
    }
}

/// Classic geometric cooling: `T ← α·T` every `plateau` iterations.
#[derive(Debug, Clone)]
pub struct GeometricSchedule {
    t0: f64,
    alpha: f64,
    plateau: u64,
    t: f64,
    iter: u64,
    acceptance: Ewma,
}

impl GeometricSchedule {
    /// Creates the schedule with initial temperature `t0`, cooling rate
    /// `alpha ∈ (0, 1)` and plateau length `plateau ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `t0`, `alpha` outside `(0, 1)`, or a zero
    /// plateau.
    pub fn new(t0: f64, alpha: f64, plateau: u64) -> Self {
        assert!(t0 > 0.0, "initial temperature must be positive");
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        assert!(plateau >= 1, "plateau must be at least 1");
        GeometricSchedule {
            t0,
            alpha,
            plateau,
            t: t0,
            iter: 0,
            acceptance: Ewma::with_initial(0.998, 0.5),
        }
    }
}

impl Schedule for GeometricSchedule {
    fn reset(&mut self) {
        self.t = self.t0;
        self.iter = 0;
        self.acceptance = Ewma::with_initial(0.998, 0.5);
    }

    fn begin(&mut self, _warmup_mean: f64, warmup_std_dev: f64) {
        // Standard rule of thumb: start hot enough that a typical
        // uphill move of one σ is accepted with high probability.
        if warmup_std_dev > 0.0 {
            self.t0 = warmup_std_dev;
            self.t = self.t0;
        }
    }

    fn update(&mut self, outcome: IterationOutcome) -> f64 {
        if outcome.feasible {
            self.acceptance
                .update(if outcome.accepted { 1.0 } else { 0.0 });
        }
        self.iter += 1;
        if self.iter.is_multiple_of(self.plateau) {
            self.t *= self.alpha;
        }
        1.0 / self.t
    }

    fn inverse_temperature(&self) -> f64 {
        1.0 / self.t
    }

    fn acceptance(&self) -> Option<f64> {
        Some(self.acceptance.value())
    }

    fn name(&self) -> &'static str {
        "geometric"
    }
}

/// Degenerate schedule that never cools — a uniform random walk over
/// feasible moves. Fig. 2 of the paper runs its first 1 200 iterations
/// in this regime; it also serves as a baseline in ablations.
#[derive(Debug, Clone, Default)]
pub struct InfiniteTemperature;

impl InfiniteTemperature {
    /// Creates the schedule.
    pub fn new() -> Self {
        InfiniteTemperature
    }
}

impl Schedule for InfiniteTemperature {
    fn reset(&mut self) {}

    fn update(&mut self, _outcome: IterationOutcome) -> f64 {
        0.0
    }

    fn inverse_temperature(&self) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "infinite-temperature"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_factor_peaks_near_044() {
        let mut best = (0.0, 0.0);
        let mut rho = 0.0;
        while rho <= 1.0 {
            let f = lam_rate_factor(rho);
            if f > best.1 {
                best = (rho, f);
            }
            rho += 0.001;
        }
        assert!((best.0 - 0.44).abs() < 0.01, "peak at {}", best.0);
    }

    #[test]
    fn lam_inverse_temperature_is_nondecreasing() {
        let mut s = LamSchedule::new(0.5);
        s.begin(100.0, 10.0);
        let mut prev = 0.0;
        for i in 0..1000 {
            let cost = 100.0 - i as f64 * 0.01;
            let next = s.update(IterationOutcome {
                cost,
                accepted: i % 2 == 0,
                feasible: true,
            });
            assert!(next >= prev);
            prev = next;
        }
        assert!(prev > 0.0);
    }

    #[test]
    fn lam_cools_faster_with_larger_lambda() {
        let run = |lambda: f64| {
            let mut s = LamSchedule::new(lambda);
            s.begin(100.0, 10.0);
            for i in 0..500 {
                s.update(IterationOutcome {
                    cost: 100.0,
                    accepted: i % 2 == 0,
                    feasible: true,
                });
            }
            s.inverse_temperature()
        };
        assert!(run(1.0) > run(0.1));
    }

    #[test]
    fn geometric_halves_on_schedule() {
        let mut s = GeometricSchedule::new(8.0, 0.5, 2);
        let out = IterationOutcome {
            cost: 1.0,
            accepted: true,
            feasible: true,
        };
        s.update(out); // iter 1
        assert_eq!(s.inverse_temperature(), 1.0 / 8.0);
        s.update(out); // iter 2 -> T=4
        assert_eq!(s.inverse_temperature(), 1.0 / 4.0);
        s.reset();
        assert_eq!(s.inverse_temperature(), 1.0 / 8.0);
    }

    #[test]
    fn infinite_temperature_stays_zero() {
        let mut s = InfiniteTemperature::new();
        for _ in 0..10 {
            assert_eq!(
                s.update(IterationOutcome {
                    cost: 5.0,
                    accepted: true,
                    feasible: true
                }),
                0.0
            );
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn lam_rejects_bad_lambda() {
        let _ = LamSchedule::new(0.0);
    }

    #[test]
    fn infeasible_moves_do_not_touch_acceptance() {
        let mut s = LamSchedule::new(1.0);
        s.begin(10.0, 1.0);
        for _ in 0..100 {
            s.update(IterationOutcome {
                cost: 10.0,
                accepted: false,
                feasible: false,
            });
        }
        // Acceptance EWMA was never updated: still at its 0.5 prior.
        assert!((s.acceptance().unwrap() - 0.5).abs() < 1e-12);
    }
}
