//! Adaptive simulated annealing with the Lam cooling schedule.
//!
//! This crate implements the search engine of the DATE'05 paper
//! (Miramond & Delosme, §4.1): a local-search method based on simulated
//! annealing whose cooling schedule is *adaptive* in the sense of Lam —
//! the inverse temperature is raised at the fastest rate compatible with
//! keeping the system in quasi-equilibrium, driven by running statistics
//! (mean, variance, acceptance ratio) of the cost function. The engine
//! is problem-agnostic: anything implementing [`Problem`] can be
//! annealed, mirroring the paper's object-oriented tool design.
//!
//! Three schedules are provided:
//!
//! * [`LamSchedule`] — the adaptive schedule (the paper's method);
//! * [`GeometricSchedule`] — classic fixed-rate cooling, for ablations;
//! * [`InfiniteTemperature`] — pure random walk, used both for the
//!   warm-up phase visible in Fig. 2 of the paper and as a baseline.
//!
//! # Multi-objective costs
//!
//! A problem's cost is an associated [`Cost`] type — plain `f64` for
//! single-objective problems, a compact vector of minimized axes for
//! multi-objective ones. Acceptance always walks on a scalarized view
//! ([`Scalarizer`]: [`DefaultScalar`], [`WeightedSum`] or
//! [`Lexicographic`]) while the engine records the full vectors, and
//! [`Annealer::track_front`] archives every accepted vector in a
//! shared [`ParetoFront`] — the trade-off surface survives whatever
//! the scalarization collapses. The default configuration (`f64` cost,
//! [`DefaultScalar`]) is bit-identical to the historical scalar
//! engine.
//!
//! # Examples
//!
//! ```
//! use rdse_anneal::{anneal, LamSchedule, Problem, RunOptions};
//! use rdse_anneal::problems::continuous::Sphere;
//!
//! let mut problem = Sphere::new(4, 5.0, 42);
//! let mut schedule = LamSchedule::new(1.0);
//! let result = anneal(
//!     &mut problem,
//!     &mut schedule,
//!     &RunOptions { max_iterations: 20_000, seed: 7, ..RunOptions::default() },
//! );
//! assert!(result.best_cost < 1.0);
//! ```

pub mod controller;
pub mod cost;
pub mod pareto;
pub mod problem;
pub mod problems;
pub mod runner;
pub mod schedule;
pub mod speculate;
pub mod stats;

pub use controller::MoveClassController;
pub use cost::{Cost, DefaultScalar, Lexicographic, Scalarizer, WeightedSum};
pub use pareto::{crowding_distance, hypervolume, non_dominated_rank, Dominance, ParetoFront};
pub use problem::Problem;
pub use runner::{anneal, Annealer, RunOptions, RunResult, StopReason, TracePoint};
pub use schedule::{GeometricSchedule, InfiniteTemperature, LamSchedule, Schedule};
pub use speculate::SpeculativeProblem;
pub use stats::{Ewma, EwmaMoments, OnlineStats};
