//! The annealing loop.
//!
//! Mirrors the structure visible in Fig. 2 of the paper: an optional
//! warm-up phase at infinite temperature (broad exploration, no average
//! improvement), then adaptive cooling until the iteration budget is
//! exhausted, the run freezes, or the caller's deadline passes. The
//! method is iterative and interruptible — it always returns the best
//! solution seen so far.
//!
//! Two entry points are provided. [`anneal`] drives a run to completion
//! in one call. [`Annealer`] exposes the same loop as a resumable state
//! machine — construct it, advance it in segments with
//! [`Annealer::run_segment`], inspect or replace the incumbent between
//! segments with [`Annealer::adopt`], and extract the final
//! [`RunResult`] with [`Annealer::finish`]. Pausing at a segment
//! boundary and resuming is bit-identical to an uninterrupted run: the
//! RNG, the schedule (including the Lam statistics), the move-class
//! controller and the warm-up accumulator all live inside the
//! `Annealer`. Multi-chain portfolio searches are built on exactly this
//! property.

use crate::controller::MoveClassController;
use crate::cost::{DefaultScalar, Scalarizer};
use crate::pareto::ParetoFront;
use crate::problem::Problem;
use crate::schedule::{IterationOutcome, Schedule};
use crate::stats::OnlineStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Options controlling an annealing run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Total iteration budget (warm-up included).
    pub max_iterations: u64,
    /// Iterations spent at infinite temperature before cooling starts
    /// (1 200 in the paper's Fig. 2 run).
    pub warmup_iterations: u64,
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Optional wall-clock budget; checked every 256 iterations.
    pub time_budget: Option<Duration>,
    /// Stop early once the best cost is at or below this target.
    pub target_cost: Option<f64>,
    /// Freeze detection: stop after this many consecutive iterations
    /// without improvement of the best cost *and* acceptance below 1%.
    /// `0` disables freeze detection.
    pub freeze_window: u64,
    /// Record a trace point every `trace_every` iterations (`0` = no
    /// trace). Traces feed the Fig. 2 reproduction.
    pub trace_every: u64,
    /// Use the adaptive move-class controller; when `false` classes are
    /// drawn uniformly.
    pub adaptive_moves: bool,
    /// Select move classes with a deterministic UCB bandit credited by
    /// realized improvement instead of the acceptance-rate roulette.
    /// Takes precedence over `adaptive_moves`; the bandit consumes no
    /// randomness, so runs stay deterministic per seed.
    pub bandit_moves: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_iterations: 10_000,
            warmup_iterations: 0,
            seed: 0,
            time_budget: None,
            target_cost: None,
            freeze_window: 0,
            trace_every: 0,
            adaptive_moves: true,
            bandit_moves: false,
        }
    }
}

/// One sampled point of a run trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Iteration index (0-based).
    pub iteration: u64,
    /// Cost of the current solution.
    pub cost: f64,
    /// Best cost seen so far.
    pub best_cost: f64,
    /// Inverse temperature at this iteration.
    pub inverse_temperature: f64,
    /// Problem observables, in the order reported by
    /// [`Problem::observables`].
    pub observables: Vec<(&'static str, f64)>,
}

/// Why the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration budget was exhausted.
    IterationBudget,
    /// The wall-clock budget was exhausted.
    TimeBudget,
    /// The target cost was reached.
    TargetReached,
    /// No improvement within the freeze window at near-zero acceptance.
    Frozen,
    /// The caller ended the run ([`Annealer::finish`]) before the
    /// budget was exhausted or any stop condition fired — e.g. a
    /// portfolio aborting its remaining chains once one chain reached
    /// the target.
    Interrupted,
}

impl StopReason {
    /// Short human-readable description.
    pub fn describe(self) -> &'static str {
        match self {
            StopReason::IterationBudget => "iteration budget exhausted",
            StopReason::TimeBudget => "time budget exhausted",
            StopReason::TargetReached => "target cost reached",
            StopReason::Frozen => "frozen",
            StopReason::Interrupted => "interrupted by caller",
        }
    }
}

/// Outcome of an annealing run.
///
/// Generic over the problem's [`Cost`](crate::Cost) type, defaulting to the
/// single-objective `f64` case. The scalar statistics (`best_cost`,
/// `initial_cost`, trace costs) are always the **scalarized** view the
/// acceptance rule walked on; `best_objectives` carries the full cost
/// vector of the best solution, and `front` the Pareto archive of
/// accepted solutions when the run recorded one
/// ([`Annealer::track_front`]).
#[derive(Debug, Clone)]
pub struct RunResult<C = f64> {
    /// Best scalarized cost encountered (the problem is restored to
    /// this solution).
    pub best_cost: f64,
    /// Full cost vector of the best solution.
    pub best_objectives: C,
    /// Pareto archive over the costs of the initial and every accepted
    /// solution; `None` unless [`Annealer::track_front`] enabled it.
    pub front: Option<ParetoFront<C>>,
    /// Cost of the initial solution.
    pub initial_cost: f64,
    /// Iterations actually executed.
    pub iterations: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// Rejected (feasible) moves.
    pub rejected: u64,
    /// Infeasible proposals (e.g. cyclic search graphs).
    pub infeasible: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Sampled trace (empty unless `trace_every > 0`).
    pub trace: Vec<TracePoint>,
    /// Statistics of the warm-up phase (empty if no warm-up ran).
    pub warmup: OnlineStats,
}

impl<C> RunResult<C> {
    /// Short description of why the run stopped.
    pub fn stop_description(&self) -> &'static str {
        self.stop.describe()
    }
}

/// Runs simulated annealing on `problem` under `schedule`.
///
/// On return the problem is restored to the best solution found.
///
/// # Examples
///
/// ```
/// use rdse_anneal::{anneal, LamSchedule, RunOptions};
/// use rdse_anneal::problems::bipartition::Bipartition;
///
/// let mut p = Bipartition::two_cliques(6, 42);
/// let mut s = LamSchedule::new(1.0);
/// let result = anneal(&mut p, &mut s, &RunOptions {
///     max_iterations: 20_000,
///     warmup_iterations: 500,
///     seed: 1,
///     ..RunOptions::default()
/// });
/// assert_eq!(result.best_cost, 1.0); // single bridge edge cut
/// ```
pub fn anneal<P: Problem, S: Schedule>(
    problem: &mut P,
    schedule: &mut S,
    opts: &RunOptions,
) -> RunResult<P::Cost> {
    let mut annealer = Annealer::new(&mut *problem, &mut *schedule, opts.clone());
    annealer.run_segment(u64::MAX);
    annealer.finish().2
}

/// The annealing loop as a resumable state machine.
///
/// An `Annealer` owns the problem, the schedule, the RNG, the
/// move-class controller, the warm-up statistics and the best-so-far
/// snapshot, so a run can be paused at any iteration boundary and
/// resumed later — by the same thread or another — without perturbing
/// the random walk. [`anneal`] is a thin wrapper that constructs one
/// and drives it to completion, so segmented execution is bit-identical
/// to a monolithic run for equal options.
///
/// Between segments the caller may inspect [`best_cost`] /
/// [`best_snapshot`] and replace the incumbent with [`adopt`]; this is
/// the exchange primitive of multi-chain portfolio annealing.
///
/// # Examples
///
/// ```
/// use rdse_anneal::{Annealer, LamSchedule, RunOptions};
/// use rdse_anneal::problems::bipartition::Bipartition;
///
/// let opts = RunOptions { max_iterations: 20_000, warmup_iterations: 500, seed: 1,
///                         ..RunOptions::default() };
/// let mut a = Annealer::new(Bipartition::two_cliques(6, 42), LamSchedule::new(1.0), opts);
/// while a.run_segment(1_000) {
///     // exchange point: inspect a.best_cost(), adopt a better incumbent, ...
/// }
/// let (_problem, _schedule, result) = a.finish();
/// assert_eq!(result.best_cost, 1.0); // single bridge edge cut
/// ```
///
/// Scalar acceptance walks on a scalarized view of the problem's
/// [`Cost`](crate::Cost) — [`DefaultScalar`] (the cost's own scalar, the historical
/// behaviour) unless [`Annealer::with_scalarizer`] installs a
/// [`WeightedSum`](crate::WeightedSum) or
/// [`Lexicographic`](crate::Lexicographic) projection — while the full
/// cost vectors of the current and best solutions are recorded
/// verbatim, optionally into a [`ParetoFront`] archive
/// ([`Annealer::track_front`]).
///
/// [`best_cost`]: Annealer::best_cost
/// [`best_snapshot`]: Annealer::best_snapshot
/// [`adopt`]: Annealer::adopt
#[derive(Debug)]
pub struct Annealer<P: Problem, S: Schedule, Z: Scalarizer<P::Cost> = DefaultScalar> {
    pub(crate) problem: P,
    pub(crate) schedule: S,
    pub(crate) opts: RunOptions,
    pub(crate) rng: StdRng,
    pub(crate) controller: MoveClassController,
    pub(crate) scalarizer: Z,
    pub(crate) initial_cost: f64,
    /// Scalarized cost of the current solution.
    pub(crate) cost: f64,
    /// Full cost vector of the current solution.
    pub(crate) cost_objectives: P::Cost,
    /// Scalarized cost of the best solution.
    pub(crate) best_cost: f64,
    /// Full cost vector of the best solution.
    pub(crate) best_objectives: P::Cost,
    pub(crate) best_snapshot: P::Snapshot,
    /// Pareto archive over accepted solutions (off by default).
    pub(crate) front: Option<ParetoFront<P::Cost>>,
    pub(crate) last_improvement: u64,
    pub(crate) accepted: u64,
    pub(crate) rejected: u64,
    pub(crate) infeasible: u64,
    pub(crate) warmup: OnlineStats,
    pub(crate) trace: Vec<TracePoint>,
    pub(crate) stop: Option<StopReason>,
    /// Inverse temperature; 0 during warm-up.
    pub(crate) s: f64,
    pub(crate) iter: u64,
    /// Wall-clock time accumulated over completed segments.
    pub(crate) elapsed: Duration,
}

impl<P: Problem, S: Schedule> Annealer<P, S> {
    /// Prepares a run over `problem` under `schedule` with the default
    /// scalarization ([`Cost::scalar`](crate::Cost::scalar)): resets the schedule, builds
    /// the move-class controller and snapshots the initial solution as
    /// the incumbent best.
    pub fn new(problem: P, schedule: S, opts: RunOptions) -> Self {
        Annealer::with_scalarizer(problem, schedule, opts, DefaultScalar)
    }
}

impl<P: Problem, S: Schedule, Z: Scalarizer<P::Cost>> Annealer<P, S, Z> {
    /// Prepares a run whose acceptance decisions walk on
    /// `scalarizer`'s view of the problem's cost vectors.
    pub fn with_scalarizer(problem: P, mut schedule: S, opts: RunOptions, scalarizer: Z) -> Self {
        let rng = StdRng::seed_from_u64(opts.seed);
        schedule.reset();
        let n_classes = problem.n_move_classes().max(1);
        let controller = if opts.bandit_moves {
            MoveClassController::bandit(n_classes)
        } else if opts.adaptive_moves {
            MoveClassController::new(n_classes)
        } else {
            MoveClassController::uniform(n_classes)
        };
        let initial_objectives = problem.cost();
        let initial_cost = scalarizer.scalarize(&initial_objectives);
        let best_snapshot = problem.snapshot();
        Annealer {
            problem,
            schedule,
            opts,
            rng,
            controller,
            scalarizer,
            initial_cost,
            cost: initial_cost,
            cost_objectives: initial_objectives.clone(),
            best_cost: initial_cost,
            best_objectives: initial_objectives,
            best_snapshot,
            front: None,
            last_improvement: 0,
            accepted: 0,
            rejected: 0,
            infeasible: 0,
            warmup: OnlineStats::new(),
            trace: Vec::new(),
            stop: None,
            s: 0.0,
            iter: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Starts recording the Pareto archive: the cost vectors of the
    /// initial solution and of every subsequently accepted solution
    /// feed a [`ParetoFront`] returned in [`RunResult::front`].
    /// Recording is observational — it never touches the RNG stream or
    /// the acceptance arithmetic, so a tracked run walks bit-identically
    /// to an untracked one.
    pub fn track_front(&mut self) {
        if self.front.is_none() {
            let mut front = ParetoFront::new();
            front.insert(self.cost_objectives.clone());
            self.front = Some(front);
        }
    }

    /// Whether the run has ended (budget exhausted or a stop condition
    /// fired). A finished annealer ignores further `run_segment` calls.
    pub fn is_finished(&self) -> bool {
        self.stop.is_some() || self.iter >= self.opts.max_iterations
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iter
    }

    /// Cost of the current (not necessarily best) solution.
    pub fn current_cost(&self) -> f64 {
        self.cost
    }

    /// Best scalarized cost seen so far.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// Full cost vector of the best solution seen so far.
    pub fn best_objectives(&self) -> &P::Cost {
        &self.best_objectives
    }

    /// Full cost vector of the current solution.
    pub fn current_objectives(&self) -> &P::Cost {
        &self.cost_objectives
    }

    /// The Pareto archive recorded so far, if [`track_front`] enabled
    /// it.
    ///
    /// [`track_front`]: Annealer::track_front
    pub fn front(&self) -> Option<&ParetoFront<P::Cost>> {
        self.front.as_ref()
    }

    /// Snapshot of the best solution seen so far.
    pub fn best_snapshot(&self) -> &P::Snapshot {
        &self.best_snapshot
    }

    /// The problem in its *current* state (walk position, not the best).
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Mutable access to the problem between steps — for configuring
    /// execution machinery (e.g. installing a scoring pool for
    /// [`run_segment_speculative`]). Mutating the *solution* through
    /// this reference desynchronizes the walk; restrict changes to
    /// knobs that cannot affect results.
    ///
    /// [`run_segment_speculative`]: Annealer::run_segment_speculative
    pub fn problem_mut(&mut self) -> &mut P {
        &mut self.problem
    }

    /// Why the run stopped, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if let Some(stop) = self.stop {
            Some(stop)
        } else if self.iter >= self.opts.max_iterations {
            Some(StopReason::IterationBudget)
        } else {
            None
        }
    }

    /// Replaces the current solution with an externally supplied
    /// incumbent of the given cost — the best-solution exchange of a
    /// portfolio run. Updates the best-so-far if the incumbent improves
    /// on it (on the scalarized view) and records the incumbent's cost
    /// vector in the Pareto archive when one is tracked. Schedule
    /// statistics and the RNG stream are untouched, so the subsequent
    /// walk stays deterministic.
    pub fn adopt(&mut self, snapshot: P::Snapshot, cost: P::Cost) {
        let scalar = self.scalarizer.scalarize(&cost);
        if let Some(front) = &mut self.front {
            front.insert(cost.clone());
        }
        let improved = self
            .scalarizer
            .delta(&cost, &self.best_objectives, scalar - self.best_cost)
            < 0.0;
        if improved {
            // The snapshot doubles as the new best: borrow it for the
            // restore, then retain it.
            self.problem.restore(&snapshot);
            self.best_cost = scalar;
            self.best_objectives = cost.clone();
            self.best_snapshot = snapshot;
            self.last_improvement = self.iter;
        } else {
            // Not retained — hand it to the problem by value so the
            // restore can move the state in without cloning.
            self.problem.restore_owned(snapshot);
        }
        self.cost = scalar;
        self.cost_objectives = cost;
    }

    /// Runs up to `steps` iterations (fewer if the run ends first) and
    /// returns `true` while the run can continue.
    pub fn run_segment(&mut self, steps: u64) -> bool {
        let segment_start = Instant::now();
        let mut n = 0u64;
        while n < steps && !self.is_finished() {
            self.step_inner(segment_start);
            n += 1;
        }
        self.elapsed += segment_start.elapsed();
        !self.is_finished()
    }

    /// Runs a single iteration; returns `true` while the run can
    /// continue.
    pub fn step(&mut self) -> bool {
        self.run_segment(1)
    }

    /// Ends the run: restores the problem to the best solution found
    /// and returns problem, schedule and the [`RunResult`]. A run
    /// finished before its budget was exhausted (and before any stop
    /// condition fired) reports [`StopReason::Interrupted`].
    ///
    /// The best snapshot is consumed here, so the restore moves the
    /// solution back into the problem without a final clone
    /// ([`Problem::restore_owned`]).
    pub fn finish(self) -> (P, S, RunResult<P::Cost>) {
        let stop = self.stop_reason().unwrap_or(StopReason::Interrupted);
        let mut problem = self.problem;
        problem.restore_owned(self.best_snapshot);
        let result = RunResult {
            best_cost: self.best_cost,
            best_objectives: self.best_objectives,
            front: self.front,
            initial_cost: self.initial_cost,
            iterations: self.iter,
            accepted: self.accepted,
            rejected: self.rejected,
            infeasible: self.infeasible,
            stop,
            elapsed: self.elapsed,
            trace: self.trace,
            warmup: self.warmup,
        };
        (problem, self.schedule, result)
    }

    /// One iteration of the loop; mirrors the paper's Fig. 2 structure.
    pub(crate) fn step_inner(&mut self, segment_start: Instant) {
        let iter = self.iter;
        if iter == self.opts.warmup_iterations && iter > 0 {
            self.schedule
                .begin(self.warmup.mean(), self.warmup.std_dev());
        }
        let in_warmup = iter < self.opts.warmup_iterations;

        let class = self.controller.pick(&mut self.rng);
        let outcome = match self.problem.try_move(&mut self.rng, class) {
            None => {
                self.infeasible += 1;
                self.controller.record(class, false, false);
                IterationOutcome {
                    cost: self.cost,
                    accepted: false,
                    feasible: false,
                }
            }
            Some((mv, new_objectives)) => {
                // Scalarize once; the acceptance delta is the stored
                // scalar difference unless the scalarizer overrides it
                // (lexicographic tier comparison). On the default
                // scalar path this is exactly the historical
                // `new_cost - self.cost`.
                let new_cost = self.scalarizer.scalarize(&new_objectives);
                let delta = self.scalarizer.delta(
                    &new_objectives,
                    &self.cost_objectives,
                    new_cost - self.cost,
                );
                let accept = delta <= 0.0 || {
                    let s_eff = if in_warmup { 0.0 } else { self.s };
                    // s_eff == 0 means infinite temperature: accept all.
                    s_eff == 0.0 || self.rng.random::<f64>() < (-delta * s_eff).exp()
                };
                if accept {
                    // Plateau moves (identical cost vector) are common
                    // and already represented in the archive — skip the
                    // O(front) insert scan for them.
                    let vector_changed = new_objectives != self.cost_objectives;
                    self.cost = new_cost;
                    self.cost_objectives = new_objectives;
                    self.accepted += 1;
                    if vector_changed {
                        if let Some(front) = &mut self.front {
                            front.insert(self.cost_objectives.clone());
                        }
                    }
                    // Best tracking goes through the scalarizer's delta
                    // too, so a lexicographic run's best snapshot is the
                    // *tiered* best (primary ties broken by lower
                    // tiers) and the reported winner always has a
                    // retrievable solution. On the default path
                    // `delta = cost - best_cost`, and `a - b < 0` is
                    // decision-identical to `a < b` for every f64 pair
                    // (IEEE-754 subtraction of distinct finite values
                    // never rounds to zero), so the walk is unchanged.
                    let improved = self.scalarizer.delta(
                        &self.cost_objectives,
                        &self.best_objectives,
                        self.cost - self.best_cost,
                    ) < 0.0;
                    if improved {
                        self.best_cost = self.cost;
                        self.best_objectives = self.cost_objectives.clone();
                        self.best_snapshot = self.problem.snapshot();
                        self.last_improvement = iter;
                    }
                } else {
                    // Rejection stays vector-free: the proposed cost is
                    // dropped and only the compact move delta is undone.
                    self.problem.undo(mv);
                    self.rejected += 1;
                }
                // The realized scalarized delta credits the class in
                // bandit mode; acceptance-rate controllers ignore it.
                self.controller.record_delta(class, true, accept, delta);
                IterationOutcome {
                    cost: self.cost,
                    accepted: accept,
                    feasible: true,
                }
            }
        };

        if in_warmup {
            self.warmup.update(self.cost);
        } else {
            self.s = self.schedule.update(outcome);
        }

        if self.opts.trace_every > 0 && iter.is_multiple_of(self.opts.trace_every) {
            self.trace.push(TracePoint {
                iteration: iter,
                cost: self.cost,
                best_cost: self.best_cost,
                inverse_temperature: if in_warmup { 0.0 } else { self.s },
                observables: self.problem.observables(),
            });
        }

        self.iter += 1;

        if let Some(target) = self.opts.target_cost {
            if self.best_cost <= target {
                self.stop = Some(StopReason::TargetReached);
                return;
            }
        }
        if self.opts.freeze_window > 0
            && !in_warmup
            && self.iter - self.last_improvement > self.opts.freeze_window
            && self.schedule.acceptance().is_some_and(|a| a < 0.01)
        {
            self.stop = Some(StopReason::Frozen);
            return;
        }
        if self.iter.is_multiple_of(256) {
            if let Some(budget) = self.opts.time_budget {
                if self.elapsed + segment_start.elapsed() >= budget {
                    self.stop = Some(StopReason::TimeBudget);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::bipartition::Bipartition;
    use crate::problems::continuous::Sphere;
    use crate::schedule::{GeometricSchedule, InfiniteTemperature, LamSchedule};

    fn quick_opts(iters: u64, seed: u64) -> RunOptions {
        RunOptions {
            max_iterations: iters,
            warmup_iterations: iters / 10,
            seed,
            ..RunOptions::default()
        }
    }

    #[test]
    fn respects_iteration_budget() {
        let mut p = Sphere::new(3, 1.0, 0);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(&mut p, &mut s, &quick_opts(100, 0));
        assert_eq!(r.iterations, 100);
        assert_eq!(r.stop, StopReason::IterationBudget);
        assert_eq!(r.accepted + r.rejected + r.infeasible, 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = Sphere::new(5, 3.0, 7);
            let mut s = LamSchedule::new(1.0);
            anneal(&mut p, &mut s, &quick_opts(5000, seed)).best_cost
        };
        assert_eq!(run(11), run(11));
        // Different seeds should (almost surely) differ.
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn best_cost_never_worse_than_initial() {
        let mut p = Bipartition::two_cliques(8, 3);
        let mut s = GeometricSchedule::new(10.0, 0.95, 20);
        let r = anneal(&mut p, &mut s, &quick_opts(2000, 5));
        assert!(r.best_cost <= r.initial_cost);
        // The problem was restored to the best solution.
        assert_eq!(p.cost(), r.best_cost);
    }

    #[test]
    fn infinite_temperature_does_not_converge() {
        // A random walk should end (on average) far from optimal; we
        // only check the engine runs and records a full trace.
        let mut p = Sphere::new(4, 10.0, 1);
        let mut s = InfiniteTemperature::new();
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 1000,
                trace_every: 100,
                seed: 2,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.trace.len(), 10);
        assert!(r.trace.iter().all(|t| t.inverse_temperature == 0.0));
    }

    #[test]
    fn target_cost_stops_early() {
        let mut p = Bipartition::two_cliques(6, 1);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 200_000,
                warmup_iterations: 100,
                target_cost: Some(1.0),
                seed: 4,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.stop, StopReason::TargetReached);
        assert!(r.iterations < 200_000);
        assert_eq!(r.best_cost, 1.0);
    }

    #[test]
    fn warmup_statistics_are_collected() {
        let mut p = Sphere::new(3, 2.0, 9);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(&mut p, &mut s, &quick_opts(1000, 3));
        assert_eq!(r.warmup.count(), 100);
        assert!(r.warmup.std_dev() >= 0.0);
    }

    #[test]
    fn segmented_run_is_bit_identical_to_monolithic() {
        let opts = quick_opts(4000, 13);
        let mut p1 = Bipartition::two_cliques(8, 9);
        let mut s1 = LamSchedule::new(0.7);
        let whole = anneal(&mut p1, &mut s1, &opts);

        let mut a = Annealer::new(Bipartition::two_cliques(8, 9), LamSchedule::new(0.7), opts);
        // Ragged segment sizes: pausing must not perturb the walk.
        for seg in [1u64, 7, 100, 250, 999, 10_000] {
            if !a.run_segment(seg) {
                break;
            }
        }
        let (p2, _, segmented) = a.finish();
        assert_eq!(whole.best_cost.to_bits(), segmented.best_cost.to_bits());
        assert_eq!(whole.iterations, segmented.iterations);
        assert_eq!(whole.accepted, segmented.accepted);
        assert_eq!(whole.rejected, segmented.rejected);
        assert_eq!(p1.cost().to_bits(), p2.cost().to_bits());
    }

    #[test]
    fn adopt_installs_a_better_incumbent() {
        let mut a = Annealer::new(
            Sphere::new(4, 5.0, 3),
            InfiniteTemperature::new(),
            RunOptions {
                max_iterations: 100,
                seed: 5,
                ..RunOptions::default()
            },
        );
        a.run_segment(10);
        // A Sphere snapshot is the coordinate vector; the origin costs 0.
        a.adopt(vec![0.0; 4], 0.0);
        assert_eq!(a.best_cost(), 0.0);
        assert_eq!(a.current_cost(), 0.0);
        a.run_segment(u64::MAX);
        let (_, _, r) = a.finish();
        assert_eq!(r.best_cost, 0.0);
        assert_eq!(r.iterations, 100);
    }

    #[test]
    fn annealer_reports_stop_reason_progressively() {
        let mut a = Annealer::new(
            Sphere::new(3, 1.0, 0),
            LamSchedule::new(1.0),
            RunOptions {
                max_iterations: 50,
                seed: 0,
                ..RunOptions::default()
            },
        );
        assert_eq!(a.stop_reason(), None);
        assert!(!a.is_finished());
        let more = a.run_segment(50);
        assert!(!more);
        assert!(a.is_finished());
        assert_eq!(a.stop_reason(), Some(StopReason::IterationBudget));
        assert_eq!(a.iterations(), 50);
    }

    #[test]
    fn bandit_moves_are_deterministic_per_seed() {
        let run = |seed| {
            let mut p = Sphere::new(5, 3.0, 7);
            let mut s = LamSchedule::new(1.0);
            let r = anneal(
                &mut p,
                &mut s,
                &RunOptions {
                    bandit_moves: true,
                    ..quick_opts(5000, seed)
                },
            );
            r.best_cost
        };
        assert_eq!(run(11).to_bits(), run(11).to_bits());
        // The bandit still anneals: the walk improves on the start.
        let mut p = Sphere::new(5, 3.0, 7);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                bandit_moves: true,
                ..quick_opts(5000, 11)
            },
        );
        assert!(r.best_cost < r.initial_cost);
    }

    #[test]
    fn trace_monotone_best() {
        let mut p = Bipartition::two_cliques(10, 2);
        let mut s = LamSchedule::new(0.5);
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 20_000,
                warmup_iterations: 1000,
                trace_every: 50,
                seed: 8,
                ..RunOptions::default()
            },
        );
        for w in r.trace.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
    }
}
