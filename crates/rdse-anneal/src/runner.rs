//! The annealing loop.
//!
//! Mirrors the structure visible in Fig. 2 of the paper: an optional
//! warm-up phase at infinite temperature (broad exploration, no average
//! improvement), then adaptive cooling until the iteration budget is
//! exhausted, the run freezes, or the caller's deadline passes. The
//! method is iterative and interruptible — it always returns the best
//! solution seen so far.

use crate::controller::MoveClassController;
use crate::problem::Problem;
use crate::schedule::{IterationOutcome, Schedule};
use crate::stats::OnlineStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Options controlling an annealing run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Total iteration budget (warm-up included).
    pub max_iterations: u64,
    /// Iterations spent at infinite temperature before cooling starts
    /// (1 200 in the paper's Fig. 2 run).
    pub warmup_iterations: u64,
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Optional wall-clock budget; checked every 256 iterations.
    pub time_budget: Option<Duration>,
    /// Stop early once the best cost is at or below this target.
    pub target_cost: Option<f64>,
    /// Freeze detection: stop after this many consecutive iterations
    /// without improvement of the best cost *and* acceptance below 1%.
    /// `0` disables freeze detection.
    pub freeze_window: u64,
    /// Record a trace point every `trace_every` iterations (`0` = no
    /// trace). Traces feed the Fig. 2 reproduction.
    pub trace_every: u64,
    /// Use the adaptive move-class controller; when `false` classes are
    /// drawn uniformly.
    pub adaptive_moves: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_iterations: 10_000,
            warmup_iterations: 0,
            seed: 0,
            time_budget: None,
            target_cost: None,
            freeze_window: 0,
            trace_every: 0,
            adaptive_moves: true,
        }
    }
}

/// One sampled point of a run trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Iteration index (0-based).
    pub iteration: u64,
    /// Cost of the current solution.
    pub cost: f64,
    /// Best cost seen so far.
    pub best_cost: f64,
    /// Inverse temperature at this iteration.
    pub inverse_temperature: f64,
    /// Problem observables, in the order reported by
    /// [`Problem::observables`].
    pub observables: Vec<(&'static str, f64)>,
}

/// Why the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration budget was exhausted.
    IterationBudget,
    /// The wall-clock budget was exhausted.
    TimeBudget,
    /// The target cost was reached.
    TargetReached,
    /// No improvement within the freeze window at near-zero acceptance.
    Frozen,
}

impl StopReason {
    /// Short human-readable description.
    pub fn describe(self) -> &'static str {
        match self {
            StopReason::IterationBudget => "iteration budget exhausted",
            StopReason::TimeBudget => "time budget exhausted",
            StopReason::TargetReached => "target cost reached",
            StopReason::Frozen => "frozen",
        }
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Best cost encountered (the problem is restored to this solution).
    pub best_cost: f64,
    /// Cost of the initial solution.
    pub initial_cost: f64,
    /// Iterations actually executed.
    pub iterations: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// Rejected (feasible) moves.
    pub rejected: u64,
    /// Infeasible proposals (e.g. cyclic search graphs).
    pub infeasible: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Sampled trace (empty unless `trace_every > 0`).
    pub trace: Vec<TracePoint>,
    /// Statistics of the warm-up phase (empty if no warm-up ran).
    pub warmup: OnlineStats,
}

impl RunResult {
    /// Short description of why the run stopped.
    pub fn stop_description(&self) -> &'static str {
        self.stop.describe()
    }
}

/// Runs simulated annealing on `problem` under `schedule`.
///
/// On return the problem is restored to the best solution found.
///
/// # Examples
///
/// ```
/// use rdse_anneal::{anneal, LamSchedule, RunOptions};
/// use rdse_anneal::problems::bipartition::Bipartition;
///
/// let mut p = Bipartition::two_cliques(6, 42);
/// let mut s = LamSchedule::new(1.0);
/// let result = anneal(&mut p, &mut s, &RunOptions {
///     max_iterations: 20_000,
///     warmup_iterations: 500,
///     seed: 1,
///     ..RunOptions::default()
/// });
/// assert_eq!(result.best_cost, 1.0); // single bridge edge cut
/// ```
pub fn anneal<P: Problem, S: Schedule>(
    problem: &mut P,
    schedule: &mut S,
    opts: &RunOptions,
) -> RunResult {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    schedule.reset();
    let controller = if opts.adaptive_moves {
        MoveClassController::new(problem.n_move_classes().max(1))
    } else {
        MoveClassController::uniform(problem.n_move_classes().max(1))
    };
    let mut controller = controller;

    let initial_cost = problem.cost();
    let mut cost = initial_cost;
    let mut best_cost = cost;
    let mut best_snapshot = problem.snapshot();
    let mut last_improvement: u64 = 0;

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut infeasible = 0u64;
    let mut warmup = OnlineStats::new();
    let mut trace = Vec::new();
    let mut stop = StopReason::IterationBudget;

    let mut s = 0.0_f64; // inverse temperature; 0 during warm-up
    let mut iter = 0u64;
    while iter < opts.max_iterations {
        if iter == opts.warmup_iterations && iter > 0 {
            schedule.begin(warmup.mean(), warmup.std_dev());
        }
        let in_warmup = iter < opts.warmup_iterations;

        let class = controller.pick(&mut rng);
        let outcome = match problem.try_move(&mut rng, class) {
            None => {
                infeasible += 1;
                controller.record(class, false, false);
                IterationOutcome {
                    cost,
                    accepted: false,
                    feasible: false,
                }
            }
            Some((mv, new_cost)) => {
                let delta = new_cost - cost;
                let accept = delta <= 0.0 || {
                    let s_eff = if in_warmup { 0.0 } else { s };
                    // s_eff == 0 means infinite temperature: accept all.
                    s_eff == 0.0 || rng.random::<f64>() < (-delta * s_eff).exp()
                };
                if accept {
                    cost = new_cost;
                    accepted += 1;
                    if cost < best_cost {
                        best_cost = cost;
                        best_snapshot = problem.snapshot();
                        last_improvement = iter;
                    }
                } else {
                    problem.undo(mv);
                    rejected += 1;
                }
                controller.record(class, true, accept);
                IterationOutcome {
                    cost,
                    accepted: accept,
                    feasible: true,
                }
            }
        };

        if in_warmup {
            warmup.update(cost);
        } else {
            s = schedule.update(outcome);
        }

        if opts.trace_every > 0 && iter.is_multiple_of(opts.trace_every) {
            trace.push(TracePoint {
                iteration: iter,
                cost,
                best_cost,
                inverse_temperature: if in_warmup { 0.0 } else { s },
                observables: problem.observables(),
            });
        }

        iter += 1;

        if let Some(target) = opts.target_cost {
            if best_cost <= target {
                stop = StopReason::TargetReached;
                break;
            }
        }
        if opts.freeze_window > 0
            && !in_warmup
            && iter - last_improvement > opts.freeze_window
            && schedule.acceptance().is_some_and(|a| a < 0.01)
        {
            stop = StopReason::Frozen;
            break;
        }
        if iter.is_multiple_of(256) {
            if let Some(budget) = opts.time_budget {
                if start.elapsed() >= budget {
                    stop = StopReason::TimeBudget;
                    break;
                }
            }
        }
    }

    problem.restore(&best_snapshot);
    RunResult {
        best_cost,
        initial_cost,
        iterations: iter,
        accepted,
        rejected,
        infeasible,
        stop,
        elapsed: start.elapsed(),
        trace,
        warmup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::bipartition::Bipartition;
    use crate::problems::continuous::Sphere;
    use crate::schedule::{GeometricSchedule, InfiniteTemperature, LamSchedule};

    fn quick_opts(iters: u64, seed: u64) -> RunOptions {
        RunOptions {
            max_iterations: iters,
            warmup_iterations: iters / 10,
            seed,
            ..RunOptions::default()
        }
    }

    #[test]
    fn respects_iteration_budget() {
        let mut p = Sphere::new(3, 1.0, 0);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(&mut p, &mut s, &quick_opts(100, 0));
        assert_eq!(r.iterations, 100);
        assert_eq!(r.stop, StopReason::IterationBudget);
        assert_eq!(r.accepted + r.rejected + r.infeasible, 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = Sphere::new(5, 3.0, 7);
            let mut s = LamSchedule::new(1.0);
            anneal(&mut p, &mut s, &quick_opts(5000, seed)).best_cost
        };
        assert_eq!(run(11), run(11));
        // Different seeds should (almost surely) differ.
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn best_cost_never_worse_than_initial() {
        let mut p = Bipartition::two_cliques(8, 3);
        let mut s = GeometricSchedule::new(10.0, 0.95, 20);
        let r = anneal(&mut p, &mut s, &quick_opts(2000, 5));
        assert!(r.best_cost <= r.initial_cost);
        // The problem was restored to the best solution.
        assert_eq!(p.cost(), r.best_cost);
    }

    #[test]
    fn infinite_temperature_does_not_converge() {
        // A random walk should end (on average) far from optimal; we
        // only check the engine runs and records a full trace.
        let mut p = Sphere::new(4, 10.0, 1);
        let mut s = InfiniteTemperature::new();
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 1000,
                trace_every: 100,
                seed: 2,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.trace.len(), 10);
        assert!(r.trace.iter().all(|t| t.inverse_temperature == 0.0));
    }

    #[test]
    fn target_cost_stops_early() {
        let mut p = Bipartition::two_cliques(6, 1);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 200_000,
                warmup_iterations: 100,
                target_cost: Some(1.0),
                seed: 4,
                ..RunOptions::default()
            },
        );
        assert_eq!(r.stop, StopReason::TargetReached);
        assert!(r.iterations < 200_000);
        assert_eq!(r.best_cost, 1.0);
    }

    #[test]
    fn warmup_statistics_are_collected() {
        let mut p = Sphere::new(3, 2.0, 9);
        let mut s = LamSchedule::new(1.0);
        let r = anneal(&mut p, &mut s, &quick_opts(1000, 3));
        assert_eq!(r.warmup.count(), 100);
        assert!(r.warmup.std_dev() >= 0.0);
    }

    #[test]
    fn trace_monotone_best() {
        let mut p = Bipartition::two_cliques(10, 2);
        let mut s = LamSchedule::new(0.5);
        let r = anneal(
            &mut p,
            &mut s,
            &RunOptions {
                max_iterations: 20_000,
                warmup_iterations: 1000,
                trace_every: 50,
                seed: 8,
                ..RunOptions::default()
            },
        );
        for w in r.trace.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
    }
}
