//! The event-driven simulator core.

use crate::event::{SimEvent, SimEventKind};
use rdse_mapping::{Mapping, MappingError, Placement};
use rdse_model::units::Micros;
use rdse_model::{Architecture, TaskGraph, TaskId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Model the shared bus as an exclusive FIFO resource. When
    /// `false`, transfers proceed in parallel — the paper's static
    /// ordered-transaction assumption — and the simulated makespan
    /// equals the analytic longest path.
    pub exclusive_bus: bool,
    /// Record the full event log in the report.
    pub record_events: bool,
}

impl SimConfig {
    /// Contention-free bus, no event log (fast validation mode).
    pub fn contention_free() -> Self {
        SimConfig {
            exclusive_bus: false,
            record_events: false,
        }
    }

    /// Exclusive FIFO bus with event log.
    pub fn with_contention() -> Self {
        SimConfig {
            exclusive_bus: true,
            record_events: true,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::contention_free()
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of the last task.
    pub makespan: Micros,
    /// Start time per task.
    pub starts: Vec<Micros>,
    /// End time per task.
    pub ends: Vec<Micros>,
    /// Total time the bus spent transferring.
    pub bus_busy: Micros,
    /// Number of bus transactions.
    pub n_transfers: usize,
    /// Total reconfiguration time across devices.
    pub reconfig_total: Micros,
    /// Event log (empty unless requested).
    pub events: Vec<SimEvent>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(clippy::enum_variant_names)] // the Done suffix is the point: completions wake the engine
enum Wake {
    TaskDone(TaskId),
    ReconfigDone { drlc: usize, context: usize },
    TransferDone { edge: usize },
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: f64,
    seq: u64,
    wake: Wake,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison: earliest time first, then
        // insertion order for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

struct ProcState {
    order: Vec<TaskId>,
    next: usize,
    executing: bool,
}

#[derive(PartialEq)]
enum DrlcPhase {
    Reconfiguring,
    Executing,
    Done,
}

struct DrlcState {
    phase: DrlcPhase,
    current: usize,
    remaining_in_current: usize,
}

struct Engine<'a> {
    app: &'a TaskGraph,
    arch: &'a Architecture,
    mapping: &'a Mapping,
    cfg: SimConfig,
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
    now: f64,
    missing_inputs: Vec<usize>,
    started: Vec<bool>,
    done: Vec<bool>,
    starts: Vec<f64>,
    ends: Vec<f64>,
    procs: Vec<ProcState>,
    drlcs: Vec<DrlcState>,
    bus_pending: Vec<usize>,
    bus_active: Option<usize>,
    bus_busy: f64,
    n_transfers: usize,
    reconfig_total: f64,
    n_done: usize,
    events: Vec<SimEvent>,
}

impl Engine<'_> {
    fn push(&mut self, time: f64, wake: Wake) {
        self.seq += 1;
        self.heap.push(HeapEntry {
            time,
            seq: self.seq,
            wake,
        });
    }

    fn log(&mut self, time: f64, kind: SimEventKind) {
        if self.cfg.record_events {
            self.events.push(SimEvent::new(Micros::new(time), kind));
        }
    }

    fn cross_device(&self, from: TaskId, to: TaskId) -> bool {
        !rdse_mapping::searchgraph::same_device(
            self.mapping.resource(from),
            self.mapping.resource(to),
        )
    }

    fn try_start(&mut self, task: TaskId) {
        if self.started[task.index()] || self.missing_inputs[task.index()] > 0 {
            return;
        }
        let can_start = match self.mapping.placement(task) {
            Placement::Software { processor } => {
                let p = &self.procs[processor];
                !p.executing && p.next < p.order.len() && p.order[p.next] == task
            }
            Placement::Hardware { drlc, context, .. } => {
                let d = &self.drlcs[drlc];
                d.phase == DrlcPhase::Executing && d.current == context
            }
            Placement::Asic { .. } => true,
        };
        if !can_start {
            return;
        }
        self.started[task.index()] = true;
        self.starts[task.index()] = self.now;
        if let Placement::Software { processor } = self.mapping.placement(task) {
            self.procs[processor].executing = true;
        }
        let exec = self.mapping.exec_time(self.app, task).value();
        self.log(self.now, SimEventKind::TaskStart(task));
        self.push(self.now + exec, Wake::TaskDone(task));
    }

    fn start_bus_transfer_if_idle(&mut self) {
        if self.bus_active.is_some() || self.bus_pending.is_empty() {
            return;
        }
        let edge = self.bus_pending.remove(0);
        self.bus_active = Some(edge);
        let e = &self.app.edges()[edge];
        let dur = self.arch.bus().transfer_time(e.bytes).value();
        self.bus_busy += dur;
        self.n_transfers += 1;
        self.log(
            self.now,
            SimEventKind::TransferStart {
                from: e.from,
                to: e.to,
            },
        );
        self.push(self.now + dur, Wake::TransferDone { edge });
    }

    fn request_transfer(&mut self, edge: usize) {
        if self.cfg.exclusive_bus {
            self.bus_pending.push(edge);
            self.start_bus_transfer_if_idle();
        } else {
            let e = &self.app.edges()[edge];
            let dur = self.arch.bus().transfer_time(e.bytes).value();
            self.bus_busy += dur;
            self.n_transfers += 1;
            self.log(
                self.now,
                SimEventKind::TransferStart {
                    from: e.from,
                    to: e.to,
                },
            );
            self.push(self.now + dur, Wake::TransferDone { edge });
        }
    }

    fn deliver(&mut self, to: TaskId) {
        self.missing_inputs[to.index()] -= 1;
        self.try_start(to);
    }

    fn start_reconfig(&mut self, drlc: usize, context: usize) {
        let clbs = self.mapping.context_clbs(self.app, drlc, context);
        let dur = self.arch.drlcs()[drlc].reconfiguration_time(clbs).value();
        self.reconfig_total += dur;
        self.drlcs[drlc].phase = DrlcPhase::Reconfiguring;
        self.drlcs[drlc].current = context;
        self.log(self.now, SimEventKind::ReconfigStart { drlc, context });
        self.push(self.now + dur, Wake::ReconfigDone { drlc, context });
    }

    fn on_task_done(&mut self, task: TaskId) {
        self.done[task.index()] = true;
        self.ends[task.index()] = self.now;
        self.n_done += 1;
        self.log(self.now, SimEventKind::TaskEnd(task));

        match self.mapping.placement(task) {
            Placement::Software { processor } => {
                self.procs[processor].executing = false;
                self.procs[processor].next += 1;
                if let Some(&next) = {
                    let p = &self.procs[processor];
                    p.order.get(p.next)
                } {
                    self.try_start(next);
                }
            }
            Placement::Hardware { drlc, .. } => {
                self.drlcs[drlc].remaining_in_current -= 1;
                if self.drlcs[drlc].remaining_in_current == 0 {
                    let next_ctx = self.drlcs[drlc].current + 1;
                    if next_ctx < self.mapping.contexts(drlc).len() {
                        self.drlcs[drlc].remaining_in_current =
                            self.mapping.contexts(drlc)[next_ctx].len();
                        self.start_reconfig(drlc, next_ctx);
                    } else {
                        self.drlcs[drlc].phase = DrlcPhase::Done;
                    }
                }
            }
            Placement::Asic { .. } => {}
        }

        // Deliver outputs: intra-device immediately, cross-device via
        // the bus.
        for (i, e) in self.app.edges().iter().enumerate() {
            if e.from != task {
                continue;
            }
            if self.cross_device(e.from, e.to) {
                self.request_transfer(i);
            } else {
                self.deliver(e.to);
            }
        }
    }

    fn on_reconfig_done(&mut self, drlc: usize, context: usize) {
        self.drlcs[drlc].phase = DrlcPhase::Executing;
        self.log(self.now, SimEventKind::ReconfigEnd { drlc, context });
        let tasks: Vec<TaskId> = self.mapping.contexts(drlc)[context].tasks().to_vec();
        for t in tasks {
            self.try_start(t);
        }
    }

    fn on_transfer_done(&mut self, edge: usize) {
        let e = self.app.edges()[edge];
        self.log(
            self.now,
            SimEventKind::TransferEnd {
                from: e.from,
                to: e.to,
            },
        );
        if self.cfg.exclusive_bus {
            self.bus_active = None;
            self.start_bus_transfer_if_idle();
        }
        self.deliver(e.to);
    }
}

/// Executes `mapping` on `arch` and reports the observed schedule.
///
/// # Errors
///
/// Returns the underlying [`MappingError`] if the mapping is invalid or
/// infeasible (validated up front with
/// [`rdse_mapping::evaluate`]), or
/// [`MappingError::Inconsistent`] if the simulation deadlocks — which
/// would indicate a bug, since feasible mappings cannot deadlock.
pub fn simulate(
    app: &TaskGraph,
    arch: &Architecture,
    mapping: &Mapping,
    cfg: &SimConfig,
) -> Result<SimReport, MappingError> {
    mapping.validate(app, arch)?;
    rdse_mapping::evaluate(app, arch, mapping)?;

    let n = app.n_tasks();
    let mut missing = vec![0usize; n];
    for e in app.edges() {
        missing[e.to.index()] += 1;
    }
    let procs: Vec<ProcState> = (0..arch.processors().len())
        .map(|p| ProcState {
            order: mapping.proc_order(p).to_vec(),
            next: 0,
            executing: false,
        })
        .collect();
    let drlcs: Vec<DrlcState> = (0..arch.drlcs().len())
        .map(|_| DrlcState {
            phase: DrlcPhase::Done,
            current: 0,
            remaining_in_current: 0,
        })
        .collect();

    let mut engine = Engine {
        app,
        arch,
        mapping,
        cfg: *cfg,
        heap: BinaryHeap::new(),
        seq: 0,
        now: 0.0,
        missing_inputs: missing,
        started: vec![false; n],
        done: vec![false; n],
        starts: vec![0.0; n],
        ends: vec![0.0; n],
        procs,
        drlcs,
        bus_pending: Vec::new(),
        bus_active: None,
        bus_busy: 0.0,
        n_transfers: 0,
        reconfig_total: 0.0,
        n_done: 0,
        events: Vec::new(),
    };

    // Kick-off: first context of each device starts configuring at t=0;
    // ASIC and eligible software tasks may start immediately.
    for d in 0..arch.drlcs().len() {
        if !mapping.contexts(d).is_empty() {
            engine.drlcs[d].remaining_in_current = mapping.contexts(d)[0].len();
            engine.start_reconfig(d, 0);
        }
    }
    for p in 0..engine.procs.len() {
        if let Some(&first) = engine.procs[p].order.first() {
            engine.try_start(first);
        }
    }
    for t in app.task_ids() {
        if matches!(mapping.placement(t), Placement::Asic { .. }) {
            engine.try_start(t);
        }
    }

    while let Some(entry) = engine.heap.pop() {
        engine.now = entry.time;
        match entry.wake {
            Wake::TaskDone(t) => engine.on_task_done(t),
            Wake::ReconfigDone { drlc, context } => engine.on_reconfig_done(drlc, context),
            Wake::TransferDone { edge } => engine.on_transfer_done(edge),
        }
    }

    if engine.n_done != n {
        return Err(MappingError::Inconsistent(format!(
            "simulation deadlock: {} of {} tasks completed",
            engine.n_done, n
        )));
    }

    let makespan = engine.ends.iter().copied().fold(0.0, f64::max);
    Ok(SimReport {
        makespan: Micros::new(makespan),
        starts: engine.starts.into_iter().map(Micros::new).collect(),
        ends: engine.ends.into_iter().map(Micros::new).collect(),
        bus_busy: Micros::new(engine.bus_busy),
        n_transfers: engine.n_transfers,
        reconfig_total: Micros::new(engine.reconfig_total),
        events: engine.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdse_mapping::{evaluate, explore, random_initial, ExploreOptions};
    use rdse_workloads::{epicure_architecture, motion_detection_app};

    #[test]
    fn contention_free_matches_analytic_on_random_mappings() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1500);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let m = random_initial(&app, &arch, &mut rng);
            let analytic = evaluate(&app, &arch, &m).unwrap();
            let sim = simulate(&app, &arch, &m, &SimConfig::contention_free()).unwrap();
            assert!(
                (sim.makespan.value() - analytic.makespan.value()).abs() < 1e-6,
                "sim {} vs analytic {}",
                sim.makespan,
                analytic.makespan
            );
        }
    }

    #[test]
    fn per_task_times_match_analytic() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let mut rng = StdRng::seed_from_u64(7);
        let m = random_initial(&app, &arch, &mut rng);
        let analytic = evaluate(&app, &arch, &m).unwrap();
        let sim = simulate(&app, &arch, &m, &SimConfig::contention_free()).unwrap();
        for t in app.task_ids() {
            assert!(
                (sim.ends[t.index()].value() - analytic.completions[t.index()].value()).abs()
                    < 1e-6,
                "task {t}: sim end {} vs analytic {}",
                sim.ends[t.index()],
                analytic.completions[t.index()]
            );
        }
    }

    #[test]
    fn exclusive_bus_never_beats_contention_free() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1000);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let m = random_initial(&app, &arch, &mut rng);
            let free = simulate(&app, &arch, &m, &SimConfig::contention_free()).unwrap();
            let excl = simulate(&app, &arch, &m, &SimConfig::with_contention()).unwrap();
            assert!(
                excl.makespan.value() >= free.makespan.value() - 1e-6,
                "contention made things faster?!"
            );
            assert_eq!(excl.n_transfers, free.n_transfers);
        }
    }

    #[test]
    fn optimized_solution_validates_under_contention() {
        let app = motion_detection_app();
        let arch = epicure_architecture(2000);
        let out = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 3000,
                warmup_iterations: 600,
                seed: 1,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let excl = simulate(&app, &arch, &out.mapping, &SimConfig::with_contention()).unwrap();
        // The static estimate ignores contention; the dynamic check
        // should stay close (ordered transactions rarely collide on
        // this workload).
        let slack = excl.makespan.value() / out.evaluation.makespan.value();
        assert!(
            (1.0..1.25).contains(&slack),
            "contention inflated makespan by {slack}"
        );
    }

    #[test]
    fn event_log_is_causally_ordered() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1500);
        let mut rng = StdRng::seed_from_u64(11);
        let m = random_initial(&app, &arch, &mut rng);
        let sim = simulate(&app, &arch, &m, &SimConfig::with_contention()).unwrap();
        assert!(!sim.events.is_empty());
        for w in sim.events.windows(2) {
            assert!(w[0].time <= w[1].time, "events out of order");
        }
        // Every task start has a matching end at a later-or-equal time.
        for t in app.task_ids() {
            assert!(sim.starts[t.index()] <= sim.ends[t.index()]);
        }
    }

    #[test]
    fn reconfig_total_matches_mapping() {
        let app = motion_detection_app();
        let arch = epicure_architecture(1500);
        let mut rng = StdRng::seed_from_u64(5);
        let m = random_initial(&app, &arch, &mut rng);
        let sim = simulate(&app, &arch, &m, &SimConfig::contention_free()).unwrap();
        let expected = arch.drlcs()[0]
            .reconfiguration_time(m.total_configured_clbs(&app))
            .value();
        assert!((sim.reconfig_total.value() - expected).abs() < 1e-6);
    }

    #[test]
    fn simulation_is_deterministic() {
        let app = motion_detection_app();
        let arch = epicure_architecture(800);
        let mut rng = StdRng::seed_from_u64(9);
        let m = random_initial(&app, &arch, &mut rng);
        let a = simulate(&app, &arch, &m, &SimConfig::with_contention()).unwrap();
        let b = simulate(&app, &arch, &m, &SimConfig::with_contention()).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
    }
}
