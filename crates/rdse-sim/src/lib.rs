//! Discrete-event execution of mapped solutions.
//!
//! The paper evaluates candidate solutions *statically* (longest path
//! of the search graph with communication latencies "statically
//! evaluated as ordered transactions", §3.2). This crate provides the
//! dynamic counterpart the original authors ran on their testbed: an
//! event-driven simulator that executes a [`Mapping`](rdse_mapping::Mapping) cycle-accurately
//! at the task level —
//!
//! * each processor runs its tasks sequentially in the imposed total
//!   order, a task starting only when its input data has arrived;
//! * each reconfigurable device runs its contexts in order, paying
//!   `tR·nCLB` of reconfiguration between contexts (and before the
//!   first), tasks inside a context executing with maximal parallelism;
//! * cross-device data transfers occupy the shared bus, which can be
//!   simulated as an exclusive FIFO resource (contention modelled) or
//!   as contention-free (the paper's static assumption).
//!
//! In contention-free mode the simulated makespan provably equals the
//! analytic longest path; with an exclusive bus it can only be larger.
//! Both properties are exercised by this crate's tests, which is the
//! point: the simulator validates the evaluator.
//!
//! # Examples
//!
//! ```
//! use rdse_sim::{simulate, SimConfig};
//! use rdse_mapping::{evaluate, random_initial};
//! use rdse_workloads::{epicure_architecture, motion_detection_app};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = motion_detection_app();
//! let arch = epicure_architecture(2000);
//! let mut rng = StdRng::seed_from_u64(1);
//! let mapping = random_initial(&app, &arch, &mut rng);
//!
//! let analytic = evaluate(&app, &arch, &mapping)?;
//! let report = simulate(&app, &arch, &mapping, &SimConfig::contention_free())?;
//! assert!((report.makespan.value() - analytic.makespan.value()).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod des;
pub mod event;

pub use des::{simulate, SimConfig, SimReport};
pub use event::{SimEvent, SimEventKind};
