//! Event records produced by the simulator.

use rdse_model::units::Micros;
use rdse_model::TaskId;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEventKind {
    /// A task started executing on its resource.
    TaskStart(TaskId),
    /// A task finished.
    TaskEnd(TaskId),
    /// A context reconfiguration started on a device.
    ReconfigStart {
        /// DRLC index.
        drlc: usize,
        /// Context being loaded.
        context: usize,
    },
    /// A context reconfiguration finished.
    ReconfigEnd {
        /// DRLC index.
        drlc: usize,
        /// Context now resident.
        context: usize,
    },
    /// A bus transfer started.
    TransferStart {
        /// Producer task.
        from: TaskId,
        /// Consumer task.
        to: TaskId,
    },
    /// A bus transfer finished.
    TransferEnd {
        /// Producer task.
        from: TaskId,
        /// Consumer task.
        to: TaskId,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEvent {
    /// Simulation time of the event.
    pub time: Micros,
    /// The event itself.
    pub kind: SimEventKind,
}

impl SimEvent {
    /// Creates an event.
    pub fn new(time: Micros, kind: SimEventKind) -> Self {
        SimEvent { time, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let e = SimEvent::new(Micros::new(3.0), SimEventKind::TaskStart(TaskId(1)));
        assert_eq!(e.time, Micros::new(3.0));
        assert_eq!(e.kind, SimEventKind::TaskStart(TaskId(1)));
        assert_ne!(
            e,
            SimEvent::new(Micros::new(3.0), SimEventKind::TaskEnd(TaskId(1)))
        );
    }
}
