//! Property tests over *random scenarios*: strategies generate random
//! heterogeneous architectures and random feasible mappings, and the
//! simulator's two bus models must order themselves correctly on every
//! one — an exclusive FIFO bus can only delay transfers, so
//! `simulate(with_contention).makespan >= simulate(contention_free).makespan`,
//! while the contention-free run must coincide with the analytic
//! longest path bit for bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_mapping::{evaluate, random_initial, Mapping};
use rdse_model::units::{Bytes, Clbs, Micros};
use rdse_model::{Architecture, HwImpl, TaskGraph, TaskId};
use rdse_sim::{simulate, SimConfig};

/// Strategy for random heterogeneous architectures: 1–2 processors,
/// 1–2 reconfigurable devices with independent capacities and `tR`,
/// an optional ASIC, and a bus rate spanning starved to ample.
fn arch_strategy() -> impl Strategy<Value = Architecture> {
    (
        1usize..=2,    // processors
        1usize..=2,    // DRLCs
        150u32..900,   // CLB capacity of the first device
        0.5f64..30.0,  // tR (µs per CLB)
        5.0f64..100.0, // bus rate (bytes/µs)
        proptest::bool::weighted(0.3),
    )
        .prop_map(|(procs, drlcs, clbs, tr, bus, asic)| {
            let mut b = Architecture::builder("prop-arch");
            for p in 0..procs {
                b = b.processor(format!("cpu{p}"), 1.0);
            }
            for d in 0..drlcs {
                // The second device is smaller and reconfigures faster.
                let scale = (d as u32) + 1;
                b = b.drlc(
                    format!("fpga{d}"),
                    Clbs::new((clbs / scale).max(100)),
                    Micros::new(tr / scale as f64),
                    1.0,
                );
            }
            if asic {
                b = b.asic("accel", 1.0);
            }
            b.bus_rate(bus).build().expect("recipe is always valid")
        })
}

/// Builds a random DAG application from a compact recipe.
fn build_app(n_tasks: usize, density: u8, seed: u64) -> TaskGraph {
    let mut app = TaskGraph::new("prop-app");
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n_tasks {
        let n_impls = rng.random_range(0..4usize);
        let impls = (0..n_impls)
            .map(|_| {
                HwImpl::new(
                    Clbs::new(rng.random_range(20..200)),
                    Micros::new(rng.random_range(1.0..50.0)),
                )
            })
            .collect();
        app.add_task(
            format!("t{i}"),
            "F",
            Micros::new(rng.random_range(10.0..500.0)),
            impls,
        )
        .expect("valid task");
    }
    for a in 0..n_tasks {
        for b in (a + 1)..n_tasks {
            if rng.random_range(0..100) < density as u32 {
                app.add_data_edge(
                    TaskId(a as u32),
                    TaskId(b as u32),
                    Bytes::new(rng.random_range(1..5000)),
                )
                .expect("valid edge");
            }
        }
    }
    app
}

/// Strategy for complete random scenarios: application × architecture
/// × a feasible random mapping (the paper's random initial solution).
fn scenario_strategy() -> impl Strategy<Value = (TaskGraph, Architecture, Mapping)> {
    (3usize..14, 5u8..40, 0u64..1_000_000, arch_strategy()).prop_map(
        |(n_tasks, density, seed, arch)| {
            let app = build_app(n_tasks, density, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x51u64);
            let mapping = random_initial(&app, &arch, &mut rng);
            (app, arch, mapping)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn contention_never_beats_contention_free(
        scenario in scenario_strategy(),
    ) {
        let (app, arch, mapping) = scenario;
        let free = simulate(&app, &arch, &mapping, &SimConfig::contention_free())
            .expect("random initial solutions are feasible");
        let contended = simulate(&app, &arch, &mapping, &SimConfig::with_contention())
            .expect("random initial solutions are feasible");
        prop_assert!(
            contended.makespan.value() >= free.makespan.value() - 1e-6,
            "exclusive bus beat contention-free: {} < {}",
            contended.makespan,
            free.makespan
        );
        // Same transfers happen either way; contention only reorders them.
        prop_assert_eq!(contended.n_transfers, free.n_transfers);
        prop_assert!(contended.bus_busy.value() >= free.bus_busy.value() - 1e-6);
    }

    #[test]
    fn contention_free_makespan_is_the_analytic_longest_path(
        scenario in scenario_strategy(),
    ) {
        let (app, arch, mapping) = scenario;
        let analytic = evaluate(&app, &arch, &mapping).expect("feasible");
        let des = simulate(&app, &arch, &mapping, &SimConfig::contention_free())
            .expect("feasible");
        prop_assert_eq!(
            des.makespan.value().to_bits(),
            analytic.makespan.value().to_bits(),
            "DES {} vs analytic {}",
            des.makespan,
            analytic.makespan
        );
    }

    #[test]
    fn several_mappings_per_architecture_keep_the_ordering(
        n_tasks in 4usize..12,
        density in 5u8..35,
        seed in 0u64..1_000_000,
        arch in arch_strategy(),
    ) {
        // Re-draws multiple mappings on one platform: the bus-model
        // ordering is a property of the simulator, not of one lucky
        // initial solution.
        let app = build_app(n_tasks, density, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB05);
        for _ in 0..6 {
            let m = random_initial(&app, &arch, &mut rng);
            let free = simulate(&app, &arch, &m, &SimConfig::contention_free())
                .expect("feasible");
            let contended = simulate(&app, &arch, &m, &SimConfig::with_contention())
                .expect("feasible");
            prop_assert!(contended.makespan.value() >= free.makespan.value() - 1e-6);
        }
    }
}
