//! The application model of §3.1: an acyclic precedence graph of
//! coarse-grain tasks with per-resource execution estimates.

use crate::error::ModelError;
use crate::units::{Bytes, Clbs, Micros};
use rdse_graph::{Digraph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task inside a [`TaskGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task index as `usize`, for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The corresponding node in the underlying precedence graph.
    pub fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<NodeId> for TaskId {
    fn from(value: NodeId) -> Self {
        TaskId(value.0)
    }
}

/// One synthesized hardware implementation of a task: an (area, time)
/// point of the function's Pareto front (§5 mentions 5–6 per function).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwImpl {
    clbs: Clbs,
    time: Micros,
}

impl HwImpl {
    /// Creates an implementation occupying `clbs` and executing in
    /// `time`.
    pub fn new(clbs: Clbs, time: Micros) -> Self {
        HwImpl { clbs, time }
    }

    /// Area occupied on the reconfigurable device.
    pub fn clbs(&self) -> Clbs {
        self.clbs
    }

    /// Hardware execution time.
    pub fn time(&self) -> Micros {
        self.time
    }

    /// `true` if `self` is dominated by `other` (other is no worse in
    /// both dimensions and strictly better in one).
    pub fn is_dominated_by(&self, other: &HwImpl) -> bool {
        let no_worse = other.clbs <= self.clbs && other.time <= self.time;
        let better = other.clbs < self.clbs || other.time < self.time;
        no_worse && better
    }
}

/// A coarse-grain task (node of the precedence graph).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    functionality: String,
    sw_time: Micros,
    hw_impls: Vec<HwImpl>,
}

impl Task {
    /// Task name (unique within a graph by convention, not enforced).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Functionality label (FFT, DCT, FIR filter, ...).
    pub fn functionality(&self) -> &str {
        &self.functionality
    }

    /// Estimated execution time on the programmable processor.
    pub fn sw_time(&self) -> Micros {
        self.sw_time
    }

    /// The available hardware implementations (possibly empty for
    /// software-only tasks).
    pub fn hw_impls(&self) -> &[HwImpl] {
        &self.hw_impls
    }

    /// `true` if the task can be mapped to reconfigurable hardware.
    pub fn is_hw_capable(&self) -> bool {
        !self.hw_impls.is_empty()
    }

    /// The fastest hardware implementation, if any.
    pub fn fastest_hw(&self) -> Option<&HwImpl> {
        self.hw_impls
            .iter()
            .min_by(|a, b| a.time.partial_cmp(&b.time).expect("times are finite"))
    }

    /// The smallest hardware implementation, if any.
    pub fn smallest_hw(&self) -> Option<&HwImpl> {
        self.hw_impls.iter().min_by_key(|i| i.clbs)
    }
}

/// A data edge of the precedence graph: `from` produces `bytes`
/// consumed by `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEdge {
    /// Producer task.
    pub from: TaskId,
    /// Consumer task.
    pub to: TaskId,
    /// Amount of data transferred.
    pub bytes: Bytes,
}

/// The application: an acyclic precedence graph of [`Task`]s.
///
/// See the [crate-level example](crate) for typical construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<DataEdge>,
}

impl TaskGraph {
    /// Creates an empty application named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a task and returns its id.
    ///
    /// Dominated hardware implementations are dropped so the stored set
    /// is a Pareto front, matching the EPICURE estimate sets.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyName`] for an empty name,
    /// [`ModelError::InvalidTime`] for a negative/NaN estimate, or
    /// [`ModelError::EmptyImplementation`] for a zero-CLB
    /// implementation.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        functionality: impl Into<String>,
        sw_time: Micros,
        hw_impls: Vec<HwImpl>,
    ) -> Result<TaskId, ModelError> {
        let id = TaskId(self.tasks.len() as u32);
        let name = name.into();
        if name.is_empty() {
            return Err(ModelError::EmptyName);
        }
        if !sw_time.is_valid() {
            return Err(ModelError::InvalidTime {
                task: id,
                what: "software time",
            });
        }
        for imp in &hw_impls {
            if !imp.time().is_valid() {
                return Err(ModelError::InvalidTime {
                    task: id,
                    what: "hardware time",
                });
            }
            if imp.clbs() == Clbs::ZERO {
                return Err(ModelError::EmptyImplementation(id));
            }
        }
        let mut front: Vec<HwImpl> = Vec::with_capacity(hw_impls.len());
        for imp in hw_impls {
            if front.iter().any(|f| imp.is_dominated_by(f)) {
                continue;
            }
            front.retain(|f| !f.is_dominated_by(&imp));
            front.push(imp);
        }
        front.sort_by_key(|i| i.clbs());
        self.tasks.push(Task {
            name,
            functionality: functionality.into(),
            sw_time,
            hw_impls: front,
        });
        Ok(id)
    }

    /// Adds a precedence/data edge.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] for invalid endpoints,
    /// [`ModelError::SelfEdge`] when `from == to`, and
    /// [`ModelError::DuplicateEdge`] if the pair is already connected.
    pub fn add_data_edge(
        &mut self,
        from: TaskId,
        to: TaskId,
        bytes: Bytes,
    ) -> Result<(), ModelError> {
        for t in [from, to] {
            if t.index() >= self.tasks.len() {
                return Err(ModelError::UnknownTask(t));
            }
        }
        if from == to {
            return Err(ModelError::SelfEdge(from));
        }
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return Err(ModelError::DuplicateEdge(from, to));
        }
        self.edges.push(DataEdge { from, to, bytes });
        Ok(())
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Accesses a task.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Iterates over `(id, task)` pairs.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// The data edges.
    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// All task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Builds the underlying precedence [`Digraph`] (edge weights are
    /// the transferred byte counts as `f64`).
    pub fn precedence_graph(&self) -> Digraph {
        let mut g = Digraph::new(self.tasks.len());
        for e in &self.edges {
            g.add_edge(e.from.node(), e.to.node(), e.bytes.value() as f64)
                .expect("edges were validated on insertion");
        }
        g
    }

    /// Checks global invariants: the precedence graph must be acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicPrecedence`] when a cycle exists.
    pub fn validate(&self) -> Result<(), ModelError> {
        match rdse_graph::topo_sort(&self.precedence_graph()) {
            Ok(_) => Ok(()),
            Err(rdse_graph::GraphError::Cycle { on_cycle }) => Err(ModelError::CyclicPrecedence {
                on_cycle: on_cycle.into(),
            }),
            Err(_) => unreachable!("topo_sort only fails with Cycle"),
        }
    }

    /// Sum of software times over all tasks — the all-software makespan
    /// on a single processor (76.4 ms for the paper's benchmark).
    pub fn total_sw_time(&self) -> Micros {
        self.tasks.iter().map(|t| t.sw_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    #[test]
    fn build_simple_graph() {
        let mut g = TaskGraph::new("app");
        let a = g
            .add_task(
                "a",
                "FFT",
                us(10.0),
                vec![HwImpl::new(Clbs::new(50), us(2.0))],
            )
            .unwrap();
        let b = g.add_task("b", "DCT", us(20.0), vec![]).unwrap();
        g.add_data_edge(a, b, Bytes::new(128)).unwrap();
        assert_eq!(g.n_tasks(), 2);
        assert!(g.task(a).unwrap().is_hw_capable());
        assert!(!g.task(b).unwrap().is_hw_capable());
        assert_eq!(g.total_sw_time(), us(30.0));
        g.validate().unwrap();
    }

    #[test]
    fn pareto_filtering_drops_dominated_points() {
        let mut g = TaskGraph::new("app");
        let a = g
            .add_task(
                "a",
                "FIR",
                us(100.0),
                vec![
                    HwImpl::new(Clbs::new(100), us(10.0)),
                    HwImpl::new(Clbs::new(200), us(10.0)), // dominated: same time, more area
                    HwImpl::new(Clbs::new(200), us(5.0)),
                    HwImpl::new(Clbs::new(50), us(20.0)),
                ],
            )
            .unwrap();
        let impls = g.task(a).unwrap().hw_impls();
        assert_eq!(impls.len(), 3);
        // Sorted by area, dominated point gone.
        assert_eq!(impls[0].clbs(), Clbs::new(50));
        assert_eq!(impls[2].clbs(), Clbs::new(200));
        assert_eq!(impls[2].time(), us(5.0));
    }

    #[test]
    fn fastest_and_smallest() {
        let mut g = TaskGraph::new("app");
        let a = g
            .add_task(
                "a",
                "DCT",
                us(100.0),
                vec![
                    HwImpl::new(Clbs::new(100), us(10.0)),
                    HwImpl::new(Clbs::new(300), us(3.0)),
                ],
            )
            .unwrap();
        let t = g.task(a).unwrap();
        assert_eq!(t.fastest_hw().unwrap().time(), us(3.0));
        assert_eq!(t.smallest_hw().unwrap().clbs(), Clbs::new(100));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut g = TaskGraph::new("app");
        assert_eq!(
            g.add_task("", "F", us(1.0), vec![]),
            Err(ModelError::EmptyName)
        );
        assert!(matches!(
            g.add_task("x", "F", us(-1.0), vec![]),
            Err(ModelError::InvalidTime { .. })
        ));
        assert!(matches!(
            g.add_task("x", "F", us(1.0), vec![HwImpl::new(Clbs::ZERO, us(1.0))]),
            Err(ModelError::EmptyImplementation(_))
        ));
        let a = g.add_task("a", "F", us(1.0), vec![]).unwrap();
        assert_eq!(
            g.add_data_edge(a, a, Bytes::ZERO),
            Err(ModelError::SelfEdge(a))
        );
        assert_eq!(
            g.add_data_edge(a, TaskId(9), Bytes::ZERO),
            Err(ModelError::UnknownTask(TaskId(9)))
        );
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = TaskGraph::new("app");
        let a = g.add_task("a", "F", us(1.0), vec![]).unwrap();
        let b = g.add_task("b", "F", us(1.0), vec![]).unwrap();
        g.add_data_edge(a, b, Bytes::new(1)).unwrap();
        assert_eq!(
            g.add_data_edge(a, b, Bytes::new(2)),
            Err(ModelError::DuplicateEdge(a, b))
        );
        // The reverse direction creates a cycle, caught by validate.
        g.add_data_edge(b, a, Bytes::new(1)).unwrap();
        assert!(matches!(
            g.validate(),
            Err(ModelError::CyclicPrecedence { .. })
        ));
    }

    #[test]
    fn precedence_graph_mirrors_edges() {
        let mut g = TaskGraph::new("app");
        let a = g.add_task("a", "F", us(1.0), vec![]).unwrap();
        let b = g.add_task("b", "F", us(1.0), vec![]).unwrap();
        g.add_data_edge(a, b, Bytes::new(77)).unwrap();
        let pg = g.precedence_graph();
        assert_eq!(pg.n_edges(), 1);
        assert_eq!(pg.edge_weight(a.node(), b.node()), Some(77.0));
    }
}
