//! The architecture model of §3.2.
//!
//! The paper's method "is not restricted to a particular target
//! architecture since it can explore the types and numbers of
//! programmable and dedicated computing resources"; the experiments fix
//! one processor plus one partially reconfigurable FPGA communicating
//! through a shared memory on a bus. [`Architecture`] captures the
//! general inventory; per-component `cost` fields support the
//! cost-minimization objective of the general method.

use crate::error::ModelError;
use crate::units::{Bytes, Clbs, Micros};
use serde::{Deserialize, Serialize};

/// A programmable processor (e.g. the ARM922 of the benchmark).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSpec {
    name: String,
    cost: f64,
}

impl ProcessorSpec {
    /// Creates a processor spec.
    pub fn new(name: impl Into<String>, cost: f64) -> Self {
        ProcessorSpec {
            name: name.into(),
            cost,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Component cost (arbitrary units, used by architecture
    /// exploration).
    pub fn cost(&self) -> f64 {
        self.cost
    }
}

/// A dynamically reconfigurable logic circuit (DRLC / FPGA).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrlcSpec {
    name: String,
    n_clbs: Clbs,
    reconfig_time_per_clb: Micros,
    cost: f64,
}

impl DrlcSpec {
    /// Creates a DRLC with total capacity `n_clbs` and partial
    /// reconfiguration time `reconfig_time_per_clb` (`tR` in the paper;
    /// 22.5 µs/CLB for the Virtex-E benchmark).
    pub fn new(
        name: impl Into<String>,
        n_clbs: Clbs,
        reconfig_time_per_clb: Micros,
        cost: f64,
    ) -> Self {
        DrlcSpec {
            name: name.into(),
            n_clbs,
            reconfig_time_per_clb,
            cost,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total CLB capacity (`NCLB`).
    pub fn n_clbs(&self) -> Clbs {
        self.n_clbs
    }

    /// Reconfiguration time per CLB (`tR`).
    pub fn reconfig_time_per_clb(&self) -> Micros {
        self.reconfig_time_per_clb
    }

    /// Component cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Time to (re)configure a context using `clbs` CLBs:
    /// `tR × nCLB` — the weight of a context sequentialization edge.
    pub fn reconfiguration_time(&self, clbs: Clbs) -> Micros {
        self.reconfig_time_per_clb * clbs.value() as f64
    }
}

/// A dedicated circuit: tasks assigned to it execute with maximal
/// parallelism and no reconfiguration (the partial-order extreme of the
/// paper's resource taxonomy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsicSpec {
    name: String,
    cost: f64,
}

impl AsicSpec {
    /// Creates an ASIC spec.
    pub fn new(name: impl Into<String>, cost: f64) -> Self {
        AsicSpec {
            name: name.into(),
            cost,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Component cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }
}

/// The shared communication medium: processor and RC exchange data
/// through a shared memory over this bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusSpec {
    bytes_per_micro: f64,
}

impl BusSpec {
    /// Creates a bus with transfer rate `bytes_per_micro` (the `D` of
    /// the paper, in bytes per microsecond).
    pub fn new(bytes_per_micro: f64) -> Self {
        BusSpec { bytes_per_micro }
    }

    /// Transfer rate in bytes/µs.
    pub fn bytes_per_micro(&self) -> f64 {
        self.bytes_per_micro
    }

    /// Transfer time of `bytes` over the bus: `tij = qij / D`.
    pub fn transfer_time(&self, bytes: Bytes) -> Micros {
        Micros::new(bytes.value() as f64 / self.bytes_per_micro)
    }
}

/// The complete target architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    name: String,
    processors: Vec<ProcessorSpec>,
    drlcs: Vec<DrlcSpec>,
    asics: Vec<AsicSpec>,
    bus: BusSpec,
}

impl Architecture {
    /// Starts building an architecture named `name`.
    pub fn builder(name: impl Into<String>) -> ArchitectureBuilder {
        ArchitectureBuilder {
            name: name.into(),
            processors: Vec::new(),
            drlcs: Vec::new(),
            asics: Vec::new(),
            bus: BusSpec::new(100.0),
        }
    }

    /// Architecture name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The programmable processors.
    pub fn processors(&self) -> &[ProcessorSpec] {
        &self.processors
    }

    /// The reconfigurable devices.
    pub fn drlcs(&self) -> &[DrlcSpec] {
        &self.drlcs
    }

    /// The dedicated circuits.
    pub fn asics(&self) -> &[AsicSpec] {
        &self.asics
    }

    /// The shared bus.
    pub fn bus(&self) -> BusSpec {
        self.bus
    }

    /// Total component cost (objective of the general method when the
    /// architecture itself is explored).
    pub fn total_cost(&self) -> f64 {
        self.processors.iter().map(ProcessorSpec::cost).sum::<f64>()
            + self.drlcs.iter().map(DrlcSpec::cost).sum::<f64>()
            + self.asics.iter().map(AsicSpec::cost).sum::<f64>()
    }
}

/// Builder for [`Architecture`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct ArchitectureBuilder {
    name: String,
    processors: Vec<ProcessorSpec>,
    drlcs: Vec<DrlcSpec>,
    asics: Vec<AsicSpec>,
    bus: BusSpec,
}

impl ArchitectureBuilder {
    /// Adds a programmable processor.
    pub fn processor(mut self, name: impl Into<String>, cost: f64) -> Self {
        self.processors.push(ProcessorSpec::new(name, cost));
        self
    }

    /// Adds a reconfigurable device.
    pub fn drlc(
        mut self,
        name: impl Into<String>,
        n_clbs: Clbs,
        reconfig_time_per_clb: Micros,
        cost: f64,
    ) -> Self {
        self.drlcs
            .push(DrlcSpec::new(name, n_clbs, reconfig_time_per_clb, cost));
        self
    }

    /// Adds a dedicated circuit.
    pub fn asic(mut self, name: impl Into<String>, cost: f64) -> Self {
        self.asics.push(AsicSpec::new(name, cost));
        self
    }

    /// Sets the shared-bus transfer rate in bytes/µs.
    pub fn bus_rate(mut self, bytes_per_micro: f64) -> Self {
        self.bus = BusSpec::new(bytes_per_micro);
        self
    }

    /// Finalizes the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoResources`] if no computing resource was
    /// added, [`ModelError::ZeroCapacityDrlc`] for an empty FPGA, and
    /// [`ModelError::InvalidBusRate`] for a non-positive bus rate.
    pub fn build(self) -> Result<Architecture, ModelError> {
        if self.processors.is_empty() && self.drlcs.is_empty() && self.asics.is_empty() {
            return Err(ModelError::NoResources);
        }
        if let Some(d) = self.drlcs.iter().find(|d| d.n_clbs() == Clbs::ZERO) {
            return Err(ModelError::ZeroCapacityDrlc {
                name: d.name().to_owned(),
            });
        }
        if self.bus.bytes_per_micro() <= 0.0 || !self.bus.bytes_per_micro().is_finite() {
            return Err(ModelError::InvalidBusRate(self.bus.bytes_per_micro()));
        }
        Ok(Architecture {
            name: self.name,
            processors: self.processors,
            drlcs: self.drlcs,
            asics: self.asics,
            bus: self.bus,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_arch() -> Architecture {
        Architecture::builder("epicure")
            .processor("arm922", 10.0)
            .drlc("virtex-e", Clbs::new(2000), Micros::new(22.5), 25.0)
            .bus_rate(100.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_inventory() {
        let a = reference_arch();
        assert_eq!(a.processors().len(), 1);
        assert_eq!(a.drlcs().len(), 1);
        assert!(a.asics().is_empty());
        assert_eq!(a.total_cost(), 35.0);
        assert_eq!(a.name(), "epicure");
    }

    #[test]
    fn reconfiguration_time_scales_with_clbs() {
        let a = reference_arch();
        let d = &a.drlcs()[0];
        assert_eq!(
            d.reconfiguration_time(Clbs::new(1000)),
            Micros::new(22_500.0)
        );
        assert_eq!(d.reconfiguration_time(Clbs::ZERO), Micros::ZERO);
    }

    #[test]
    fn bus_transfer_time() {
        let bus = BusSpec::new(50.0);
        assert_eq!(bus.transfer_time(Bytes::new(5000)), Micros::new(100.0));
        assert_eq!(bus.transfer_time(Bytes::ZERO), Micros::ZERO);
    }

    #[test]
    fn empty_architecture_rejected() {
        assert_eq!(
            Architecture::builder("x").build().unwrap_err(),
            ModelError::NoResources
        );
    }

    #[test]
    fn zero_capacity_drlc_rejected() {
        let err = Architecture::builder("x")
            .drlc("d", Clbs::ZERO, Micros::new(1.0), 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::ZeroCapacityDrlc { .. }));
    }

    #[test]
    fn bad_bus_rate_rejected() {
        let err = Architecture::builder("x")
            .processor("p", 1.0)
            .bus_rate(0.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::InvalidBusRate(0.0));
    }

    #[test]
    fn asic_only_architecture_is_legal() {
        let a = Architecture::builder("hw")
            .asic("accel", 5.0)
            .build()
            .unwrap();
        assert_eq!(a.asics().len(), 1);
    }
}
