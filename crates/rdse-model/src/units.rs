//! Unit newtypes: microseconds, CLB counts, byte counts.
//!
//! The paper mixes quantities of very different scales (22.5 µs per CLB
//! reconfiguration vs. a 40 000 µs frame deadline); newtypes keep them
//! apart at compile time (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration in microseconds.
///
/// # Examples
///
/// ```
/// use rdse_model::units::Micros;
///
/// let t = Micros::new(1500.0) + Micros::new(500.0);
/// assert_eq!(t.as_millis(), 2.0);
/// assert_eq!(t * 2.0, Micros::new(4000.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Micros(f64);

impl Micros {
    /// Zero duration.
    pub const ZERO: Micros = Micros(0.0);

    /// Creates a duration of `value` microseconds.
    pub const fn new(value: f64) -> Self {
        Micros(value)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Micros(ms * 1000.0)
    }

    /// The raw value in microseconds.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The value converted to milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1000.0
    }

    /// `true` if the value is finite and non-negative.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Component-wise maximum.
    pub fn max(self, other: Micros) -> Micros {
        Micros(self.0.max(other.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl Mul<f64> for Micros {
    type Output = Micros;
    fn mul(self, rhs: f64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl Div<f64> for Micros {
    type Output = Micros;
    fn div(self, rhs: f64) -> Micros {
        Micros(self.0 / rhs)
    }
}

impl Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        Micros(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1000.0 {
            write!(f, "{:.3} ms", self.0 / 1000.0)
        } else {
            write!(f, "{:.1} µs", self.0)
        }
    }
}

/// A count of configurable logic blocks.
///
/// # Examples
///
/// ```
/// use rdse_model::units::Clbs;
///
/// let area = Clbs::new(120) + Clbs::new(80);
/// assert_eq!(area.value(), 200);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Clbs(u32);

impl Clbs {
    /// Zero CLBs.
    pub const ZERO: Clbs = Clbs(0);

    /// Creates a CLB count.
    pub fn new(value: u32) -> Self {
        Clbs(value)
    }

    /// The raw count.
    pub fn value(self) -> u32 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Clbs) -> Clbs {
        Clbs(self.0.saturating_sub(other.0))
    }
}

impl Add for Clbs {
    type Output = Clbs;
    fn add(self, rhs: Clbs) -> Clbs {
        Clbs(self.0 + rhs.0)
    }
}

impl AddAssign for Clbs {
    fn add_assign(&mut self, rhs: Clbs) {
        self.0 += rhs.0;
    }
}

impl Sum for Clbs {
    fn sum<I: Iterator<Item = Clbs>>(iter: I) -> Clbs {
        Clbs(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Clbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} CLBs", self.0)
    }
}

/// A quantity of data in bytes.
///
/// # Examples
///
/// ```
/// use rdse_model::units::Bytes;
///
/// assert_eq!(Bytes::new(2048).value(), 2048);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    pub fn new(value: u64) -> Self {
        Bytes(value)
    }

    /// The raw count.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_arithmetic() {
        let a = Micros::new(100.0);
        let b = Micros::new(50.0);
        assert_eq!((a + b).value(), 150.0);
        assert_eq!((a - b).value(), 50.0);
        assert_eq!((a * 3.0).value(), 300.0);
        assert_eq!((a / 2.0).value(), 50.0);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 150.0);
    }

    #[test]
    fn micros_display_switches_units() {
        assert_eq!(Micros::new(40_000.0).to_string(), "40.000 ms");
        assert_eq!(Micros::new(22.5).to_string(), "22.5 µs");
    }

    #[test]
    fn micros_validity() {
        assert!(Micros::new(1.0).is_valid());
        assert!(Micros::ZERO.is_valid());
        assert!(!Micros::new(-1.0).is_valid());
        assert!(!Micros::new(f64::NAN).is_valid());
    }

    #[test]
    fn micros_sum_and_millis() {
        let total: Micros = [Micros::new(500.0), Micros::from_millis(1.5)]
            .into_iter()
            .sum();
        assert_eq!(total.as_millis(), 2.0);
    }

    #[test]
    fn clbs_arithmetic() {
        let total: Clbs = [Clbs::new(100), Clbs::new(250)].into_iter().sum();
        assert_eq!(total, Clbs::new(350));
        assert_eq!(Clbs::new(100).saturating_sub(Clbs::new(300)), Clbs::ZERO);
        assert_eq!(
            Clbs::new(300).saturating_sub(Clbs::new(100)),
            Clbs::new(200)
        );
    }

    #[test]
    fn bytes_ordering() {
        assert!(Bytes::new(10) < Bytes::new(20));
        let total: Bytes = [Bytes::new(1), Bytes::new(2)].into_iter().sum();
        assert_eq!(total, Bytes::new(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Clbs::new(2000).to_string(), "2000 CLBs");
        assert_eq!(Bytes::new(64).to_string(), "64 B");
    }
}
