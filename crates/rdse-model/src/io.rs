//! JSON import/export of models.
//!
//! Task graphs and architectures serialize to JSON (the interchange
//! format of the `rdse` CLI and the examples).

use crate::{Architecture, ModelError, TaskGraph};
use std::fs;
use std::path::Path;

impl TaskGraph {
    /// Serializes to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] on serialization failure.
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string_pretty(self).map_err(|e| ModelError::Io(e.to_string()))
    }

    /// Parses a task graph from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] on parse failure or any validation
    /// error (e.g. [`ModelError::CyclicPrecedence`]).
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        let g: TaskGraph = serde_json::from_str(json).map_err(|e| ModelError::Io(e.to_string()))?;
        g.validate()?;
        Ok(g)
    }

    /// Writes the graph to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] on file-system or serialization
    /// failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        fs::write(path, self.to_json()?).map_err(|e| ModelError::Io(e.to_string()))
    }

    /// Reads a graph from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] on file-system or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let json = fs::read_to_string(path).map_err(|e| ModelError::Io(e.to_string()))?;
        TaskGraph::from_json(&json)
    }
}

impl Architecture {
    /// Serializes to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] on serialization failure.
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string_pretty(self).map_err(|e| ModelError::Io(e.to_string()))
    }

    /// Parses an architecture from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] on parse failure.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        serde_json::from_str(json).map_err(|e| ModelError::Io(e.to_string()))
    }

    /// Writes the architecture to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] on file-system or serialization
    /// failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        fs::write(path, self.to_json()?).map_err(|e| ModelError::Io(e.to_string()))
    }

    /// Reads an architecture from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Io`] on file-system or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let json = fs::read_to_string(path).map_err(|e| ModelError::Io(e.to_string()))?;
        Architecture::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bytes, Clbs, Micros};
    use crate::HwImpl;

    fn sample_graph() -> TaskGraph {
        let mut g = TaskGraph::new("sample");
        let a = g
            .add_task(
                "a",
                "FFT",
                Micros::new(10.0),
                vec![HwImpl::new(Clbs::new(64), Micros::new(1.5))],
            )
            .unwrap();
        let b = g.add_task("b", "SINK", Micros::new(5.0), vec![]).unwrap();
        g.add_data_edge(a, b, Bytes::new(256)).unwrap();
        g
    }

    #[test]
    fn task_graph_json_roundtrip() {
        let g = sample_graph();
        let json = g.to_json().unwrap();
        let g2 = TaskGraph::from_json(&json).unwrap();
        assert_eq!(g2.n_tasks(), 2);
        assert_eq!(g2.edges().len(), 1);
        assert_eq!(g2.task(crate::TaskId(0)).unwrap().name(), "a");
        assert_eq!(g2.to_json().unwrap(), json);
    }

    #[test]
    fn architecture_json_roundtrip() {
        let a = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(500), Micros::new(22.5), 2.0)
            .bus_rate(64.0)
            .build()
            .unwrap();
        let json = a.to_json().unwrap();
        let a2 = Architecture::from_json(&json).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn from_json_rejects_cycles() {
        // Build a cyclic edge list by hand in JSON.
        let mut g = sample_graph();
        // add reverse edge to create cycle, bypassing validate
        g.add_data_edge(crate::TaskId(1), crate::TaskId(0), Bytes::ZERO)
            .unwrap();
        let json = serde_json::to_string(&g).unwrap();
        assert!(TaskGraph::from_json(&json).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("rdse_model_io_test.json");
        let g = sample_graph();
        g.save(&path).unwrap();
        let g2 = TaskGraph::load(&path).unwrap();
        assert_eq!(g2.n_tasks(), g.n_tasks());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            TaskGraph::load("/nonexistent/nowhere.json"),
            Err(ModelError::Io(_))
        ));
    }
}
