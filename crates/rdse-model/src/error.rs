//! Model validation errors.

use crate::TaskId;
use std::error::Error;
use std::fmt;

/// Errors raised while building or validating application and
/// architecture models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A name was empty.
    EmptyName,
    /// A task id referenced a task that does not exist.
    UnknownTask(TaskId),
    /// An edge would connect a task to itself.
    SelfEdge(TaskId),
    /// The precedence graph contains a cycle.
    CyclicPrecedence {
        /// A task known to lie on the cycle.
        on_cycle: TaskId,
    },
    /// A time estimate was negative, NaN or infinite.
    InvalidTime {
        /// The offending task.
        task: TaskId,
        /// Human-readable description of which estimate is broken.
        what: &'static str,
    },
    /// A hardware implementation has zero CLBs.
    EmptyImplementation(TaskId),
    /// An architecture was declared with no computing resource at all.
    NoResources,
    /// A DRLC was declared with zero capacity.
    ZeroCapacityDrlc {
        /// Name of the offending device.
        name: String,
    },
    /// The bus rate was non-positive.
    InvalidBusRate(f64),
    /// A duplicate edge between the same pair of tasks.
    DuplicateEdge(TaskId, TaskId),
    /// Serialization or file I/O failed.
    Io(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyName => write!(f, "name must not be empty"),
            ModelError::UnknownTask(t) => write!(f, "unknown task {t}"),
            ModelError::SelfEdge(t) => write!(f, "task {t} cannot depend on itself"),
            ModelError::CyclicPrecedence { on_cycle } => {
                write!(f, "precedence graph has a cycle through task {on_cycle}")
            }
            ModelError::InvalidTime { task, what } => {
                write!(f, "task {task} has an invalid {what} estimate")
            }
            ModelError::EmptyImplementation(t) => {
                write!(f, "task {t} has a hardware implementation with zero CLBs")
            }
            ModelError::NoResources => write!(f, "architecture has no computing resources"),
            ModelError::ZeroCapacityDrlc { name } => {
                write!(f, "reconfigurable device '{name}' has zero CLB capacity")
            }
            ModelError::InvalidBusRate(r) => write!(f, "bus rate {r} is not positive"),
            ModelError::DuplicateEdge(a, b) => {
                write!(f, "duplicate data edge between {a} and {b}")
            }
            ModelError::Io(msg) => write!(f, "model i/o failed: {msg}"),
        }
    }
}

impl Error for ModelError {}
