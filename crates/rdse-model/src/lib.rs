//! Application and architecture models for reconfigurable-system DSE.
//!
//! This crate is the Rust rendering of §3.1–3.2 of the DATE'05 paper
//! (Miramond & Delosme):
//!
//! * [`TaskGraph`] — an acyclic precedence graph of coarse-grain tasks.
//!   Each task carries a functionality label, an estimated software
//!   execution time, and a set of Pareto-dominant hardware
//!   implementations (CLB count × execution time), mirroring the
//!   EPICURE estimates the paper uses (5–6 synthesized points per
//!   function). Edges carry the amount of data transferred.
//! * [`Architecture`] — the resource inventory: programmable
//!   processors, dynamically reconfigurable logic circuits (DRLC) with
//!   capacity `NCLB` and per-CLB reconfiguration time `tR`, optional
//!   ASICs, and the shared bus (rate `D`) through which processor and
//!   RC communicate via shared memory.
//! * [`units`] — `Micros`, `Clbs`, `Bytes` newtypes so times, areas and
//!   data volumes cannot be mixed up.
//!
//! # Examples
//!
//! ```
//! use rdse_model::{Architecture, TaskGraph, HwImpl};
//! use rdse_model::units::{Bytes, Clbs, Micros};
//!
//! # fn main() -> Result<(), rdse_model::ModelError> {
//! let mut app = TaskGraph::new("demo");
//! let fir = app.add_task("fir", "FIR", Micros::new(900.0), vec![
//!     HwImpl::new(Clbs::new(120), Micros::new(60.0)),
//!     HwImpl::new(Clbs::new(220), Micros::new(35.0)),
//! ])?;
//! let dct = app.add_task("dct", "DCT", Micros::new(1500.0), vec![])?;
//! app.add_data_edge(fir, dct, Bytes::new(4096))?;
//! app.validate()?;
//!
//! let arch = Architecture::builder("soc")
//!     .processor("arm922", 1.0)
//!     .drlc("virtex-e", Clbs::new(2000), Micros::new(22.5), 1.0)
//!     .bus_rate(100.0)
//!     .build()?;
//! assert_eq!(arch.drlcs().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod app;
pub mod arch;
pub mod error;
pub mod io;
pub mod units;

pub use app::{DataEdge, HwImpl, Task, TaskGraph, TaskId};
pub use arch::{Architecture, ArchitectureBuilder, AsicSpec, BusSpec, DrlcSpec, ProcessorSpec};
pub use error::ModelError;
pub use units::{Bytes, Clbs, Micros};
