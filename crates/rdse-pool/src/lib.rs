//! Persistent work-stealing thread pool for the rdse workspace.
//!
//! Every parallel subsystem in the workspace — portfolio segments in
//! `explore_parallel`, the corpus runner's scenario fan-out, the serve
//! worker shards, and speculative move scoring inside a single
//! annealing chain — used to spin up its own `std::thread::scope`, so
//! thread creation was paid once per barrier. [`Pool`] pays it once per
//! process: a fixed set of workers parks on a condition variable and
//! drains three kinds of queues:
//!
//! * a global **injector** fed by [`Pool::run`] calls from non-pool
//!   threads,
//! * a per-worker **local** queue fed by nested [`Pool::run`] calls
//!   issued *from* a worker (other workers steal from it), and
//! * a per-worker **pinned** lane fed by [`Pool::submit_pinned`] that
//!   is never stolen — jobs pinned to the same lane execute serially in
//!   submission order, which is what the serve front-end's shard
//!   routing relies on.
//!
//! # Design notes
//!
//! All queues live under a **single mutex**. Jobs in this workspace are
//! coarse (an annealing segment, a corpus scenario, a batch of
//! speculative evaluations — microseconds to seconds each), so queue
//! traffic is far too cold for per-queue locks or lock-free deques to
//! matter; one lock keeps the invariants trivially auditable.
//!
//! [`Pool::run`] is a *scoped* barrier: it accepts non-`'static`
//! closures, blocks until all of them ran, and while blocked the
//! calling thread **helps drain** the pool instead of idling. Helping
//! makes nested fan-out (a chain segment running on the pool that
//! itself fans speculative evaluations out to the pool) deadlock-free:
//! a waiting owner always either executes a queued job or sleeps with
//! every queue empty.
//!
//! Determinism: the pool never reorders *results*. [`Pool::run_ordered`]
//! writes each task's output into its submission slot, so callers see
//! results in submission order regardless of which worker ran what, and
//! a panicking task fails its own scope ([`Pool::run`] re-raises the
//! first payload after the barrier) without taking down any worker
//! thread.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `(pool identity, worker index)` of the pool worker running this
    /// thread, if any. Identity is the address of the pool's shared
    /// state, so a worker of pool A submitting to pool B is treated as
    /// an outside caller by B.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

struct State {
    injector: VecDeque<Job>,
    pinned: Vec<VecDeque<Job>>,
    local: Vec<VecDeque<Job>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    available: Condvar,
    threads: usize,
}

/// Ignore mutex poisoning: queue operations never unwind while holding
/// the lock (job bodies run outside it), so a poisoned lock still
/// guards a consistent queue state.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Inner {
    fn id(&self) -> usize {
        self as *const Inner as usize
    }

    /// Pop order for worker `w`: its pinned lane, its local queue, the
    /// injector, then steal from the other workers' local queues.
    fn pop_worker(&self, st: &mut State, w: usize) -> Option<Job> {
        if let Some(job) = st.pinned[w].pop_front() {
            return Some(job);
        }
        if let Some(job) = st.local[w].pop_front() {
            return Some(job);
        }
        if let Some(job) = st.injector.pop_front() {
            return Some(job);
        }
        let n = st.local.len();
        for i in 1..n {
            if let Some(job) = st.local[(w + i) % n].pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Pop order for a thread *waiting* on a [`Pool::run`] barrier:
    /// anything stealable — never a pinned lane, whose jobs must run on
    /// their own worker.
    fn pop_help(&self, st: &mut State, me: Option<usize>) -> Option<Job> {
        if let Some(w) = me {
            if let Some(job) = st.local[w].pop_front() {
                return Some(job);
            }
        }
        if let Some(job) = st.injector.pop_front() {
            return Some(job);
        }
        for q in &mut st.local {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn worker_main(self: Arc<Self>, w: usize) {
        WORKER.with(|c| c.set(Some((self.id(), w))));
        let mut st = lock(&self.state);
        loop {
            if let Some(job) = self.pop_worker(&mut st, w) {
                drop(st);
                // Containment: a panicking fire-and-forget job (pinned
                // lane) must not take the worker down. Scoped jobs
                // catch their own panics and re-raise at the barrier.
                let _ = catch_unwind(AssertUnwindSafe(job));
                st = lock(&self.state);
            } else if st.shutdown {
                // Drain-then-exit: only leave once nothing is poppable.
                break;
            } else {
                st = self.available.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// A persistent pool of worker threads. See the [crate docs](crate)
/// for the queueing model.
///
/// Dropping the pool drains every queue (pinned lanes included) and
/// joins the workers, so fire-and-forget work submitted before the
/// drop still runs — the serve front-end's drain-then-exit shutdown is
/// exactly this `Drop`.
pub struct Pool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.inner.threads)
            .finish()
    }
}

impl Pool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                injector: VecDeque::new(),
                pinned: (0..threads).map(|_| VecDeque::new()).collect(),
                local: (0..threads).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            available: Condvar::new(),
            threads,
        });
        let handles = (0..threads)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rdse-pool-{w}"))
                    .spawn(move || inner.worker_main(w))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { inner, handles }
    }

    /// The process-wide shared pool, sized to the machine's available
    /// parallelism. Created on first use; lives for the process.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Pool::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Index of the worker lane `key` hashes to — the lane
    /// [`submit_pinned`](Pool::submit_pinned) would serialize it on.
    pub fn lane(&self, key: usize) -> usize {
        key % self.inner.threads
    }

    /// Runs `tasks` to completion on the pool (a scoped barrier).
    ///
    /// The calling thread helps drain the pool while it waits, so this
    /// may be called from inside a pool job without deadlocking. If any
    /// task panics, the remaining tasks still run and the first panic
    /// payload is re-raised here after the barrier; the workers
    /// survive.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let remaining = AtomicUsize::new(tasks.len());
        let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let me = WORKER
            .with(|c| c.get())
            .filter(|(id, _)| *id == self.inner.id())
            .map(|(_, w)| w);

        {
            let mut st = lock(&self.inner.state);
            for task in tasks {
                let remaining = &remaining;
                let first_panic = &first_panic;
                let inner = &*self.inner;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    remaining.fetch_sub(1, Ordering::Release);
                    // Wake the owner without a missed-wakeup window: it
                    // holds the state lock from its latch check until it
                    // parks, so acquiring the lock here serializes this
                    // notify against that check.
                    let _guard = lock(&inner.state);
                    inner.available.notify_all();
                });
                // SAFETY: the job only borrows `tasks`' captures, the
                // latch and the pool, all of which outlive the barrier
                // below — this function does not return (or unwind)
                // until `remaining` hits zero, and nothing between here
                // and the barrier panics (queue pushes aside, which
                // would abort on OOM rather than unwind).
                let job: Job = unsafe { std::mem::transmute(job) };
                match me {
                    Some(w) => st.local[w].push_back(job),
                    None => st.injector.push_back(job),
                }
            }
            self.inner.available.notify_all();
        }

        let mut st = lock(&self.inner.state);
        while remaining.load(Ordering::Acquire) != 0 {
            if let Some(job) = self.inner.pop_help(&mut st, me) {
                drop(st);
                // Queued jobs are wrappers that catch their own panics;
                // this call cannot unwind past the barrier.
                job();
                st = lock(&self.inner.state);
            } else {
                st = self
                    .inner
                    .available
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        drop(st);

        let payload = first_panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs `tasks` on the pool and returns their results **in
    /// submission order**, independent of which worker ran what.
    pub fn run_ordered<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let mut slots: Vec<Option<T>> = (0..tasks.len()).map(|_| None).collect();
        let boxed: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .zip(tasks)
            .map(|(slot, task)| {
                Box::new(move || {
                    *slot = Some(task());
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run(boxed);
        slots
            .into_iter()
            .map(|slot| slot.expect("pool task completed"))
            .collect()
    }

    /// Enqueues a fire-and-forget job on worker lane `lane % threads`.
    ///
    /// Jobs pinned to the same lane run serially in submission order on
    /// that lane's worker and are never stolen — per-lane state needs
    /// no locking against other jobs of the same lane. A panicking job
    /// is contained by the worker (the lane keeps draining).
    pub fn submit_pinned<F: FnOnce() + Send + 'static>(&self, lane: usize, job: F) {
        let mut st = lock(&self.inner.state);
        let lane = lane % self.inner.threads;
        st.pinned[lane].push_back(Box::new(job));
        self.inner.available.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
            self.inner.available.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_ordered_preserves_submission_order() {
        let pool = Pool::new(4);
        let tasks: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    // Stagger so completion order differs from
                    // submission order.
                    std::thread::sleep(std::time::Duration::from_micros(200 - 3 * (i % 64)));
                    i * i
                }
            })
            .collect();
        let results = pool.run_ordered(tasks);
        let expected: Vec<_> = (0..64u64).map(|i| i * i).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn scoped_run_borrows_stack_data() {
        let pool = Pool::new(2);
        let mut data = [0u64; 8];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = i as u64 + 1;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(data, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn panicking_task_fails_its_scope_not_the_pool() {
        let pool = Pool::new(2);
        let ran = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| panic!("boom")),
                Box::new(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                }),
                Box::new(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                }),
            ];
            pool.run(tasks);
        }));
        assert!(result.is_err(), "panic must propagate to the scope owner");
        // The sibling tasks still ran and the pool is still alive.
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        let sums = pool.run_ordered(vec![|| 1 + 1, || 2 + 2]);
        assert_eq!(sums, vec![2, 4]);
    }

    #[test]
    fn panicking_pinned_job_does_not_kill_the_lane() {
        let pool = Pool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        pool.submit_pinned(0, || panic!("pinned boom"));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            pool.submit_pinned(0, move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Drop drains the lane before joining the worker.
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pinned_jobs_on_one_lane_run_in_submission_order() {
        let pool = Pool::new(3);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..32 {
            let log = Arc::clone(&log);
            pool.submit_pinned(1, move || {
                log.lock().unwrap().push(i);
            });
        }
        drop(pool);
        let log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
        assert_eq!(log, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn nested_run_from_a_worker_does_not_deadlock() {
        let pool = Arc::new(Pool::new(2));
        // Saturate the pool with jobs that themselves fan out: the
        // inner barrier must help-drain rather than park forever.
        let p = Arc::clone(&pool);
        let totals = pool.run_ordered(
            (0..4)
                .map(|i| {
                    let p = Arc::clone(&p);
                    move || {
                        p.run_ordered((0..8).map(|j| move || i * 8 + j).collect())
                            .iter()
                            .sum::<i32>()
                    }
                })
                .collect(),
        );
        let expected: Vec<i32> = (0..4).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn single_thread_pool_still_completes_scoped_work() {
        let pool = Pool::new(1);
        let out = pool.run_ordered((0..16).map(|i| move || i * 3).collect::<Vec<_>>());
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }
}
