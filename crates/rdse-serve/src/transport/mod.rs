//! Transport plumbing shared by the raw RPC and HTTP adapters:
//! protocol sniffing on a fresh connection and the [`FrameSink`]
//! abstraction workers stream results through.

pub(crate) mod http;
pub(crate) mod rpc;

use crate::handler;
use crate::protocol::{write_frame, ErrorCode, FrameType, JobSpec, ServeError, MAGIC};
use crate::server::{Ctx, SessionPermit};
use rdse_mapping::Objective;
use serde::Value;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a worker sends a job's streamed output. One sink per job,
/// owned by the worker; both transports implement it so the worker
/// never knows how the client connected.
pub trait FrameSink: Send {
    /// Streams one incremental update. Returning `false` tells the
    /// worker the client is gone and the job should stop.
    fn send_update(&mut self, body: &Value) -> bool;
    /// Sends the final result.
    fn send_result(&mut self, body: &Value);
    /// Sends a typed error.
    fn send_error(&mut self, err: &ServeError);
    /// Flushes and closes the response stream.
    fn finish(&mut self);
}

enum Sniff {
    Rpc,
    Http,
    Garbage,
    TimedOut,
    Closed,
}

/// Classifies a fresh connection by peeking (not consuming) its first
/// four bytes: the protocol magic means raw RPC, an ASCII method means
/// HTTP, anything else is garbage. A sender that stalls before
/// completing four bytes runs into `deadline`.
fn sniff(stream: &TcpStream, deadline: Duration) -> Sniff {
    let started = Instant::now();
    let mut buf = [0u8; 4];
    loop {
        match stream.peek(&mut buf) {
            Ok(0) => return Sniff::Closed,
            Ok(n) if n >= 4 => {
                return if buf == MAGIC {
                    Sniff::Rpc
                } else if buf.iter().all(|b| b.is_ascii_uppercase() || *b == b' ') {
                    Sniff::Http
                } else {
                    Sniff::Garbage
                };
            }
            Ok(_) => {
                if started.elapsed() >= deadline {
                    return Sniff::TimedOut;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Sniff::TimedOut;
            }
            Err(_) => return Sniff::Closed,
        }
    }
}

/// Entry point for every accepted connection (own thread): set the
/// socket limits, sniff the protocol and hand off.
pub(crate) fn handle_connection(stream: TcpStream, ctx: &Arc<Ctx>, permit: SessionPermit) {
    let limits = &ctx.core.limits;
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let _ = stream.set_nodelay(true);
    match sniff(&stream, limits.read_timeout) {
        Sniff::Rpc => rpc::handle(stream, ctx, permit),
        Sniff::Http => http::handle(stream, ctx, permit),
        Sniff::Garbage => {
            let err = ServeError::new(
                ErrorCode::BadMagic,
                "first bytes are neither the RDSE magic nor an HTTP method",
            );
            let mut stream = stream;
            let _ = write_frame(&mut stream, FrameType::Error, &err.to_value());
        }
        Sniff::TimedOut => {
            let err = ServeError::new(
                ErrorCode::Timeout,
                "no complete request within the read timeout",
            );
            let mut stream = stream;
            let _ = write_frame(&mut stream, FrameType::Error, &err.to_value());
        }
        Sniff::Closed => {}
    }
}

/// Over-capacity path: no session permit, so answer with a typed
/// `busy` error on whichever protocol the client speaks and hang up.
pub(crate) fn reply_busy(stream: TcpStream, ctx: &Arc<Ctx>) {
    let err = ServeError::new(
        ErrorCode::Busy,
        format!(
            "session limit of {} reached; retry later",
            ctx.core.limits.max_sessions
        ),
    );
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(ctx.core.limits.write_timeout));
    match sniff(&stream, Duration::from_millis(500)) {
        Sniff::Http => http::respond_error(stream, &err),
        Sniff::Closed => {}
        _ => {
            let mut stream = stream;
            let _ = write_frame(&mut stream, FrameType::Error, &err.to_value());
        }
    }
}

/// Validates a job body and registers it, common to both transports.
/// Returns everything a [`crate::worker::JobRequest`] needs besides
/// the sink.
pub(crate) fn admit_job(
    ctx: &Ctx,
    body: &Value,
) -> Result<(u64, JobSpec, Objective, String), ServeError> {
    let spec = JobSpec::from_value(body).map_err(|e| ServeError::new(ErrorCode::BadJob, e))?;
    let objective = handler::validate_spec(&spec, &ctx.core.limits)?;
    let key = handler::cache_key(&spec);
    let id = ctx.core.registry.register();
    Ok((id, spec, objective, key))
}
