//! Minimal HTTP/1.1 adapter over the same handler as the raw RPC
//! transport. Routes:
//!
//! - `POST /jobs` — submit a [`crate::protocol::JobSpec`] body;
//!   the response streams NDJSON (update lines, then the result
//!   line), delimited by connection close.
//! - `GET /jobs/<id>` — fetch a job registry record.
//! - `GET /healthz` — server stats (including the evaluator-cache
//!   counters).
//! - `POST /shutdown` — graceful shutdown.
//!
//! Errors carry the same typed body as RPC error frames, with
//! [`crate::protocol::ErrorCode::http_status`] as the status code.

use super::{admit_job, FrameSink};
use crate::protocol::{obj, ErrorCode, ServeError};
use crate::server::{Ctx, JobState, SessionPermit};
use crate::worker::JobRequest;
use serde::Value;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
}

fn map_io(e: std::io::Error) -> ServeError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ServeError::new(ErrorCode::Timeout, "read timed out")
        }
        _ => ServeError::new(ErrorCode::Truncated, format!("i/o error: {e}")),
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn read_request(stream: &mut TcpStream, max_body: u32) -> Result<HttpRequest, ServeError> {
    const MAX_HEAD: usize = 16 * 1024;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > MAX_HEAD {
            return Err(ServeError::new(
                ErrorCode::BadRequest,
                "request head exceeds 16 KiB",
            ));
        }
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(ServeError::new(
                ErrorCode::Truncated,
                "connection closed before the request head completed",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ServeError::new(ErrorCode::BadRequest, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(ServeError::new(
            ErrorCode::BadRequest,
            "malformed request line",
        ));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ServeError::new(ErrorCode::BadRequest, "invalid Content-Length")
                })?;
            }
        }
    }
    if content_length > max_body as usize {
        return Err(ServeError::new(
            ErrorCode::FrameTooLarge,
            format!("request body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(ServeError::new(
                ErrorCode::Truncated,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest { method, path, body })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn respond(mut stream: TcpStream, status: u16, body: &Value) {
    let json = serde_json::to_string(body).expect("Value serialization is infallible");
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        json.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(json.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Write);
}

/// Answers with the error's mapped status and its typed JSON body.
pub(crate) fn respond_error(stream: TcpStream, err: &ServeError) {
    respond(stream, err.code.http_status(), &err.to_value());
}

/// Streams a job's output as close-delimited NDJSON. The status line
/// and headers go out with the first update (or the result); an error
/// before any output becomes a plain HTTP error response instead.
struct HttpSink {
    stream: TcpStream,
    started: bool,
    dead: bool,
}

impl HttpSink {
    fn write_line(&mut self, body: &Value) {
        if self.dead {
            return;
        }
        if !self.started {
            self.started = true;
            let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n";
            if self.stream.write_all(head.as_bytes()).is_err() {
                self.dead = true;
                return;
            }
        }
        let mut json = serde_json::to_string(body).expect("Value serialization is infallible");
        json.push('\n');
        if self.stream.write_all(json.as_bytes()).is_err() || self.stream.flush().is_err() {
            self.dead = true;
        }
    }
}

impl FrameSink for HttpSink {
    fn send_update(&mut self, body: &Value) -> bool {
        self.write_line(body);
        !self.dead
    }

    fn send_result(&mut self, body: &Value) {
        self.write_line(body);
    }

    fn send_error(&mut self, err: &ServeError) {
        if self.dead {
            return;
        }
        if self.started {
            self.write_line(&err.to_value());
        } else if let Ok(stream) = self.stream.try_clone() {
            self.dead = true;
            respond_error(stream, err);
        }
    }

    fn finish(&mut self) {
        let _ = self.stream.flush();
        let _ = self.stream.shutdown(Shutdown::Write);
    }
}

pub(crate) fn handle(mut stream: TcpStream, ctx: &Arc<Ctx>, permit: SessionPermit) {
    let request = match read_request(&mut stream, ctx.core.limits.max_frame_len) {
        Ok(r) => r,
        Err(e) => {
            respond_error(stream, &e);
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => respond(stream, 200, &ctx.health_value()),
        ("POST", "/shutdown") => {
            let bye = obj(vec![
                ("type", Value::Str("bye".into())),
                ("status", Value::Str("shutting-down".into())),
            ]);
            respond(stream, 200, &bye);
            ctx.request_shutdown();
        }
        ("POST", "/jobs") => {
            let body = match std::str::from_utf8(&request.body)
                .map_err(|_| ServeError::new(ErrorCode::BadJson, "body is not UTF-8"))
                .and_then(|text| {
                    serde_json::from_str::<Value>(text)
                        .map_err(|e| ServeError::new(ErrorCode::BadJson, e))
                }) {
                Ok(v) => v,
                Err(e) => {
                    respond_error(stream, &e);
                    return;
                }
            };
            match admit_job(ctx, &body) {
                Ok((id, spec, objective, key)) => {
                    let req = Box::new(JobRequest {
                        id,
                        spec,
                        objective,
                        key,
                        sink: Box::new(HttpSink {
                            stream,
                            started: false,
                            dead: false,
                        }),
                        permit: Some(permit),
                    });
                    if let Err((mut req, err)) = ctx.dispatch(req) {
                        ctx.core
                            .registry
                            .set_state(req.id, JobState::Failed(err.clone()));
                        ctx.core.stats.jobs_failed.fetch_add(1, Relaxed);
                        req.sink.send_error(&err);
                        req.sink.finish();
                    }
                }
                Err(err) => {
                    ctx.core.stats.jobs_failed.fetch_add(1, Relaxed);
                    respond_error(stream, &err);
                }
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            match path["/jobs/".len()..].parse::<u64>() {
                Ok(id) => match ctx.core.registry.record_value(id) {
                    Some(record) => respond(stream, 200, &record),
                    None => respond_error(
                        stream,
                        &ServeError::new(ErrorCode::UnknownJob, format!("no record of job {id}")),
                    ),
                },
                Err(_) => respond_error(
                    stream,
                    &ServeError::new(ErrorCode::BadRequest, "job id must be an integer"),
                ),
            }
        }
        (method, path) => respond(
            stream,
            404,
            &ServeError::new(ErrorCode::BadRequest, format!("no route {method} {path}")).to_value(),
        ),
    }
}
