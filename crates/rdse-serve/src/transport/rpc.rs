//! The raw RPC transport: one request frame per connection, answered
//! by one reply frame — except jobs, which stream `Update` frames
//! until the final `Result` (or `Error`).

use super::{admit_job, FrameSink};
use crate::protocol::{
    obj, read_frame, require_u64, write_frame, ErrorCode, FrameType, ServeError,
};
use crate::server::{Ctx, JobState, SessionPermit};
use crate::worker::JobRequest;
use serde::Value;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

pub(crate) struct RpcSink {
    stream: TcpStream,
    dead: bool,
}

impl RpcSink {
    fn send(&mut self, frame_type: FrameType, body: &Value) {
        if !self.dead && write_frame(&mut self.stream, frame_type, body).is_err() {
            self.dead = true;
        }
    }
}

impl FrameSink for RpcSink {
    fn send_update(&mut self, body: &Value) -> bool {
        self.send(FrameType::Update, body);
        !self.dead
    }

    fn send_result(&mut self, body: &Value) {
        self.send(FrameType::Result, body);
    }

    fn send_error(&mut self, err: &ServeError) {
        self.send(FrameType::Error, &err.to_value());
    }

    fn finish(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Write);
    }
}

fn reply_error(stream: &mut TcpStream, err: &ServeError) {
    let _ = write_frame(stream, FrameType::Error, &err.to_value());
}

pub(crate) fn handle(mut stream: TcpStream, ctx: &Arc<Ctx>, permit: SessionPermit) {
    let (frame_type, body) = match read_frame(&mut stream, ctx.core.limits.max_frame_len) {
        Ok(x) => x,
        Err(e) => {
            reply_error(&mut stream, &ServeError::from_frame_error(e));
            return;
        }
    };
    match frame_type {
        FrameType::Health => {
            let _ = write_frame(&mut stream, FrameType::HealthReply, &ctx.health_value());
        }
        FrameType::Shutdown => {
            let bye = obj(vec![
                ("type", Value::Str("bye".into())),
                ("status", Value::Str("shutting-down".into())),
            ]);
            let _ = write_frame(&mut stream, FrameType::Bye, &bye);
            ctx.request_shutdown();
        }
        FrameType::GetJob => match require_u64(&body, "job") {
            Ok(id) => match ctx.core.registry.record_value(id) {
                Some(record) => {
                    let _ = write_frame(&mut stream, FrameType::JobRecord, &record);
                }
                None => reply_error(
                    &mut stream,
                    &ServeError::new(ErrorCode::UnknownJob, format!("no record of job {id}")),
                ),
            },
            Err(e) => reply_error(&mut stream, &ServeError::new(ErrorCode::BadRequest, e)),
        },
        FrameType::Job => match admit_job(ctx, &body) {
            Ok((id, spec, objective, key)) => {
                let req = Box::new(JobRequest {
                    id,
                    spec,
                    objective,
                    key,
                    sink: Box::new(RpcSink {
                        stream,
                        dead: false,
                    }),
                    permit: Some(permit),
                });
                if let Err((mut req, err)) = ctx.dispatch(req) {
                    ctx.core
                        .registry
                        .set_state(req.id, JobState::Failed(err.clone()));
                    ctx.core.stats.jobs_failed.fetch_add(1, Relaxed);
                    req.sink.send_error(&err);
                    req.sink.finish();
                }
            }
            Err(err) => {
                ctx.core.stats.jobs_failed.fetch_add(1, Relaxed);
                reply_error(&mut stream, &err);
            }
        },
        _ => reply_error(
            &mut stream,
            &ServeError::new(
                ErrorCode::UnknownType,
                format!("{frame_type:?} is a response type, not a request"),
            ),
        ),
    }
}
