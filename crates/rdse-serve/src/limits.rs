//! Per-request and per-server resource limits.

use std::time::Duration;

/// Everything the server refuses to exceed. Every violation is
/// answered with a typed error frame (see
/// [`ErrorCode`](crate::protocol::ErrorCode)) — never a panic, a hang
/// or a silent connection drop.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum frame body length in bytes (checked against the header
    /// *before* the body is read).
    pub max_frame_len: u32,
    /// Maximum tasks in a job's application.
    pub max_tasks: usize,
    /// Maximum devices (processors + DRLCs + ASICs) in a job's
    /// architecture.
    pub max_devices: usize,
    /// Maximum total iteration budget per job.
    pub max_iters: u64,
    /// Maximum portfolio chains per job.
    pub max_chains: usize,
    /// Maximum concurrent sessions (open connections + queued and
    /// running jobs).
    pub max_sessions: usize,
    /// Socket read timeout — a sender that stalls mid-frame (slow
    /// loris) is cut off with a `timeout` error frame.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_frame_len: 1 << 20, // 1 MiB
            max_tasks: 512,
            max_devices: 16,
            max_iters: 1_000_000,
            max_chains: 64,
            max_sessions: 32,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
        }
    }
}
