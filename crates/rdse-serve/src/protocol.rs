//! The wire protocol: length-prefixed frames with a versioned header
//! and a JSON body.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "RDSE"
//! 4       2     protocol version, big-endian (currently 1)
//! 6       2     frame type, big-endian (see [`FrameType`])
//! 8       4     body length in bytes, big-endian
//! 12      len   body: UTF-8 JSON
//! ```
//!
//! Every malformed input decodes to a precise [`FrameError`] so the
//! server can answer with a typed error frame instead of dropping the
//! connection: wrong magic, unsupported version, unknown frame type,
//! a body longer than the receiver's limit, or a body that is not
//! valid JSON. A connection that dies mid-frame surfaces as
//! [`FrameError::Truncated`].

use serde::{Serialize, Value};
use std::io::{Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"RDSE";
/// Protocol version carried in every header.
pub const VERSION: u16 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Frame discriminator. Requests are < 16, responses ≥ 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Request: submit a job ([`JobSpec`] body). Answered by a stream
    /// of `Update` frames followed by one `Result` or `Error` frame.
    Job,
    /// Request: health/stats probe (empty body).
    Health,
    /// Request: stop the server after in-flight jobs finish.
    Shutdown,
    /// Request: look up a job record (`{"job": <id>}` body).
    GetJob,
    /// Response: an incremental progress snapshot (streamed).
    Update,
    /// Response: the final job result.
    Result,
    /// Response: a typed error (`{"code": ..., "message": ...}`).
    Error,
    /// Response: health/stats report.
    HealthReply,
    /// Response: shutdown acknowledged.
    Bye,
    /// Response: a job registry record.
    JobRecord,
}

impl FrameType {
    /// Wire code of this frame type.
    pub fn code(self) -> u16 {
        match self {
            FrameType::Job => 1,
            FrameType::Health => 2,
            FrameType::Shutdown => 3,
            FrameType::GetJob => 4,
            FrameType::Update => 16,
            FrameType::Result => 17,
            FrameType::Error => 18,
            FrameType::HealthReply => 19,
            FrameType::Bye => 20,
            FrameType::JobRecord => 21,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u16) -> Option<FrameType> {
        Some(match code {
            1 => FrameType::Job,
            2 => FrameType::Health,
            3 => FrameType::Shutdown,
            4 => FrameType::GetJob,
            16 => FrameType::Update,
            17 => FrameType::Result,
            18 => FrameType::Error,
            19 => FrameType::HealthReply,
            20 => FrameType::Bye,
            21 => FrameType::JobRecord,
            _ => return None,
        })
    }
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic,
    /// The header carried an unsupported protocol version.
    BadVersion(u16),
    /// The header carried an unknown frame-type code.
    UnknownType(u16),
    /// The declared body length exceeds the receiver's limit.
    TooLarge {
        /// Declared body length.
        len: u32,
        /// The receiver's limit.
        max: u32,
    },
    /// The connection ended mid-header or mid-body.
    Truncated,
    /// The body was not valid UTF-8 JSON.
    BadJson(String),
    /// The read timed out (slow sender).
    TimedOut,
    /// Any other transport failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad magic (expected \"RDSE\")"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownType(c) => write!(f, "unknown frame type {c}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::BadJson(e) => write!(f, "frame body is not valid JSON: {e}"),
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Serializes `body` into a complete frame (header + JSON payload).
pub fn encode_frame(frame_type: FrameType, body: &Value) -> Vec<u8> {
    let json = serde_json::to_string(body).expect("Value serialization is infallible");
    let payload = json.as_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&frame_type.code().to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl Write, frame_type: FrameType, body: &Value) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame_type, body))?;
    w.flush()
}

fn read_exact_frame(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => FrameError::Truncated,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => FrameError::TimedOut,
        _ => FrameError::Io(e),
    })
}

/// Reads one frame from `r`, rejecting bodies longer than `max_len`
/// bytes *before* reading them (so an attacker cannot make the
/// receiver allocate or read an arbitrary amount).
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<(FrameType, Value), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_frame(r, &mut header)?;
    if header[0..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let code = u16::from_be_bytes([header[6], header[7]]);
    let frame_type = FrameType::from_code(code).ok_or(FrameError::UnknownType(code))?;
    let len = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut body = vec![0u8; len as usize];
    read_exact_frame(r, &mut body)?;
    let text =
        std::str::from_utf8(&body).map_err(|_| FrameError::BadJson("body is not UTF-8".into()))?;
    let value: Value =
        serde_json::from_str(text).map_err(|e| FrameError::BadJson(e.to_string()))?;
    Ok((frame_type, value))
}

// ---------------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------------

/// Machine-readable cause carried by every error frame, stable across
/// both transports (the HTTP adapter maps these onto status codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame did not start with the protocol magic.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion,
    /// Unknown frame-type code, or a response type sent as a request.
    UnknownType,
    /// Declared body length exceeds the server's frame limit.
    FrameTooLarge,
    /// Connection closed mid-frame.
    Truncated,
    /// Body was not valid JSON.
    BadJson,
    /// Job spec was structurally invalid.
    BadJob,
    /// `objective` spec failed to parse.
    BadObjective,
    /// Unknown builtin app or workload family.
    UnknownApp,
    /// Unknown architecture family.
    UnknownArch,
    /// Application exceeds the server's task limit.
    TooManyTasks,
    /// Architecture exceeds the server's device limit.
    TooManyDevices,
    /// Iteration budget exceeds the server's limit.
    OverBudget,
    /// Chain count is zero or exceeds the server's limit.
    TooManyChains,
    /// Concurrent-session limit reached.
    Busy,
    /// Read timed out (slow or stalled sender).
    Timeout,
    /// No job registry record with the requested id.
    UnknownJob,
    /// Malformed HTTP request (method/route/body framing).
    BadRequest,
    /// Client disconnected mid-stream; the job was aborted.
    Aborted,
    /// The exploration itself failed (infeasible models).
    Internal,
}

impl ErrorCode {
    /// Stable wire name, e.g. `over-budget`.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::UnknownType => "unknown-type",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::Truncated => "truncated-frame",
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadJob => "bad-job",
            ErrorCode::BadObjective => "bad-objective",
            ErrorCode::UnknownApp => "unknown-app",
            ErrorCode::UnknownArch => "unknown-arch",
            ErrorCode::TooManyTasks => "too-many-tasks",
            ErrorCode::TooManyDevices => "too-many-devices",
            ErrorCode::OverBudget => "over-budget",
            ErrorCode::TooManyChains => "too-many-chains",
            ErrorCode::Busy => "busy",
            ErrorCode::Timeout => "timeout",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Aborted => "aborted",
            ErrorCode::Internal => "internal",
        }
    }

    /// HTTP status the adapter answers with for this code.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::Busy => 503,
            ErrorCode::Timeout => 408,
            ErrorCode::UnknownJob => 404,
            ErrorCode::FrameTooLarge => 413,
            ErrorCode::Internal | ErrorCode::Aborted => 500,
            _ => 400,
        }
    }
}

/// A typed failure: the body of every `Error` frame.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// Machine-readable cause.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// Builds an error from anything displayable.
    pub fn new(code: ErrorCode, message: impl std::fmt::Display) -> Self {
        ServeError {
            code,
            message: message.to_string(),
        }
    }

    /// The error-frame body: `{"type":"error","code":...,"message":...}`.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("type", Value::Str("error".into())),
            ("code", Value::Str(self.code.as_str().into())),
            ("message", Value::Str(self.message.clone())),
        ])
    }

    /// Maps a decode failure onto the matching typed error.
    pub fn from_frame_error(e: FrameError) -> ServeError {
        let code = match &e {
            FrameError::BadMagic => ErrorCode::BadMagic,
            FrameError::BadVersion(_) => ErrorCode::BadVersion,
            FrameError::UnknownType(_) => ErrorCode::UnknownType,
            FrameError::TooLarge { .. } => ErrorCode::FrameTooLarge,
            FrameError::Truncated => ErrorCode::Truncated,
            FrameError::BadJson(_) => ErrorCode::BadJson,
            FrameError::TimedOut => ErrorCode::Timeout,
            FrameError::Io(_) => ErrorCode::Truncated,
        };
        ServeError::new(code, e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

// ---------------------------------------------------------------------------
// Job specs
// ---------------------------------------------------------------------------

/// How a job names its application.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// A named builtin: `motion` or `figure1`.
    Builtin(String),
    /// A corpus workload family generated from a seed.
    Workload {
        /// Family name (see `rdse corpus list`), e.g. `layered-5x4`.
        family: String,
        /// Generation seed.
        seed: u64,
    },
    /// A full inline task-graph model (the `TaskGraph` JSON shape).
    Inline(Value),
}

/// How a job names its architecture.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchSpec {
    /// The paper's Epicure platform with this many CLBs.
    Clbs(u32),
    /// A corpus platform template drawn from a seed.
    Family {
        /// Template name, e.g. `epicure` or `dual-fpga`.
        family: String,
        /// Parameter-draw seed.
        seed: u64,
    },
    /// A full inline architecture model (the `Architecture` JSON shape).
    Inline(Value),
}

/// A complete exploration job: what to explore and with what budget.
/// The canonical JSON shape (produced by [`JobSpec::to_value`] and
/// accepted by [`JobSpec::from_value`]) is:
///
/// ```json
/// {"app": {"builtin": "motion"},
///  "arch": {"clbs": 2000},
///  "objective": "makespan",
///  "iters": 3000, "warmup": 600, "seed": 1,
///  "chains": 4, "exchange_every": 250}
/// ```
///
/// `app` alternatives: `{"workload": "layered-5x4", "seed": 3}` or
/// `{"inline": {...}}`; `arch` alternatives:
/// `{"family": "dual-fpga", "seed": 3}` or `{"inline": {...}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The application to map.
    pub app: AppSpec,
    /// The platform to map onto.
    pub arch: ArchSpec,
    /// Objective spec string (the `--objective` grammar).
    pub objective: String,
    /// Total iteration budget across all chains.
    pub iters: u64,
    /// Warm-up iterations (scaled per chain like the CLI).
    pub warmup: u64,
    /// Master RNG seed.
    pub seed: u64,
    /// Portfolio chain count (≥ 1; results depend on it).
    pub chains: usize,
    /// Per-chain iterations between exchanges (0 = independent).
    pub exchange_every: u64,
}

impl JobSpec {
    /// Renders the canonical JSON body of a `Job` frame.
    pub fn to_value(&self) -> Value {
        let app = match &self.app {
            AppSpec::Builtin(name) => obj(vec![("builtin", Value::Str(name.clone()))]),
            AppSpec::Workload { family, seed } => obj(vec![
                ("workload", Value::Str(family.clone())),
                ("seed", seed.to_value()),
            ]),
            AppSpec::Inline(model) => obj(vec![("inline", model.clone())]),
        };
        let arch = match &self.arch {
            ArchSpec::Clbs(n) => obj(vec![("clbs", n.to_value())]),
            ArchSpec::Family { family, seed } => obj(vec![
                ("family", Value::Str(family.clone())),
                ("seed", seed.to_value()),
            ]),
            ArchSpec::Inline(model) => obj(vec![("inline", model.clone())]),
        };
        obj(vec![
            ("app", app),
            ("arch", arch),
            ("objective", Value::Str(self.objective.clone())),
            ("iters", self.iters.to_value()),
            ("warmup", self.warmup.to_value()),
            ("seed", self.seed.to_value()),
            ("chains", self.chains.to_value()),
            ("exchange_every", self.exchange_every.to_value()),
        ])
    }

    /// Parses a `Job` frame body. Structural validation only — family
    /// names, objective grammar and limits are checked by the server's
    /// job validation, which produces more specific error codes.
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        let app_v = v.get("app").ok_or("missing field 'app'")?;
        let app = if let Some(name) = app_v.get("builtin") {
            AppSpec::Builtin(as_str(name, "app.builtin")?)
        } else if let Some(family) = app_v.get("workload") {
            AppSpec::Workload {
                family: as_str(family, "app.workload")?,
                seed: get_u64(app_v, "seed", 1)?,
            }
        } else if let Some(model) = app_v.get("inline") {
            AppSpec::Inline(model.clone())
        } else {
            return Err("'app' must carry 'builtin', 'workload' or 'inline'".into());
        };
        let arch_v = v.get("arch").ok_or("missing field 'arch'")?;
        let arch = if let Some(clbs) = arch_v.get("clbs") {
            ArchSpec::Clbs(
                u32::try_from(as_u64(clbs, "arch.clbs")?)
                    .map_err(|_| "'arch.clbs' out of range".to_string())?,
            )
        } else if let Some(family) = arch_v.get("family") {
            ArchSpec::Family {
                family: as_str(family, "arch.family")?,
                seed: get_u64(arch_v, "seed", 1)?,
            }
        } else if let Some(model) = arch_v.get("inline") {
            ArchSpec::Inline(model.clone())
        } else {
            return Err("'arch' must carry 'clbs', 'family' or 'inline'".into());
        };
        let objective = match v.get("objective") {
            None => "makespan".to_string(),
            Some(o) => as_str(o, "objective")?,
        };
        Ok(JobSpec {
            app,
            arch,
            objective,
            iters: get_u64(v, "iters", 5_000)?,
            warmup: get_u64(v, "warmup", 1_200)?,
            seed: get_u64(v, "seed", 1)?,
            chains: usize::try_from(get_u64(v, "chains", 1)?)
                .map_err(|_| "'chains' out of range".to_string())?,
            exchange_every: get_u64(v, "exchange_every", 500)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Value helpers
// ---------------------------------------------------------------------------

/// Builds a JSON object from `(key, value)` pairs (insertion order is
/// preserved on the wire).
pub fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn as_str(v: &Value, field: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!("'{field}' must be a string, got {other:?}")),
    }
}

fn as_u64(v: &Value, field: &str) -> Result<u64, String> {
    match v {
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        Value::U64(n) => Ok(*n),
        other => Err(format!(
            "'{field}' must be a non-negative integer, got {other:?}"
        )),
    }
}

fn get_u64(v: &Value, field: &str, default: u64) -> Result<u64, String> {
    match v.get(field) {
        None => Ok(default),
        Some(n) => as_u64(n, field),
    }
}

/// Reads `field` from an object as `u64`, erroring when absent.
pub fn require_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.get(field)
        .ok_or_else(|| format!("missing field '{field}'"))
        .and_then(|n| as_u64(n, field))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let body = obj(vec![("x", Value::I64(7))]);
        let bytes = encode_frame(FrameType::Job, &body);
        let (t, v) = read_frame(&mut &bytes[..], 1024).unwrap();
        assert_eq!(t, FrameType::Job);
        assert_eq!(v, body);
    }

    #[test]
    fn oversized_frame_is_rejected_before_body_read() {
        let body = obj(vec![("pad", Value::Str("x".repeat(100)))]);
        let bytes = encode_frame(FrameType::Job, &body);
        // Limit below the declared length: only the header is consumed.
        let mut reader = &bytes[..];
        match read_frame(&mut reader, 10) {
            Err(FrameError::TooLarge { len, max: 10 }) => assert!(len > 10),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(reader.len(), bytes.len() - HEADER_LEN);
    }

    #[test]
    fn bad_magic_and_truncation_are_distinguished() {
        assert!(matches!(
            read_frame(&mut &b"XXXXXXXXXXXX"[..], 1024),
            Err(FrameError::BadMagic)
        ));
        let bytes = encode_frame(FrameType::Health, &Value::Map(vec![]));
        assert!(matches!(
            read_frame(&mut &bytes[..HEADER_LEN + 1], 1024),
            Err(FrameError::Truncated)
        ));
        assert!(matches!(
            read_frame(&mut &bytes[..5], 1024),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn jobspec_roundtrips_through_value() {
        let spec = JobSpec {
            app: AppSpec::Workload {
                family: "layered-5x4".into(),
                seed: 3,
            },
            arch: ArchSpec::Family {
                family: "dual-fpga".into(),
                seed: 3,
            },
            objective: "lexi:makespan,area".into(),
            iters: 1234,
            warmup: 99,
            seed: 42,
            chains: 4,
            exchange_every: 250,
        };
        let v = spec.to_value();
        assert_eq!(JobSpec::from_value(&v).unwrap(), spec);
        // And through the actual wire bytes.
        let bytes = encode_frame(FrameType::Job, &v);
        let (_, back) = read_frame(&mut &bytes[..], 1 << 20).unwrap();
        assert_eq!(back, v);
    }
}
