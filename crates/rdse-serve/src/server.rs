//! The long-running server: TCP accept loop, session accounting, job
//! registry and lifecycle.

use crate::limits::Limits;
use crate::protocol::{obj, ErrorCode, ServeError};
use crate::transport;
use crate::worker::{self, JobRequest, ShardState};
use rdse_mapping::Pool;
use rdse_store::{ResultStore, SyncPolicy};
use serde::{Serialize, Value};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};

/// How a server is stood up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind (default `127.0.0.1`).
    pub host: String,
    /// Port to bind; `0` asks the OS for a free port — read the real
    /// one back from [`Server::local_addr`].
    pub port: u16,
    /// Worker pool lanes (each with its own warm model/arena cache).
    pub workers: usize,
    /// Per-request resource limits.
    pub limits: Limits,
    /// Path of the persistent result store (`None` = no persistence;
    /// every job explores from cold exactly as before).
    pub store: Option<PathBuf>,
    /// Fsync cadence of the store's append-only log.
    pub store_sync: SyncPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".into(),
            port: 0,
            workers: 4,
            limits: Limits::default(),
            store: None,
            store_sync: SyncPolicy::Always,
        }
    }
}

/// Lifetime counters, readable while the server runs (the `healthz`
/// endpoint reports them).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Jobs that ran to completion.
    pub jobs_served: AtomicU64,
    /// Jobs rejected or failed after admission.
    pub jobs_failed: AtomicU64,
    /// Jobs that found their `(app, arch)` models and evaluator arenas
    /// already warm on their worker.
    pub cache_hits: AtomicU64,
    /// Jobs that had to resolve models from scratch.
    pub cache_misses: AtomicU64,
    /// Jobs answered from the result store with zero search (identical
    /// content key).
    pub store_exact_hits: AtomicU64,
    /// Jobs answered by an archived run over the same `(app, arch)`
    /// and objective with an iteration budget ≥ the request's.
    pub store_dominated_hits: AtomicU64,
    /// Jobs that explored, but with chain 0 seeded from the archive.
    pub store_warm_starts: AtomicU64,
}

#[derive(Debug, Clone)]
pub(crate) enum JobState {
    Queued,
    Running,
    Done(Value),
    Failed(ServeError),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Recent job records: bounded ring, oldest evicted first.
const MAX_JOB_RECORDS: usize = 256;

#[derive(Debug, Default)]
pub(crate) struct Registry {
    next: AtomicU64,
    records: Mutex<Vec<(u64, JobState)>>,
}

impl Registry {
    pub fn register(&self) -> u64 {
        let id = self.next.fetch_add(1, Relaxed) + 1;
        let mut records = self.records.lock().expect("registry lock");
        if records.len() >= MAX_JOB_RECORDS {
            records.remove(0);
        }
        records.push((id, JobState::Queued));
        id
    }

    pub fn set_state(&self, id: u64, state: JobState) {
        let mut records = self.records.lock().expect("registry lock");
        if let Some(slot) = records.iter_mut().find(|(rid, _)| *rid == id) {
            slot.1 = state;
        }
    }

    pub fn record_value(&self, id: u64) -> Option<Value> {
        let records = self.records.lock().expect("registry lock");
        let (_, state) = records.iter().find(|(rid, _)| *rid == id)?;
        let (result, error) = match state {
            JobState::Done(v) => (v.clone(), Value::Null),
            JobState::Failed(e) => (Value::Null, e.to_value()),
            _ => (Value::Null, Value::Null),
        };
        Some(obj(vec![
            ("type", Value::Str("job".into())),
            ("job", id.to_value()),
            ("state", Value::Str(state.name().into())),
            ("result", result),
            ("error", error),
        ]))
    }
}

/// Concurrent-session gauge: a connection holds a permit from accept
/// until its job (if any) finishes streaming.
#[derive(Debug)]
pub(crate) struct SessionGauge {
    active: AtomicUsize,
    max: usize,
}

impl SessionGauge {
    fn new(max: usize) -> Arc<Self> {
        Arc::new(SessionGauge {
            active: AtomicUsize::new(0),
            max,
        })
    }

    pub fn try_acquire(self: &Arc<Self>) -> Option<SessionPermit> {
        let ok = self
            .active
            .fetch_update(Relaxed, Relaxed, |n| (n < self.max).then_some(n + 1))
            .is_ok();
        ok.then(|| SessionPermit(Arc::clone(self)))
    }

    pub fn active(&self) -> usize {
        self.active.load(Relaxed)
    }
}

/// RAII handle on one session slot.
#[derive(Debug)]
pub(crate) struct SessionPermit(Arc<SessionGauge>);

impl Drop for SessionPermit {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Relaxed);
    }
}

/// State shared with the worker pool.
#[derive(Debug)]
pub(crate) struct Core {
    pub limits: Limits,
    pub stats: ServeStats,
    pub registry: Registry,
    /// The shared result store, if persistence is on. Workers take the
    /// lock only around archive lookups and appends — never across a
    /// search — so contention stays off the hot path.
    pub store: Option<Mutex<ResultStore>>,
}

/// State shared with connection threads.
pub(crate) struct Ctx {
    pub core: Arc<Core>,
    /// The job pool: one pinned lane per shard, so jobs hashing to one
    /// shard run serially in submission order on one worker.
    pub pool: Pool,
    pub shards: Arc<Vec<Mutex<ShardState>>>,
    pub sessions: Arc<SessionGauge>,
    pub shutdown: AtomicBool,
    pub addr: SocketAddr,
    pub workers: usize,
}

impl Ctx {
    /// The `healthz` body, shared by both transports.
    pub fn health_value(&self) -> Value {
        let stats = &self.core.stats;
        obj(vec![
            ("status", Value::Str("ok".into())),
            ("version", u64::from(crate::protocol::VERSION).to_value()),
            ("jobs_served", stats.jobs_served.load(Relaxed).to_value()),
            ("jobs_failed", stats.jobs_failed.load(Relaxed).to_value()),
            (
                "evaluator_cache_hits",
                stats.cache_hits.load(Relaxed).to_value(),
            ),
            (
                "evaluator_cache_misses",
                stats.cache_misses.load(Relaxed).to_value(),
            ),
            (
                "store_exact_hits",
                stats.store_exact_hits.load(Relaxed).to_value(),
            ),
            (
                "store_dominated_hits",
                stats.store_dominated_hits.load(Relaxed).to_value(),
            ),
            (
                "store_warm_starts",
                stats.store_warm_starts.load(Relaxed).to_value(),
            ),
            (
                "store_records",
                match &self.core.store {
                    Some(s) => s.lock().expect("store lock").archive().len().to_value(),
                    None => Value::Null,
                },
            ),
            ("active_sessions", self.sessions.active().to_value()),
            ("workers", self.workers.to_value()),
        ])
    }

    /// Queues a job on its shard's pinned pool lane. On rejection the
    /// request is handed back so the caller can report the error on
    /// its own sink.
    pub fn dispatch(&self, req: Box<JobRequest>) -> Result<(), (Box<JobRequest>, ServeError)> {
        if self.shutdown.load(Relaxed) {
            return Err((
                req,
                ServeError::new(ErrorCode::Busy, "server is shutting down"),
            ));
        }
        let shard = (crate::handler::shard_hash(&req.key) % self.workers as u64) as usize;
        let core = Arc::clone(&self.core);
        let shards = Arc::clone(&self.shards);
        self.pool
            .submit_pinned(shard, move || worker::run_job(&shards[shard], &core, req));
        Ok(())
    }

    /// Flags shutdown and pokes the accept loop awake with a throwaway
    /// connection so it observes the flag.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the [`io::Error`] of a failed bind.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let workers_n = config.workers.max(1);
        let store = match &config.store {
            Some(path) => {
                let store = ResultStore::open(path, config.store_sync)?;
                if let Some(tail) = &store.replay_report().tail {
                    eprintln!(
                        "rdse serve: store {}: torn tail skipped {tail}; {} record(s) replayed",
                        path.display(),
                        store.replay_report().records
                    );
                }
                Some(Mutex::new(store))
            }
            None => None,
        };
        let core = Arc::new(Core {
            limits: config.limits.clone(),
            stats: ServeStats::default(),
            registry: Registry::default(),
            store,
        });
        let ctx = Arc::new(Ctx {
            core,
            pool: Pool::new(workers_n),
            shards: worker::shards(workers_n),
            sessions: SessionGauge::new(config.limits.max_sessions),
            shutdown: AtomicBool::new(false),
            addr,
            workers: workers_n,
        });
        Ok(Server { listener, ctx })
    }

    /// The bound address (resolves `port: 0` to the real port).
    ///
    /// # Errors
    ///
    /// Propagates the [`io::Error`] of `TcpListener::local_addr`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a shutdown frame arrives. Every accepted
    /// connection gets its own thread; queued jobs drain before the
    /// workers exit.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind; the signature
    /// leaves room for fatal accept errors.
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.ctx.shutdown.load(Relaxed) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let ctx = Arc::clone(&self.ctx);
            match ctx.sessions.try_acquire() {
                Some(permit) => {
                    let _ = thread::Builder::new()
                        .name("rdse-conn".into())
                        .spawn(move || transport::handle_connection(stream, &ctx, permit));
                }
                None => {
                    let _ = thread::Builder::new()
                        .name("rdse-busy".into())
                        .spawn(move || transport::reply_busy(stream, &ctx));
                }
            }
        }
        // Drain: pinned lanes are FIFO, so one barrier job per lane
        // acking on a channel proves every job admitted before the
        // shutdown flag has finished streaming its reply. (The pool
        // itself is torn down by `Ctx`'s drop, which drains again —
        // this barrier just makes `run` returning mean "all served".)
        let (tx, rx) = mpsc::channel();
        for lane in 0..self.ctx.workers {
            let tx = tx.clone();
            self.ctx.pool.submit_pinned(lane, move || {
                let _ = tx.send(());
            });
        }
        drop(tx);
        for _ in 0..self.ctx.workers {
            let _ = rx.recv();
        }
        Ok(())
    }

    /// Runs the server on a background thread; mainly for tests and
    /// embedding.
    ///
    /// # Errors
    ///
    /// Propagates the [`io::Error`] of `local_addr`.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let handle = thread::Builder::new()
            .name("rdse-serve".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, handle })
    }
}

/// Join handle for a [`Server::spawn`]ed server.
pub struct ServerHandle {
    addr: SocketAddr,
    handle: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down.
    ///
    /// # Errors
    ///
    /// Propagates the server loop's [`io::Error`]; a panicked server
    /// thread surfaces as [`io::ErrorKind::Other`].
    pub fn join(self) -> io::Result<()> {
        self.handle
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}
