//! The sharded worker layer, running on pinned [`rdse_mapping::Pool`]
//! lanes.
//!
//! Each shard owns a private warm cache of resolved `(app, arch)`
//! models plus their [`EvaluatorArenas`]. Jobs are routed to a lane by
//! hashing the cache key, so repeat submissions of the same pair
//! always land where the warm arenas live; pinned jobs of one lane run
//! serially in submission order on that lane's worker, so the shard
//! mutex below is uncontended on the hot path — it exists to satisfy
//! the pool's `'static + Send` job bounds, not to arbitrate.

use crate::handler;
use crate::protocol::{ErrorCode, JobSpec, ServeError};
use crate::server::{Core, JobState, SessionPermit};
use crate::transport::FrameSink;
use rdse_mapping::{CostVector, EvaluatorArenas, Mapping, Objective, Scalarizer, WarmStart};
use rdse_model::{Architecture, TaskGraph};
use rdse_store::{PairKey, StoreKey};
use serde::{Deserialize, Value};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};

/// Warm entries kept per shard before least-recently-used eviction.
const MAX_CACHE_ENTRIES: usize = 8;

/// A fully validated job, ready to run. The sink is the live client
/// connection; the permit keeps the session slot occupied until the
/// job finishes.
pub(crate) struct JobRequest {
    pub id: u64,
    pub spec: JobSpec,
    pub objective: Objective,
    pub key: String,
    pub sink: Box<dyn FrameSink>,
    #[allow(dead_code)] // held for its Drop
    pub permit: Option<SessionPermit>,
}

struct CacheEntry {
    app: TaskGraph,
    arch: Architecture,
    arenas: Vec<EvaluatorArenas>,
    last_used: u64,
}

/// One shard's warm state: the model/arena cache and its LRU clock.
#[derive(Default)]
pub(crate) struct ShardState {
    cache: HashMap<String, CacheEntry>,
    tick: u64,
}

/// Builds the per-lane shard states for an `n`-worker pool.
pub(crate) fn shards(n: usize) -> Arc<Vec<Mutex<ShardState>>> {
    Arc::new((0..n).map(|_| Mutex::new(ShardState::default())).collect())
}

/// Runs one job against its shard — the body of a pinned pool job.
///
/// The panic catch point sits *inside* the lock scope, so a panicking
/// job never poisons the shard mutex: the guard is dropped normally,
/// the entry is evicted, and the lane keeps serving.
pub(crate) fn run_job(shard: &Mutex<ShardState>, core: &Arc<Core>, mut req: Box<JobRequest>) {
    core.registry.set_state(req.id, JobState::Running);
    let mut state = shard.lock().expect("shard state lock");
    let state = &mut *state;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_one(&mut state.cache, &mut state.tick, &mut req, core)
    }));
    match outcome {
        Ok(Ok(v)) => {
            core.registry.set_state(req.id, JobState::Done(v.clone()));
            core.stats.jobs_served.fetch_add(1, Relaxed);
            req.sink.send_result(&v);
        }
        Ok(Err(e)) => {
            core.registry.set_state(req.id, JobState::Failed(e.clone()));
            core.stats.jobs_failed.fetch_add(1, Relaxed);
            req.sink.send_error(&e);
        }
        Err(_) => {
            // A panicking job must not take the lane (or the server)
            // down, and its cache entry can no longer be trusted.
            state.cache.remove(&req.key);
            let e = ServeError::new(
                ErrorCode::Internal,
                "job panicked; its evaluator cache entry was dropped",
            );
            core.registry.set_state(req.id, JobState::Failed(e.clone()));
            core.stats.jobs_failed.fetch_add(1, Relaxed);
            req.sink.send_error(&e);
        }
    }
    req.sink.finish();
}

fn run_one(
    cache: &mut HashMap<String, CacheEntry>,
    tick: &mut u64,
    req: &mut JobRequest,
    core: &Arc<Core>,
) -> Result<Value, ServeError> {
    let hit = cache.contains_key(&req.key);
    if hit {
        core.stats.cache_hits.fetch_add(1, Relaxed);
    } else {
        core.stats.cache_misses.fetch_add(1, Relaxed);
        let (app, arch) = handler::resolve_models(&req.spec, &core.limits)?;
        if cache.len() >= MAX_CACHE_ENTRIES {
            let oldest = cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(k) = oldest {
                cache.remove(&k);
            }
        }
        cache.insert(
            req.key.clone(),
            CacheEntry {
                app,
                arch,
                arenas: Vec::new(),
                last_used: 0,
            },
        );
    }
    *tick += 1;
    let entry = cache.get_mut(&req.key).expect("entry ensured above");
    entry.last_used = *tick;

    // The result store's three read paths, cheapest first: exact hit
    // (no search), dominated hit (no search), warm start (search from
    // an archived incumbent). All lookups happen under one short lock;
    // the search itself never holds it.
    let mut store_label = if core.store.is_some() { "miss" } else { "off" };
    let mut warm: Option<WarmStart> = None;
    let mut keys: Option<(StoreKey, PairKey)> = None;
    if let Some(store) = &core.store {
        let objective = req.objective;
        let (skey, pkey) = handler::store_keys(&entry.app, &entry.arch, &req.spec, &objective);
        let store = store.lock().expect("store lock");
        if let Some(record) = store.archive().exact(&skey) {
            core.stats.store_exact_hits.fetch_add(1, Relaxed);
            return Ok(handler::stored_result_value(req.id, record, hit, "exact"));
        }
        if let Some(record) =
            store
                .archive()
                .dominating(&pkey, &objective.describe(), req.spec.iters)
        {
            core.stats.store_dominated_hits.fetch_add(1, Relaxed);
            return Ok(handler::stored_result_value(
                req.id,
                record,
                hit,
                "dominated",
            ));
        }
        let candidate = store.archive().warm_candidate(&pkey, |b| {
            objective.scalarize(&CostVector {
                makespan: b.makespan_f64(),
                clb_area: b.clb_area_f64(),
                reconfig_overhead: b.reconfig_f64(),
                contexts: b.contexts_f64(),
            })
        });
        if let Some(record) = candidate {
            // An archived mapping that no longer fits the models (it
            // shouldn't — the pair key covers them) falls back to cold.
            if let Ok(mapping) = Mapping::from_value(&record.mapping) {
                core.stats.store_warm_starts.fetch_add(1, Relaxed);
                store_label = "warm";
                warm = Some(WarmStart { mapping });
            }
        }
        keys = Some((skey, pkey));
    }

    let mut arenas = std::mem::take(&mut entry.arenas);
    let result = handler::execute(
        req.id,
        &req.spec,
        req.objective,
        &entry.app,
        &entry.arch,
        &mut arenas,
        hit,
        warm,
        store_label,
        req.sink.as_mut(),
    );
    entry.arenas = arenas;
    let (value, outcome) = result?;

    // Archive the finished run. A failed append costs persistence of
    // this one result, never the job.
    if let (Some(store), Some((skey, pkey))) = (&core.store, keys) {
        let record = handler::store_record(skey, pkey, &req.spec, &req.objective, &outcome);
        if let Err(e) = store.lock().expect("store lock").append(record) {
            eprintln!("rdse serve: store append failed: {e}");
        }
    }
    Ok(value)
}
