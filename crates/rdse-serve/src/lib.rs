//! Long-running exploration service for the design-space explorer.
//!
//! `rdse-serve` turns the offline `explore` pipeline into a server:
//! clients submit exploration jobs over TCP and stream back
//! incremental Pareto-front updates followed by the final result.
//! Everything is built on `std::net` — no async runtime, no external
//! HTTP stack.
//!
//! # Architecture
//!
//! - [`protocol`] — the framed wire protocol: a 12-byte versioned
//!   header (`"RDSE"` magic, version, frame type, body length) and a
//!   UTF-8 JSON body. [`protocol::JobSpec`] is the job description.
//! - Two transports share one handler. Raw RPC speaks frames in both
//!   directions; the HTTP/1.1 adapter maps `POST /jobs`,
//!   `GET /jobs/<id>`, `GET /healthz` and `POST /shutdown` onto the
//!   same code paths, streaming job output as NDJSON. A fresh
//!   connection is classified by peeking its first four bytes.
//! - [`Server`] shards jobs across a fixed worker pool by hashing the
//!   job's `(app, arch)` content key. Each worker keeps those models
//!   and their warm [`rdse_mapping::EvaluatorArenas`] cached, so
//!   repeat submissions skip model building and arena allocation —
//!   observable as `evaluator_cache_hits` in the health report.
//! - [`Limits`] bounds every request (frame size, tasks, devices,
//!   iteration budget, chains, concurrent sessions, socket timeouts);
//!   every violation is answered with a typed
//!   [`protocol::ServeError`] frame, never a panic or a silent drop.
//!
//! Results are **bit-identical** to the offline `rdse explore` for
//! the same `(seed, chains)`: jobs run the same deterministic
//! portfolio with in-job `threads: 1`, and warm-arena revival fully
//! resynchronizes evaluator state.
//!
//! # Example
//!
//! ```
//! use rdse_serve::{client, protocol, ServeConfig, Server};
//!
//! let handle = Server::bind(ServeConfig::default()).unwrap().spawn().unwrap();
//! let addr = handle.addr().to_string();
//!
//! let spec = protocol::JobSpec {
//!     app: protocol::AppSpec::Builtin("motion".into()),
//!     arch: protocol::ArchSpec::Clbs(2000),
//!     objective: "makespan".into(),
//!     iters: 400,
//!     warmup: 100,
//!     seed: 1,
//!     chains: 1,
//!     exchange_every: 200,
//! };
//! let opts = client::ClientOptions::default();
//! let result = client::submit(&addr, &spec, &opts, |_update| {}).unwrap();
//! assert!(matches!(result.get("makespan_bits"), Some(serde::Value::Str(_))));
//!
//! client::shutdown(&addr, &opts).unwrap();
//! handle.join().unwrap();
//! ```

pub mod client;
pub mod handler;
pub mod limits;
pub mod protocol;
mod server;
mod transport;
mod worker;

pub use client::{ClientError, ClientOptions};
pub use limits::Limits;
pub use protocol::{
    AppSpec, ArchSpec, ErrorCode, FrameError, FrameType, JobSpec, ServeError, HEADER_LEN, MAGIC,
    VERSION,
};
pub use server::{ServeConfig, ServeStats, Server, ServerHandle};
pub use transport::FrameSink;
