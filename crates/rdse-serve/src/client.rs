//! Blocking client for the raw RPC transport — what `rdse submit`
//! uses, and the reference implementation of the frame protocol's
//! client side.

use crate::protocol::{encode_frame, read_frame, write_frame, FrameType, JobSpec, HEADER_LEN};
use serde::{Serialize, Value};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side socket and framing limits.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read timeout; updates arrive at least once per exchange
    /// segment, so this bounds how long a wedged server can stall us.
    pub read_timeout: Duration,
    /// Per-write timeout.
    pub write_timeout: Duration,
    /// Maximum frame body we send or accept. The client refuses to
    /// send an oversized job instead of letting the server cut the
    /// connection mid-write.
    pub max_frame_len: u32,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_frame_len: 1 << 20,
        }
    }
}

/// A client-visible failure: either a typed error frame from the
/// server (`code` is its wire name) or a local transport problem
/// (`code` is `None`).
#[derive(Debug, Clone)]
pub struct ClientError {
    /// The server's [`crate::protocol::ErrorCode`] wire name, or a
    /// client-side code like `job-too-large`; `None` for plain
    /// transport failures.
    pub code: Option<String>,
    /// Human-readable detail.
    pub message: String,
}

impl ClientError {
    fn transport(message: impl std::fmt::Display) -> Self {
        ClientError {
            code: None,
            message: message.to_string(),
        }
    }

    fn coded(code: &str, message: impl std::fmt::Display) -> Self {
        ClientError {
            code: Some(code.to_string()),
            message: message.to_string(),
        }
    }

    fn from_error_body(v: &Value) -> Self {
        let code = match v.get("code") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let message = match v.get("message") {
            Some(Value::Str(s)) => s.clone(),
            _ => "server error".into(),
        };
        ClientError { code, message }
    }

    /// Whether this is the caller's fault (malformed or over-limit
    /// input) rather than a server/transport problem — the CLI maps
    /// these to exit code 2.
    pub fn is_usage(&self) -> bool {
        matches!(
            self.code.as_deref(),
            Some(
                "bad-job"
                    | "bad-objective"
                    | "bad-json"
                    | "unknown-app"
                    | "unknown-arch"
                    | "too-many-tasks"
                    | "too-many-devices"
                    | "over-budget"
                    | "too-many-chains"
                    | "frame-too-large"
                    | "job-too-large"
            )
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.code {
            Some(code) => write!(f, "{code}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

fn connect(addr: &str, opts: &ClientOptions) -> Result<TcpStream, ClientError> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| ClientError::transport(format!("cannot resolve '{addr}': {e}")))?
        .next()
        .ok_or_else(|| ClientError::transport(format!("'{addr}' resolves to no address")))?;
    let stream = TcpStream::connect_timeout(&sock_addr, opts.connect_timeout)
        .map_err(|e| ClientError::transport(format!("cannot connect to {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(opts.read_timeout));
    let _ = stream.set_write_timeout(Some(opts.write_timeout));
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

fn request(
    addr: &str,
    opts: &ClientOptions,
    frame_type: FrameType,
    body: &Value,
    expect: FrameType,
) -> Result<Value, ClientError> {
    let mut stream = connect(addr, opts)?;
    write_frame(&mut stream, frame_type, body).map_err(ClientError::transport)?;
    let (reply_type, reply) =
        read_frame(&mut stream, opts.max_frame_len).map_err(ClientError::transport)?;
    match reply_type {
        t if t == expect => Ok(reply),
        FrameType::Error => Err(ClientError::from_error_body(&reply)),
        other => Err(ClientError::transport(format!(
            "expected a {expect:?} frame, got {other:?}"
        ))),
    }
}

/// Submits a job and blocks until the final result, invoking
/// `on_update` for every streamed update frame.
///
/// # Errors
///
/// A typed [`ClientError`] for server-side rejections (including the
/// client-side `job-too-large` pre-check) or transport failures.
pub fn submit(
    addr: &str,
    spec: &JobSpec,
    opts: &ClientOptions,
    mut on_update: impl FnMut(&Value),
) -> Result<Value, ClientError> {
    let encoded = encode_frame(FrameType::Job, &spec.to_value());
    let body_len = encoded.len() - HEADER_LEN;
    if body_len > opts.max_frame_len as usize {
        return Err(ClientError::coded(
            "job-too-large",
            format!(
                "encoded job body is {body_len} bytes; the frame limit is {} — shrink the inline models",
                opts.max_frame_len
            ),
        ));
    }
    let mut stream = connect(addr, opts)?;
    stream
        .write_all(&encoded)
        .and_then(|()| stream.flush())
        .map_err(ClientError::transport)?;
    loop {
        let (frame_type, body) =
            read_frame(&mut stream, opts.max_frame_len).map_err(ClientError::transport)?;
        match frame_type {
            FrameType::Update => on_update(&body),
            FrameType::Result => return Ok(body),
            FrameType::Error => return Err(ClientError::from_error_body(&body)),
            other => {
                return Err(ClientError::transport(format!(
                    "unexpected {other:?} frame in a job stream"
                )))
            }
        }
    }
}

/// Fetches the server's health/stats report.
///
/// # Errors
///
/// A typed [`ClientError`] on rejection or transport failure.
pub fn health(addr: &str, opts: &ClientOptions) -> Result<Value, ClientError> {
    request(
        addr,
        opts,
        FrameType::Health,
        &Value::Map(vec![]),
        FrameType::HealthReply,
    )
}

/// Asks the server to shut down after in-flight jobs finish.
///
/// # Errors
///
/// A typed [`ClientError`] on rejection or transport failure.
pub fn shutdown(addr: &str, opts: &ClientOptions) -> Result<Value, ClientError> {
    request(
        addr,
        opts,
        FrameType::Shutdown,
        &Value::Map(vec![]),
        FrameType::Bye,
    )
}

/// Looks up a job registry record by id.
///
/// # Errors
///
/// A typed [`ClientError`] (`unknown-job` when the record has been
/// evicted or never existed) or transport failure.
pub fn get_job(addr: &str, id: u64, opts: &ClientOptions) -> Result<Value, ClientError> {
    request(
        addr,
        opts,
        FrameType::GetJob,
        &crate::protocol::obj(vec![("job", id.to_value())]),
        FrameType::JobRecord,
    )
}
