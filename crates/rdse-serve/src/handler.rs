//! Transport-independent job handling: spec validation, model
//! resolution, cache keying and job execution. Both transports (raw
//! RPC and the HTTP/1.1 adapter) funnel into these functions, so a
//! job behaves identically however it arrives.

use crate::limits::Limits;
use crate::protocol::{obj, AppSpec, ArchSpec, ErrorCode, JobSpec, ServeError};
use crate::transport::FrameSink;
use rdse_corpus::{ArchFamily, WorkloadFamily};
use rdse_mapping::{
    explore_parallel_observed, CostVector, EvaluatorArenas, ExploreOptions, Objective,
    ParallelOptions, ParallelOutcome, SegmentUpdate, WarmStart,
};
use rdse_model::{Architecture, TaskGraph};
use rdse_store::{CostBits, KeySpec, PairKey, StoreKey, StoreRecord};
use rdse_workloads::{epicure_architecture, figure1_app, motion_detection_app};
use serde::{Deserialize, Serialize, Value};

/// Checks everything that can be checked without building models:
/// the objective grammar, the iteration budget and the chain count.
/// Returns the parsed [`Objective`] on success.
pub fn validate_spec(spec: &JobSpec, limits: &Limits) -> Result<Objective, ServeError> {
    let objective = Objective::parse_spec(&spec.objective)
        .map_err(|e| ServeError::new(ErrorCode::BadObjective, e))?;
    if spec.iters > limits.max_iters {
        return Err(ServeError::new(
            ErrorCode::OverBudget,
            format!(
                "iteration budget {} exceeds the server limit {}",
                spec.iters, limits.max_iters
            ),
        ));
    }
    if spec.chains == 0 {
        return Err(ServeError::new(
            ErrorCode::BadJob,
            "'chains' must be at least 1",
        ));
    }
    if spec.chains > limits.max_chains {
        return Err(ServeError::new(
            ErrorCode::TooManyChains,
            format!(
                "{} chains exceed the server limit {}",
                spec.chains, limits.max_chains
            ),
        ));
    }
    Ok(objective)
}

/// Builds the job's models and enforces the size caps. Inline models
/// are decoded from their JSON shape; named specs are generated.
pub fn resolve_models(
    spec: &JobSpec,
    limits: &Limits,
) -> Result<(TaskGraph, Architecture), ServeError> {
    let app = match &spec.app {
        AppSpec::Builtin(name) => match name.as_str() {
            "motion" => motion_detection_app(),
            "figure1" => figure1_app(),
            other => {
                return Err(ServeError::new(
                    ErrorCode::UnknownApp,
                    format!("unknown builtin app '{other}' (expected motion or figure1)"),
                ))
            }
        },
        AppSpec::Workload { family, seed } => WorkloadFamily::parse(family)
            .ok_or_else(|| {
                ServeError::new(
                    ErrorCode::UnknownApp,
                    format!("unknown workload family '{family}' (see `rdse corpus list`)"),
                )
            })?
            .generate(*seed),
        AppSpec::Inline(model) => {
            let g = TaskGraph::from_value(model)
                .map_err(|e| ServeError::new(ErrorCode::BadJob, format!("inline app: {e}")))?;
            g.validate()
                .map_err(|e| ServeError::new(ErrorCode::BadJob, format!("inline app: {e}")))?;
            g
        }
    };
    if app.n_tasks() == 0 {
        return Err(ServeError::new(
            ErrorCode::BadJob,
            "application has no tasks",
        ));
    }
    if app.n_tasks() > limits.max_tasks {
        return Err(ServeError::new(
            ErrorCode::TooManyTasks,
            format!(
                "{} tasks exceed the server limit {}",
                app.n_tasks(),
                limits.max_tasks
            ),
        ));
    }
    let arch = match &spec.arch {
        ArchSpec::Clbs(n) => epicure_architecture(*n),
        ArchSpec::Family { family, seed } => ArchFamily::parse(family)
            .ok_or_else(|| {
                ServeError::new(
                    ErrorCode::UnknownArch,
                    format!("unknown architecture family '{family}'"),
                )
            })?
            .build(*seed),
        ArchSpec::Inline(model) => Architecture::from_value(model)
            .map_err(|e| ServeError::new(ErrorCode::BadJob, format!("inline arch: {e}")))?,
    };
    let devices = arch.processors().len() + arch.drlcs().len() + arch.asics().len();
    if devices > limits.max_devices {
        return Err(ServeError::new(
            ErrorCode::TooManyDevices,
            format!(
                "{devices} devices exceed the server limit {}",
                limits.max_devices
            ),
        ));
    }
    Ok((app, arch))
}

/// Content key of a job's `(app, arch)` pair: two jobs share a warm
/// cache entry iff their keys are byte-equal. Named specs key on name
/// and seed; inline models key on their canonical JSON, so identical
/// inline submissions hit the same entry while any model difference
/// misses.
pub fn cache_key(spec: &JobSpec) -> String {
    let app = match &spec.app {
        AppSpec::Builtin(name) => format!("builtin:{name}"),
        AppSpec::Workload { family, seed } => format!("workload:{family}:s{seed}"),
        AppSpec::Inline(model) => format!(
            "inline:{}",
            serde_json::to_string(model).expect("Value serialization is infallible")
        ),
    };
    let arch = match &spec.arch {
        ArchSpec::Clbs(n) => format!("clbs:{n}"),
        ArchSpec::Family { family, seed } => format!("family:{family}:s{seed}"),
        ArchSpec::Inline(model) => format!(
            "inline:{}",
            serde_json::to_string(model).expect("Value serialization is infallible")
        ),
    };
    format!("{app}|{arch}")
}

/// FNV-1a over the cache key — the worker-shard selector. Jobs over
/// the same `(app, arch)` land on the same worker, maximizing warm
/// arena reuse.
pub fn shard_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bits_hex(f: f64) -> Value {
    Value::Str(format!("{:016x}", f.to_bits()))
}

/// Content keys of a job for the result store, hashed over the
/// **resolved** models' canonical JSON — two specs that build the same
/// models (however they were spelled) share a key, while any model,
/// objective or knob difference separates them.
pub fn store_keys(
    app: &TaskGraph,
    arch: &Architecture,
    spec: &JobSpec,
    objective: &Objective,
) -> (StoreKey, PairKey) {
    let app_json = serde_json::to_string(&app.to_value()).expect("Value serialization");
    let arch_json = serde_json::to_string(&arch.to_value()).expect("Value serialization");
    let ks = KeySpec {
        app_json: &app_json,
        arch_json: &arch_json,
        objective: &objective.describe(),
        seed: spec.seed,
        iters: spec.iters,
        warmup: spec.warmup,
        chains: spec.chains as u64,
        exchange_every: spec.exchange_every,
    };
    (ks.key(), ks.pair())
}

/// Packs a finished exploration into its archived form under `key`.
pub fn store_record(
    key: StoreKey,
    pair: PairKey,
    spec: &JobSpec,
    objective: &Objective,
    outcome: &ParallelOutcome,
) -> StoreRecord {
    let summary = outcome.evaluation.summary();
    let best = CostVector::from_summary(&summary);
    let front = outcome
        .front
        .sorted_members(|a: &CostVector, b: &CostVector| a.makespan.total_cmp(&b.makespan))
        .into_iter()
        .map(|m| CostBits::from_values(m.makespan, m.clb_area, m.reconfig_overhead, m.contexts))
        .collect();
    StoreRecord {
        key,
        pair,
        objective: objective.describe(),
        seed: spec.seed,
        chains: spec.chains as u64,
        iters: spec.iters,
        warmup: spec.warmup,
        exchange_every: spec.exchange_every,
        winner: outcome.winner as u64,
        iterations: outcome.chains.iter().map(|c| c.run.iterations).sum(),
        contexts: summary.n_contexts as u64,
        hw_tasks: summary.n_hw_tasks as u64,
        clb_area: u64::from(summary.clb_area.value()),
        makespan_bits: summary.makespan.value().to_bits(),
        best: CostBits::from_values(
            best.makespan,
            best.clb_area,
            best.reconfig_overhead,
            best.contexts,
        ),
        front,
        mapping: outcome.mapping.to_value(),
    }
}

/// The body of one streamed `Update` frame.
pub fn update_value(job: u64, u: &SegmentUpdate<'_>) -> Value {
    obj(vec![
        ("type", Value::Str("update".into())),
        ("job", job.to_value()),
        ("segment", u.segment.to_value()),
        ("iterations", u.iterations.to_value()),
        ("best_makespan", u.best.makespan.to_value()),
        ("best_makespan_bits", bits_hex(u.best.makespan)),
        ("best_cost", u.best_cost.to_value()),
        ("front_size", u.front.len().to_value()),
        ("finished", Value::Bool(u.finished)),
    ])
}

fn front_value(outcome: &ParallelOutcome) -> Value {
    let members: Vec<Value> = outcome
        .front
        .sorted_members(|a: &CostVector, b: &CostVector| a.makespan.total_cmp(&b.makespan))
        .into_iter()
        .map(|m| {
            obj(vec![
                ("makespan", m.makespan.to_value()),
                ("makespan_bits", bits_hex(m.makespan)),
                ("clb_area", (m.clb_area as u32).to_value()),
                ("reconfig", m.reconfig_overhead.to_value()),
                ("reconfig_bits", bits_hex(m.reconfig_overhead)),
                ("contexts", (m.contexts as u32).to_value()),
            ])
        })
        .collect();
    Value::Seq(members)
}

/// The body of the final `Result` frame. `store` names how the result
/// store participated: `"off"`, `"miss"`, `"warm"`, `"exact"` or
/// `"dominated"`.
pub fn result_value(
    job: u64,
    spec: &JobSpec,
    outcome: &ParallelOutcome,
    objective: &Objective,
    cache_hit: bool,
    store: &str,
) -> Value {
    let summary = outcome.evaluation.summary();
    let makespan = summary.makespan.value();
    let iterations: u64 = outcome.chains.iter().map(|c| c.run.iterations).sum();
    obj(vec![
        ("type", Value::Str("result".into())),
        ("job", job.to_value()),
        ("makespan", makespan.to_value()),
        ("makespan_bits", bits_hex(makespan)),
        ("contexts", summary.n_contexts.to_value()),
        ("hw_tasks", summary.n_hw_tasks.to_value()),
        ("clb_area", summary.clb_area.value().to_value()),
        ("objective", Value::Str(objective.describe())),
        ("seed", spec.seed.to_value()),
        ("chains", spec.chains.to_value()),
        ("winner", outcome.winner.to_value()),
        ("iterations", iterations.to_value()),
        ("front", front_value(outcome)),
        (
            "cache",
            Value::Str(if cache_hit { "hit" } else { "miss" }.into()),
        ),
        ("store", Value::Str(store.into())),
    ])
}

/// The body of a `Result` frame answered straight from the archive —
/// every float re-emitted from its stored bit pattern, so the frame is
/// bit-identical to the one the original run produced.
pub fn stored_result_value(job: u64, record: &StoreRecord, cache_hit: bool, store: &str) -> Value {
    let members: Vec<Value> = record
        .front
        .iter()
        .map(|m| {
            obj(vec![
                ("makespan", m.makespan_f64().to_value()),
                ("makespan_bits", bits_hex(m.makespan_f64())),
                ("clb_area", (m.clb_area_f64() as u32).to_value()),
                ("reconfig", m.reconfig_f64().to_value()),
                ("reconfig_bits", bits_hex(m.reconfig_f64())),
                ("contexts", (m.contexts_f64() as u32).to_value()),
            ])
        })
        .collect();
    obj(vec![
        ("type", Value::Str("result".into())),
        ("job", job.to_value()),
        ("makespan", record.makespan().to_value()),
        ("makespan_bits", bits_hex(record.makespan())),
        ("contexts", record.contexts.to_value()),
        ("hw_tasks", record.hw_tasks.to_value()),
        ("clb_area", record.clb_area.to_value()),
        ("objective", Value::Str(record.objective.clone())),
        ("seed", record.seed.to_value()),
        ("chains", record.chains.to_value()),
        ("winner", record.winner.to_value()),
        ("iterations", record.iterations.to_value()),
        ("front", Value::Seq(members)),
        (
            "cache",
            Value::Str(if cache_hit { "hit" } else { "miss" }.into()),
        ),
        ("store", Value::Str(store.into())),
    ])
}

/// Runs a validated job to completion, streaming a
/// [`SegmentUpdate`] through `sink` at every exchange barrier.
/// `arenas` follows the [`explore_parallel_observed`] contract
/// (drained on entry, refilled on exit), so the caller's warm cache
/// keeps paying off across jobs — while results stay bit-identical to
/// the offline `explore`/`explore_parallel` path for the same
/// `(seed, chains)`. A `warm` mapping (from the result store) seeds
/// chain 0; `None` is the bit-identical cold path. Returns the result
/// frame alongside the raw outcome so the caller can archive it.
#[allow(clippy::too_many_arguments)]
pub fn execute(
    job: u64,
    spec: &JobSpec,
    objective: Objective,
    app: &TaskGraph,
    arch: &Architecture,
    arenas: &mut Vec<EvaluatorArenas>,
    cache_hit: bool,
    warm: Option<WarmStart>,
    store: &str,
    sink: &mut dyn FrameSink,
) -> Result<(Value, ParallelOutcome), ServeError> {
    let popts = ParallelOptions {
        base: ExploreOptions {
            max_iterations: spec.iters,
            warmup_iterations: spec.warmup,
            seed: spec.seed,
            objective,
            ..ExploreOptions::default()
        },
        chains: spec.chains,
        // Parallelism comes from the worker pool: one job, one core.
        // Never affects results.
        threads: 1,
        exchange_every: spec.exchange_every,
        warm_start: warm,
        front_exchange: false,
    };
    let mut aborted = false;
    let outcome = explore_parallel_observed(app, arch, &popts, arenas, |u| {
        let keep = sink.send_update(&update_value(job, u));
        if !keep {
            aborted = true;
        }
        keep
    })
    .map_err(|e| ServeError::new(ErrorCode::Internal, format!("exploration failed: {e}")))?;
    if aborted {
        return Err(ServeError::new(
            ErrorCode::Aborted,
            "client disconnected mid-stream; job aborted",
        ));
    }
    let value = result_value(job, spec, &outcome, &objective, cache_hit, store);
    Ok((value, outcome))
}
