//! Property-based tests for the wire protocol: arbitrary job specs
//! must survive the encode → frame → decode round trip bit-exactly,
//! and the frame-size limit must hold exactly at the boundary.

use proptest::prelude::*;
use rdse_serve::protocol::{
    encode_frame, obj, read_frame, AppSpec, ArchSpec, FrameError, FrameType, JobSpec, HEADER_LEN,
};
use serde::Value as Json;

const APP_BUILTINS: [&str; 4] = ["motion", "figure1", "not-a-real-app", ""];
const APP_FAMILIES: [&str; 4] = ["layered", "series-parallel", "fork-join", "pipeline"];
const ARCH_FAMILIES: [&str; 4] = ["epicure", "dual-fpga", "slow-bus", "asic-assisted"];
const OBJECTIVES: [&str; 5] = [
    "makespan",
    "weighted:1,2,3",
    "weighted:0.5,0,1",
    "lexi:makespan,area",
    "lexi:contexts,makespan,area",
];

/// A small inline model stand-in: round-trip fidelity is about the
/// framing, not model semantics, so any JSON object will do (integers
/// and strings only — exactly what the real model shapes use).
fn inline_model(tag: u64, n: usize) -> Json {
    obj(vec![
        ("name", Json::Str(format!("inline-{tag}"))),
        (
            "items",
            // The textual round trip parses integers as I64, so emit
            // the canonical variant directly.
            Json::Seq((0..n).map(|i| Json::I64((tag + i as u64) as i64)).collect()),
        ),
        ("nested", obj(vec![("depth", Json::I64(tag as i64 % 100))])),
    ])
}

fn app_strategy() -> impl Strategy<Value = AppSpec> {
    (0u8..4, 0usize..4, 0u64..1_000_000, 0usize..8).prop_map(|(kind, pick, seed, n)| match kind {
        0 => AppSpec::Builtin(APP_BUILTINS[pick].to_string()),
        1 => AppSpec::Workload {
            family: APP_FAMILIES[pick].to_string(),
            seed,
        },
        _ => AppSpec::Inline(inline_model(seed, n)),
    })
}

fn arch_strategy() -> impl Strategy<Value = ArchSpec> {
    (0u8..4, 0usize..4, 0u64..1_000_000, 0u32..1_000_000).prop_map(|(kind, pick, seed, clbs)| {
        match kind {
            0 => ArchSpec::Clbs(clbs),
            1 => ArchSpec::Family {
                family: ARCH_FAMILIES[pick].to_string(),
                seed,
            },
            _ => ArchSpec::Inline(inline_model(seed ^ 0xA5C4, (clbs % 8) as usize)),
        }
    })
}

fn job_spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        app_strategy(),
        arch_strategy(),
        0usize..OBJECTIVES.len(),
        (0u64..10_000_000, 0u64..100_000, 0u64..u64::MAX / 2),
        (0usize..200, 0u64..100_000),
    )
        .prop_map(
            |(app, arch, obj_pick, (iters, warmup, seed), (chains, exchange_every))| JobSpec {
                app,
                arch,
                objective: OBJECTIVES[obj_pick].to_string(),
                iters,
                warmup,
                seed,
                chains,
                exchange_every,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn job_specs_round_trip_through_the_wire(spec in job_spec_strategy()) {
        // Spec → JSON → frame bytes → JSON → spec, all lossless. Note
        // that specs with out-of-limit budgets or unknown names still
        // round-trip: framing is structural, rejection is the server's
        // validation stage.
        let body = spec.to_value();
        let bytes = encode_frame(FrameType::Job, &body);
        prop_assert!(bytes.len() >= HEADER_LEN);
        let (frame_type, decoded) = read_frame(&mut &bytes[..], u32::MAX)
            .expect("well-formed frame");
        prop_assert_eq!(frame_type, FrameType::Job);
        prop_assert_eq!(&decoded, &body);
        let back = JobSpec::from_value(&decoded).expect("canonical shape");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn frame_size_limit_is_exact_at_the_boundary(pad in 0usize..4096, spec in job_spec_strategy()) {
        // A frame is accepted iff its body length is <= the limit —
        // equality included, off-by-one excluded — regardless of what
        // JSON it carries.
        let mut body = spec.to_value();
        if let Json::Map(entries) = &mut body {
            entries.push(("pad".to_string(), Json::Str("x".repeat(pad))));
        }
        let bytes = encode_frame(FrameType::Job, &body);
        let body_len = (bytes.len() - HEADER_LEN) as u32;

        let (_, decoded) = read_frame(&mut &bytes[..], body_len).expect("exact limit accepted");
        prop_assert_eq!(decoded, body.clone());

        match read_frame(&mut &bytes[..], body_len - 1) {
            Err(FrameError::TooLarge { len, max }) => {
                prop_assert_eq!(len, body_len);
                prop_assert_eq!(max, body_len - 1);
            }
            other => prop_assert!(false, "expected TooLarge, got {:?}", other),
        }
    }

    #[test]
    fn corrupted_headers_never_decode_as_frames(
        flip_at in 0usize..8,
        xor in 1u8..255,
        spec in job_spec_strategy(),
    ) {
        // Any single corrupted byte in magic/version/type decodes to a
        // typed FrameError, never to a frame and never to a panic.
        let mut bytes = encode_frame(FrameType::Job, &spec.to_value());
        bytes[flip_at] ^= xor;
        match read_frame(&mut &bytes[..], u32::MAX) {
            Err(
                FrameError::BadMagic | FrameError::BadVersion(_) | FrameError::UnknownType(_),
            ) => {}
            Ok((frame_type, _)) => {
                // Flipping the type field can land on another valid
                // code — legal, as long as the body still decodes.
                prop_assert!(flip_at == 6 || flip_at == 7, "type {frame_type:?}");
            }
            other => prop_assert!(false, "unexpected outcome: {:?}", other),
        }
    }
}
