//! End-to-end guarantees of the persistent result store:
//!
//! 1. **Exact hit** — resubmitting an identical job against a server
//!    that was restarted on the same store file returns the archived
//!    result with the original `f64` bit patterns and zero search,
//!    observable via `"store": "exact"` and the healthz counter.
//! 2. **Dominated hit** — a smaller-budget job over an archived
//!    `(app, arch)` and objective is answered by the bigger archived
//!    run in O(lookup).
//! 3. **Warm start** — a different-seed job over a known pair explores
//!    with chain 0 seeded from the archive (`"store": "warm"`), and the
//!    store-off path stays bit-identical to the store-on cold miss.

use rdse_serve::client::{self, ClientOptions};
use rdse_serve::protocol::{AppSpec, ArchSpec, JobSpec};
use rdse_serve::{ServeConfig, Server, ServerHandle};
use serde::Value;
use std::path::{Path, PathBuf};

fn spawn_with_store(path: &Path) -> ServerHandle {
    Server::bind(ServeConfig {
        store: Some(path.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn")
}

fn as_str(v: &Value, field: &str) -> String {
    match v.get(field) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("field '{field}' missing or not a string: {other:?}"),
    }
}

fn as_u64(v: &Value, field: &str) -> u64 {
    match v.get(field) {
        Some(Value::U64(n)) => *n,
        Some(Value::I64(n)) if *n >= 0 => *n as u64,
        other => panic!("field '{field}' missing or not an integer: {other:?}"),
    }
}

/// `(makespan_bits, per-front-member (makespan_bits, reconfig_bits, contexts))`
/// of a served result body.
fn served_bits(result: &Value) -> (String, Vec<(String, String, u64)>) {
    let Some(Value::Seq(front)) = result.get("front") else {
        panic!("result without a front: {result:?}");
    };
    let members = front
        .iter()
        .map(|m| {
            (
                as_str(m, "makespan_bits"),
                as_str(m, "reconfig_bits"),
                as_u64(m, "contexts"),
            )
        })
        .collect();
    (as_str(result, "makespan_bits"), members)
}

fn motion_spec() -> JobSpec {
    JobSpec {
        app: AppSpec::Builtin("motion".into()),
        arch: ArchSpec::Clbs(2000),
        objective: "makespan".into(),
        iters: 600,
        warmup: 150,
        seed: 1,
        chains: 2,
        exchange_every: 150,
    }
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdse_store_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn exact_hit_is_bit_identical_across_a_server_restart() {
    let path = temp_store("exact.aof");
    let _ = std::fs::remove_file(&path);
    let opts = ClientOptions::default();
    let spec = motion_spec();

    // First life: a cold miss that lands in the archive.
    let handle = spawn_with_store(&path);
    let addr = handle.addr().to_string();
    let first = client::submit(&addr, &spec, &opts, |_| {}).expect("first run");
    assert_eq!(as_str(&first, "store"), "miss");
    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");

    // Second life: replay rebuilds the archive from disk; the same job
    // must come back bit-identical with no search at all.
    let handle = spawn_with_store(&path);
    let addr = handle.addr().to_string();
    let mut updates = 0usize;
    let second = client::submit(&addr, &spec, &opts, |_| updates += 1).expect("replayed run");
    assert_eq!(as_str(&second, "store"), "exact");
    assert_eq!(updates, 0, "an exact hit must not stream search updates");
    assert_eq!(
        served_bits(&first),
        served_bits(&second),
        "archived result lost bits across the restart"
    );
    assert_eq!(as_u64(&first, "iterations"), as_u64(&second, "iterations"));

    let health = client::health(&addr, &opts).expect("health");
    assert_eq!(as_u64(&health, "store_exact_hits"), 1);
    assert_eq!(as_u64(&health, "store_records"), 1);

    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn dominated_and_warm_paths_answer_from_the_archive() {
    let path = temp_store("paths.aof");
    let _ = std::fs::remove_file(&path);
    let opts = ClientOptions::default();
    let handle = spawn_with_store(&path);
    let addr = handle.addr().to_string();

    let big = motion_spec();
    let first = client::submit(&addr, &big, &opts, |_| {}).expect("archive run");
    assert_eq!(as_str(&first, "store"), "miss");

    // Same pair, same objective, smaller budget: the archived bigger
    // run dominates and answers without searching.
    let small = JobSpec {
        iters: 300,
        warmup: 75,
        ..motion_spec()
    };
    let dominated = client::submit(&addr, &small, &opts, |_| {}).expect("dominated run");
    assert_eq!(as_str(&dominated, "store"), "dominated");
    assert_eq!(
        served_bits(&dominated),
        served_bits(&first),
        "dominated hit must return the archived front"
    );

    // Same pair but a bigger budget: nothing dominates, so the job
    // explores — warm-started from the archived winner.
    let bigger = JobSpec {
        iters: 900,
        warmup: 225,
        seed: 17,
        ..motion_spec()
    };
    let warm = client::submit(&addr, &bigger, &opts, |_| {}).expect("warm run");
    assert_eq!(as_str(&warm, "store"), "warm");

    let health = client::health(&addr, &opts).expect("health");
    assert_eq!(as_u64(&health, "store_dominated_hits"), 1);
    assert_eq!(as_u64(&health, "store_warm_starts"), 1);
    assert_eq!(as_u64(&health, "store_exact_hits"), 0);

    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn store_off_and_store_miss_results_are_bit_identical() {
    let opts = ClientOptions::default();
    let spec = motion_spec();

    // Store off: today's path, "store": "off".
    let handle = Server::bind(ServeConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = handle.addr().to_string();
    let off = client::submit(&addr, &spec, &opts, |_| {}).expect("store-off run");
    assert_eq!(as_str(&off, "store"), "off");
    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");

    // Store on, empty archive: the cold miss must not perturb a bit.
    let path = temp_store("identity.aof");
    let _ = std::fs::remove_file(&path);
    let handle = spawn_with_store(&path);
    let addr = handle.addr().to_string();
    let miss = client::submit(&addr, &spec, &opts, |_| {}).expect("store-miss run");
    assert_eq!(as_str(&miss, "store"), "miss");
    assert_eq!(
        served_bits(&off),
        served_bits(&miss),
        "an empty store changed the cold path"
    );
    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");
}
