//! Abuse-resistance tests: every malformed, oversized, truncated or
//! over-limit input must come back as a typed error frame — the server
//! never panics, never hangs, never silently drops a connection.

use rdse_serve::client::{self, ClientOptions};
use rdse_serve::protocol::{
    encode_frame, read_frame, AppSpec, ArchSpec, FrameType, JobSpec, MAGIC, VERSION,
};
use rdse_serve::{Limits, ServeConfig, Server, ServerHandle};
use serde::Value;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn spawn_with(limits: Limits) -> ServerHandle {
    Server::bind(ServeConfig {
        host: "127.0.0.1".into(),
        port: 0,
        workers: 2,
        limits,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn")
}

/// A raw test socket with timeouts so no assertion can hang the suite.
fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Reads one frame and asserts it is a typed error with `code`.
fn expect_error_code(stream: &mut TcpStream, code: &str) -> String {
    let (frame_type, body) = read_frame(stream, 1 << 20).expect("a reply frame, not a hang/drop");
    assert_eq!(frame_type, FrameType::Error, "body: {body:?}");
    let Some(Value::Str(got)) = body.get("code") else {
        panic!("error frame without a code: {body:?}");
    };
    assert_eq!(got, code, "body: {body:?}");
    let Some(Value::Str(message)) = body.get("message") else {
        panic!("error frame without a message: {body:?}");
    };
    assert!(!message.is_empty());
    message.clone()
}

fn shut_down(handle: ServerHandle) {
    let addr = handle.addr().to_string();
    client::shutdown(&addr, &ClientOptions::default()).expect("shutdown ack");
    handle.join().expect("clean server exit");
}

fn motion_spec() -> JobSpec {
    JobSpec {
        app: AppSpec::Builtin("motion".into()),
        arch: ArchSpec::Clbs(2000),
        objective: "makespan".into(),
        iters: 200,
        warmup: 50,
        seed: 1,
        chains: 1,
        exchange_every: 100,
    }
}

fn header(frame_type: FrameType, len: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(12);
    h.extend_from_slice(&MAGIC);
    h.extend_from_slice(&VERSION.to_be_bytes());
    h.extend_from_slice(&frame_type.code().to_be_bytes());
    h.extend_from_slice(&len.to_be_bytes());
    h
}

#[test]
fn oversized_frame_is_rejected_with_a_typed_error() {
    let handle = spawn_with(Limits {
        max_frame_len: 1024,
        ..Limits::default()
    });
    let mut stream = raw_connect(&handle);
    // Header declares a body far beyond the limit; the server must
    // refuse before reading (or allocating) any of it.
    stream.write_all(&header(FrameType::Job, 1 << 30)).unwrap();
    let message = expect_error_code(&mut stream, "frame-too-large");
    assert!(message.contains("1024"), "message: {message}");
    drop(stream);
    shut_down(handle);
}

#[test]
fn truncated_frame_is_rejected_with_a_typed_error() {
    let handle = spawn_with(Limits::default());
    let mut stream = raw_connect(&handle);
    // Promise 100 body bytes, deliver 10, then close the write side.
    stream.write_all(&header(FrameType::Job, 100)).unwrap();
    stream.write_all(b"0123456789").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    expect_error_code(&mut stream, "truncated-frame");
    drop(stream);
    shut_down(handle);
}

#[test]
fn garbage_bytes_get_a_bad_magic_error() {
    let handle = spawn_with(Limits::default());
    let mut stream = raw_connect(&handle);
    stream
        .write_all(&[0x00, 0xFF, 0x13, 0x37, 0xDE, 0xAD])
        .unwrap();
    expect_error_code(&mut stream, "bad-magic");
    drop(stream);
    shut_down(handle);
}

#[test]
fn wrong_protocol_version_gets_a_typed_error() {
    let handle = spawn_with(Limits::default());
    let mut stream = raw_connect(&handle);
    let mut h = Vec::new();
    h.extend_from_slice(&MAGIC);
    h.extend_from_slice(&99u16.to_be_bytes());
    h.extend_from_slice(&FrameType::Health.code().to_be_bytes());
    h.extend_from_slice(&0u32.to_be_bytes());
    stream.write_all(&h).unwrap();
    expect_error_code(&mut stream, "bad-version");
    drop(stream);
    shut_down(handle);
}

#[test]
fn response_frame_type_as_request_gets_a_typed_error() {
    let handle = spawn_with(Limits::default());
    let mut stream = raw_connect(&handle);
    stream
        .write_all(&encode_frame(FrameType::Result, &Value::Map(vec![])))
        .unwrap();
    expect_error_code(&mut stream, "unknown-type");
    drop(stream);
    shut_down(handle);
}

#[test]
fn malformed_json_body_gets_a_typed_error() {
    let handle = spawn_with(Limits::default());
    let mut stream = raw_connect(&handle);
    let body = b"{\"app\": oops";
    stream
        .write_all(&header(FrameType::Job, body.len() as u32))
        .unwrap();
    stream.write_all(body).unwrap();
    expect_error_code(&mut stream, "bad-json");
    drop(stream);
    shut_down(handle);
}

#[test]
fn over_limit_jobs_are_rejected_with_specific_codes() {
    let handle = spawn_with(Limits {
        max_iters: 1_000,
        max_chains: 4,
        max_tasks: 12,
        ..Limits::default()
    });
    let addr = handle.addr().to_string();
    let opts = ClientOptions::default();

    let cases: Vec<(JobSpec, &str)> = vec![
        (
            JobSpec {
                iters: 1_001,
                ..motion_spec()
            },
            "over-budget",
        ),
        (
            JobSpec {
                chains: 5,
                ..motion_spec()
            },
            "too-many-chains",
        ),
        (
            JobSpec {
                chains: 0,
                ..motion_spec()
            },
            "bad-job",
        ),
        (
            JobSpec {
                objective: "weighted:1,2".into(),
                ..motion_spec()
            },
            "bad-objective",
        ),
        (
            JobSpec {
                app: AppSpec::Builtin("no-such-app".into()),
                ..motion_spec()
            },
            "unknown-app",
        ),
        (
            JobSpec {
                // figure1's 10 tasks pass the cap, so resolution
                // reaches the architecture and fails there.
                app: AppSpec::Builtin("figure1".into()),
                arch: ArchSpec::Family {
                    family: "no-such-arch".into(),
                    seed: 1,
                },
                ..motion_spec()
            },
            "unknown-arch",
        ),
        // motion has 28 tasks; the server caps at 12.
        (motion_spec(), "too-many-tasks"),
    ];
    for (spec, want) in cases {
        let err = client::submit(&addr, &spec, &opts, |_| {})
            .expect_err(&format!("{want} job must be rejected"));
        assert_eq!(err.code.as_deref(), Some(want), "message: {}", err.message);
        assert!(err.is_usage(), "{want} should map to a usage error");
    }
    shut_down(handle);
}

#[test]
fn client_refuses_to_send_an_oversized_job() {
    // No server needed: the pre-check fires before connecting.
    let opts = ClientOptions {
        max_frame_len: 64,
        ..ClientOptions::default()
    };
    let err = client::submit("127.0.0.1:9", &motion_spec(), &opts, |_| {})
        .expect_err("oversized job must be refused locally");
    assert_eq!(err.code.as_deref(), Some("job-too-large"));
    assert!(err.is_usage());
}

#[test]
fn session_limit_answers_busy_and_recovers() {
    let handle = spawn_with(Limits {
        max_sessions: 1,
        read_timeout: Duration::from_secs(3),
        ..Limits::default()
    });
    let addr = handle.addr().to_string();
    // Hold the only session slot with an idle connection.
    let hog = raw_connect(&handle);
    std::thread::sleep(Duration::from_millis(200));
    let mut second = raw_connect(&handle);
    second
        .write_all(&encode_frame(FrameType::Health, &Value::Map(vec![])))
        .unwrap();
    expect_error_code(&mut second, "busy");
    drop(second);
    // Releasing the hog frees the slot; health succeeds again.
    drop(hog);
    let opts = ClientOptions::default();
    let mut healthy = false;
    for _ in 0..50 {
        if client::health(&addr, &opts).is_ok() {
            healthy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(healthy, "session slot was never released");
    shut_down(handle);
}

#[test]
fn slow_loris_sender_times_out_with_a_typed_error() {
    let handle = spawn_with(Limits {
        read_timeout: Duration::from_millis(300),
        ..Limits::default()
    });
    // Complete magic, then stall mid-header: the frame read must time
    // out and answer rather than hold the session forever.
    let mut stream = raw_connect(&handle);
    stream.write_all(&MAGIC).unwrap();
    stream.write_all(&VERSION.to_be_bytes()).unwrap();
    expect_error_code(&mut stream, "timeout");
    drop(stream);

    // Stall before even four bytes arrive: transport sniffing itself
    // must give up with the same typed error.
    let mut stream = raw_connect(&handle);
    stream.write_all(&MAGIC[..2]).unwrap();
    expect_error_code(&mut stream, "timeout");
    drop(stream);
    shut_down(handle);
}

#[test]
fn http_oversized_body_and_unknown_route_get_typed_replies() {
    let handle = spawn_with(Limits {
        max_frame_len: 512,
        ..Limits::default()
    });
    // Declared Content-Length beyond the frame limit → 413 + typed body.
    let mut stream = raw_connect(&handle);
    stream
        .write_all(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 100000\r\n\r\n")
        .unwrap();
    let reply = read_to_string(&mut stream);
    assert!(reply.starts_with("HTTP/1.1 413"), "reply: {reply}");
    assert!(reply.contains("frame-too-large"), "reply: {reply}");

    // Unknown route → 404 + typed body.
    let mut stream = raw_connect(&handle);
    stream
        .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let reply = read_to_string(&mut stream);
    assert!(reply.starts_with("HTTP/1.1 404"), "reply: {reply}");
    assert!(reply.contains("bad-request"), "reply: {reply}");
    shut_down(handle);
}

fn read_to_string(stream: &mut TcpStream) -> String {
    use std::io::Read;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read HTTP reply");
    String::from_utf8_lossy(&buf).into_owned()
}
