//! End-to-end guarantees of the serving path:
//!
//! 1. A served job's result is **bit-identical** to the offline
//!    `explore_parallel` for the same `(seed, chains)` — makespan and
//!    every Pareto-front member, compared via `f64::to_bits`.
//! 2. Submitting the same job twice (warm-arena path) and against a
//!    restarted server changes nothing.
//! 3. Warm-arena reuse is observable: the health report's
//!    `evaluator_cache_hits` goes above zero on the second submission.

use rdse_corpus::{ArchFamily, WorkloadFamily};
use rdse_mapping::{explore_parallel, CostVector, ExploreOptions, ParallelOptions};
use rdse_model::{Architecture, TaskGraph};
use rdse_serve::client::{self, ClientOptions};
use rdse_serve::protocol::{AppSpec, ArchSpec, JobSpec};
use rdse_serve::{ServeConfig, Server, ServerHandle};
use rdse_workloads::{epicure_architecture, motion_detection_app};
use serde::Value;

fn spawn_server() -> ServerHandle {
    Server::bind(ServeConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn as_str(v: &Value, field: &str) -> String {
    match v.get(field) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("field '{field}' missing or not a string: {other:?}"),
    }
}

fn as_u64(v: &Value, field: &str) -> u64 {
    match v.get(field) {
        Some(Value::U64(n)) => *n,
        Some(Value::I64(n)) if *n >= 0 => *n as u64,
        other => panic!("field '{field}' missing or not an integer: {other:?}"),
    }
}

/// `(makespan_bits, per-front-member (makespan_bits, reconfig_bits, contexts))`
/// of a served result body.
fn served_bits(result: &Value) -> (String, Vec<(String, String, u64)>) {
    let Some(Value::Seq(front)) = result.get("front") else {
        panic!("result without a front: {result:?}");
    };
    let members = front
        .iter()
        .map(|m| {
            (
                as_str(m, "makespan_bits"),
                as_str(m, "reconfig_bits"),
                as_u64(m, "contexts"),
            )
        })
        .collect();
    (as_str(result, "makespan_bits"), members)
}

/// The same fingerprint computed by the **offline** engine. Threads
/// are deliberately left at "all cores": thread count must not change
/// the result, so this also cross-checks the served single-threaded
/// runs against a multi-threaded offline portfolio.
fn offline_bits(
    app: &TaskGraph,
    arch: &Architecture,
    spec: &JobSpec,
) -> (String, Vec<(String, String, u64)>) {
    let outcome = explore_parallel(
        app,
        arch,
        &ParallelOptions {
            base: ExploreOptions {
                max_iterations: spec.iters,
                warmup_iterations: spec.warmup,
                seed: spec.seed,
                ..ExploreOptions::default()
            },
            chains: spec.chains,
            threads: 0,
            exchange_every: spec.exchange_every,
            warm_start: None,
            front_exchange: false,
        },
    )
    .expect("offline exploration succeeds");
    let makespan = outcome.evaluation.summary().makespan.value();
    let members = outcome
        .front
        .sorted_members(|a: &CostVector, b: &CostVector| a.makespan.total_cmp(&b.makespan))
        .into_iter()
        .map(|m| {
            (
                format!("{:016x}", m.makespan.to_bits()),
                format!("{:016x}", m.reconfig_overhead.to_bits()),
                m.contexts as u64,
            )
        })
        .collect();
    (format!("{:016x}", makespan.to_bits()), members)
}

fn motion_spec() -> JobSpec {
    JobSpec {
        app: AppSpec::Builtin("motion".into()),
        arch: ArchSpec::Clbs(2000),
        objective: "makespan".into(),
        iters: 600,
        warmup: 150,
        seed: 1,
        chains: 2,
        exchange_every: 150,
    }
}

#[test]
fn served_motion_job_is_bit_identical_to_offline_explore() {
    let handle = spawn_server();
    let addr = handle.addr().to_string();
    let opts = ClientOptions::default();

    let spec = motion_spec();
    let mut updates = 0usize;
    let result = client::submit(&addr, &spec, &opts, |_| updates += 1).expect("job succeeds");
    assert!(updates > 0, "no incremental updates were streamed");

    let offline = offline_bits(&motion_detection_app(), &epicure_architecture(2000), &spec);
    assert_eq!(served_bits(&result), offline, "served ≠ offline");
    assert!(!offline.1.is_empty(), "empty Pareto front");

    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn corpus_scenario_job_is_bit_identical_to_offline_explore() {
    let handle = spawn_server();
    let addr = handle.addr().to_string();
    let opts = ClientOptions::default();

    let spec = JobSpec {
        app: AppSpec::Workload {
            family: "pipeline".into(),
            seed: 3,
        },
        arch: ArchSpec::Family {
            family: "dual-fpga".into(),
            seed: 3,
        },
        objective: "makespan".into(),
        iters: 500,
        warmup: 120,
        seed: 7,
        chains: 2,
        exchange_every: 125,
    };
    let result = client::submit(&addr, &spec, &opts, |_| {}).expect("job succeeds");

    let app = WorkloadFamily::parse("pipeline")
        .expect("family")
        .generate(3);
    let arch = ArchFamily::parse("dual-fpga").expect("family").build(3);
    assert_eq!(
        served_bits(&result),
        offline_bits(&app, &arch, &spec),
        "served scenario ≠ offline"
    );

    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn resubmission_and_restart_are_deterministic_and_hit_the_warm_cache() {
    let handle = spawn_server();
    let addr = handle.addr().to_string();
    let opts = ClientOptions::default();
    let spec = motion_spec();

    let first = client::submit(&addr, &spec, &opts, |_| {}).expect("first run");
    assert_eq!(as_str(&first, "cache"), "miss");

    // Same (app, arch) again: lands on the same worker shard, revives
    // the warm evaluator arenas, and must not perturb a single bit.
    let second = client::submit(&addr, &spec, &opts, |_| {}).expect("second run");
    assert_eq!(as_str(&second, "cache"), "hit");
    assert_eq!(served_bits(&first), served_bits(&second));

    let health = client::health(&addr, &opts).expect("health");
    assert!(
        as_u64(&health, "evaluator_cache_hits") > 0,
        "warm-arena reuse not observable in healthz: {health:?}"
    );
    assert_eq!(as_u64(&health, "jobs_served"), 2);

    // The registry remembers both runs.
    let record = client::get_job(&addr, as_u64(&first, "job"), &opts).expect("record");
    assert_eq!(as_str(&record, "state"), "done");

    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");

    // A cold restart reproduces the identical result.
    let handle = spawn_server();
    let addr = handle.addr().to_string();
    let third = client::submit(&addr, &spec, &opts, |_| {}).expect("post-restart run");
    assert_eq!(
        served_bits(&first),
        served_bits(&third),
        "restart changed bits"
    );

    client::shutdown(&addr, &opts).expect("shutdown");
    handle.join().expect("clean exit");
}
