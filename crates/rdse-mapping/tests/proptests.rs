//! Property-based tests: the move engine must preserve every invariant
//! under arbitrary random walks, and the cached evaluation must always
//! agree with a from-scratch evaluation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdse_anneal::Problem;
use rdse_mapping::moves::{propose_impl_move, propose_pair_move};
use rdse_mapping::{
    evaluate, random_initial, Cost, Evaluator, ExploreOptions, Explorer, MappingProblem,
    MoveScratch, Pool,
};
use rdse_model::units::{Bytes, Clbs, Micros};
use rdse_model::{Architecture, HwImpl, TaskGraph};
use std::sync::Arc;

/// Builds a random layered application from a compact recipe.
fn build_app(n_tasks: usize, edge_density: u8, hw_seed: u64) -> TaskGraph {
    let mut app = TaskGraph::new("prop");
    let mut rng = StdRng::seed_from_u64(hw_seed);
    for i in 0..n_tasks {
        let n_impls = rng.random_range(0..4usize);
        let impls = (0..n_impls)
            .map(|_| {
                HwImpl::new(
                    Clbs::new(rng.random_range(20..200)),
                    Micros::new(rng.random_range(1.0..50.0)),
                )
            })
            .collect();
        app.add_task(
            format!("t{i}"),
            "F",
            Micros::new(rng.random_range(10.0..500.0)),
            impls,
        )
        .expect("valid task");
    }
    for a in 0..n_tasks {
        for b in (a + 1)..n_tasks {
            if rng.random_range(0..100) < edge_density as u32 {
                app.add_data_edge(
                    rdse_model::TaskId(a as u32),
                    rdse_model::TaskId(b as u32),
                    Bytes::new(rng.random_range(1..5000)),
                )
                .expect("valid edge");
            }
        }
    }
    app
}

fn arch(clbs: u32) -> Architecture {
    Architecture::builder("soc")
        .processor("cpu", 1.0)
        .drlc("fpga", Clbs::new(clbs), Micros::new(5.0), 1.0)
        .bus_rate(50.0)
        .build()
        .expect("valid architecture")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_walks_preserve_all_invariants(
        n_tasks in 3usize..16,
        density in 5u8..40,
        seed in 0u64..1_000_000,
        clbs in 100u32..600,
    ) {
        let app = build_app(n_tasks, density, seed);
        let arch = arch(clbs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let initial = random_initial(&app, &arch, &mut rng);
        let mut problem = MappingProblem::new(&app, &arch, initial)
            .expect("initial solution feasible");
        for step in 0..200u32 {
            let class = (step % 2) as usize;
            if let Some((mv, new_cost)) = problem.try_move(&mut rng, class) {
                // Cached cost equals a fresh evaluation.
                let fresh = evaluate(&app, &arch, problem.mapping()).expect("feasible");
                prop_assert!((fresh.makespan.value() - new_cost.scalar()).abs() < 1e-9);
                problem.mapping().validate(&app, &arch).expect("valid after move");
                if step % 3 == 0 {
                    let cost_before = problem.cost();
                    problem.undo(mv);
                    prop_assert!(problem.cost().scalar() <= cost_before.scalar() + 1e9); // sanity
                    let fresh = evaluate(&app, &arch, problem.mapping()).expect("feasible");
                    prop_assert!((fresh.makespan.value() - problem.cost().scalar()).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn makespan_never_below_critical_path_lower_bound(
        n_tasks in 3usize..12,
        density in 5u8..40,
        seed in 0u64..1_000_000,
    ) {
        let app = build_app(n_tasks, density, seed);
        let arch = arch(400);
        let mut rng = StdRng::seed_from_u64(seed);
        // Lower bound: every task needs at least its fastest execution.
        let fastest: f64 = app
            .tasks()
            .map(|(_, t)| {
                t.fastest_hw()
                    .map(|i| i.time().value().min(t.sw_time().value()))
                    .unwrap_or(t.sw_time().value())
            })
            .fold(0.0, f64::max);
        for _ in 0..10 {
            let m = random_initial(&app, &arch, &mut rng);
            let eval = evaluate(&app, &arch, &m).expect("feasible");
            prop_assert!(eval.makespan.value() + 1e-9 >= fastest);
        }
    }

    #[test]
    fn move_delta_undo_is_bit_identical(
        n_tasks in 3usize..16,
        density in 5u8..40,
        seed in 0u64..1_000_000,
        clbs in 100u32..600,
    ) {
        // For random move sequences, applying a MoveDelta's undo must
        // leave the mapping bit-identical (full structural equality,
        // including processor-order positions and context task slots)
        // to a clone taken before the move.
        let app = build_app(n_tasks, density, seed);
        let arch = arch(clbs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut scratch = MoveScratch::default();
        let mut mapping = random_initial(&app, &arch, &mut rng);
        for step in 0..300u32 {
            let before = mapping.clone();
            let outcome = if step % 2 == 0 {
                propose_pair_move(&app, &arch, &mut mapping, &mut rng, &mut scratch)
            } else {
                propose_impl_move(&app, &arch, &mut mapping, &mut rng, &mut scratch)
            };
            match outcome {
                None => prop_assert_eq!(&mapping, &before, "None must leave mapping unchanged"),
                Some(out) => {
                    // Undo on a scratch copy restores bit-identity...
                    let mut undone = mapping.clone();
                    out.delta.undo(&mut undone);
                    prop_assert_eq!(&undone, &before, "delta undo diverged at step {}", step);
                    // ...and the walk continues from the applied state
                    // (undoing every other move to cover redo-after-undo).
                    if step % 3 == 0 {
                        out.delta.undo(&mut mapping);
                        prop_assert_eq!(&mapping, &before);
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_evaluation_matches_from_scratch(
        n_tasks in 3usize..16,
        density in 5u8..40,
        seed in 0u64..1_000_000,
        clbs in 100u32..600,
    ) {
        // On every accepted state of a random walk, the arena-backed
        // Evaluator must return the same summary — makespan to the bit
        // — as a from-scratch evaluate() of the same mapping.
        let app = build_app(n_tasks, density, seed);
        let arch = arch(clbs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
        let initial = random_initial(&app, &arch, &mut rng);
        let mut evaluator = Evaluator::new(&app, &arch);
        let mut problem = MappingProblem::new(&app, &arch, initial)
            .expect("initial solution feasible");
        for step in 0..200u32 {
            let class = (step % 2) as usize;
            if let Some((mv, new_cost)) = problem.try_move(&mut rng, class) {
                let summary = evaluator.evaluate(problem.mapping()).expect("feasible");
                let fresh = evaluate(&app, &arch, problem.mapping()).expect("feasible");
                prop_assert_eq!(
                    summary.makespan.value().to_bits(),
                    fresh.makespan.value().to_bits()
                );
                prop_assert_eq!(summary, fresh.summary());
                prop_assert_eq!(new_cost.scalar().to_bits(), fresh.makespan.value().to_bits());
                if step % 3 == 0 {
                    problem.undo(mv);
                    let fresh = evaluate(&app, &arch, problem.mapping()).expect("feasible");
                    prop_assert_eq!(problem.cost().scalar().to_bits(), fresh.makespan.value().to_bits());
                }
            }
        }
        // The walk warmed the arenas: steady state is allocation-free.
        prop_assert!(evaluator.stats().arenas_warm() || evaluator.stats().evaluations == 0);
    }

    #[test]
    fn batch_evaluation_matches_sequential(
        n_tasks in 3usize..14,
        density in 5u8..40,
        seed in 0u64..1_000_000,
        clbs in 100u32..600,
    ) {
        // evaluate_batch must be indistinguishable, bit for bit, from
        // evaluating each candidate one at a time: same summaries for
        // feasible candidates, same error classification for
        // infeasible ones, and the evaluator must land back on the
        // base afterwards. Candidates are arbitrary multi-move
        // perturbations of the base, not just single moves.
        let app = build_app(n_tasks, density, seed);
        let arch = arch(clbs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
        let mut scratch = MoveScratch::default();
        let base = random_initial(&app, &arch, &mut rng);
        let mut batch_eval = Evaluator::new(&app, &arch);
        let mut seq_eval = Evaluator::new(&app, &arch);
        for _round in 0..4u32 {
            let mut candidates = Vec::new();
            for c in 0..6u32 {
                let mut cand = base.clone();
                for step in 0..=(c % 3) {
                    let _ = if (c + step) % 2 == 0 {
                        propose_pair_move(&app, &arch, &mut cand, &mut rng, &mut scratch)
                    } else {
                        propose_impl_move(&app, &arch, &mut cand, &mut rng, &mut scratch)
                    };
                }
                candidates.push(cand);
            }
            let results = batch_eval
                .evaluate_batch(&base, &candidates)
                .expect("base is feasible")
                .to_vec();
            prop_assert_eq!(results.len(), candidates.len());
            for (cand, got) in candidates.iter().zip(&results) {
                let fresh = evaluate(&app, &arch, cand);
                let seq = seq_eval.evaluate(cand);
                match (got, fresh, seq) {
                    (Ok(b), Ok(f), Ok(s)) => {
                        prop_assert_eq!(
                            b.makespan.value().to_bits(),
                            f.makespan.value().to_bits()
                        );
                        prop_assert_eq!(*b, f.summary());
                        prop_assert_eq!(*b, s);
                    }
                    (Err(be), Err(fe), Err(se)) => {
                        prop_assert_eq!(be, &fe);
                        prop_assert_eq!(be, &se);
                    }
                    (b, f, _) => prop_assert!(
                        false,
                        "batch/sequential disagree on feasibility: {:?} vs {:?}",
                        b,
                        f
                    ),
                }
            }
            // The batch left the evaluator synchronized to the base: a
            // no-op delta walk from here must agree with a fresh eval.
            let back = batch_eval.evaluate(&base).expect("base still feasible");
            let fresh = evaluate(&app, &arch, &base).expect("base feasible");
            prop_assert_eq!(back, fresh.summary());
        }
        // Repeated batches over the same shapes run in warm arenas.
        prop_assert!(batch_eval.stats().arenas_warm());
    }

    #[test]
    fn speculative_walk_equals_sequential_walk(
        n_tasks in 4usize..14,
        density in 5u8..40,
        seed in 0u64..1_000_000,
        clbs in 150u32..600,
        width in 2usize..9,
        workers in 1usize..5,
    ) {
        // For arbitrary application/platform pairs and an arbitrary
        // speculation width, the speculative walk must replay the
        // sequential walk bit for bit: same best mapping, same cost
        // bits, same accept/reject/infeasible ledger. Both walks run in
        // ragged segments so rounds straddle segment boundaries; final
        // equality also certifies the RNG stream position matched at
        // every boundary (a drifted stream cannot reconverge).
        let app = build_app(n_tasks, density, seed);
        let arch = arch(clbs);
        let opts = ExploreOptions {
            max_iterations: 600,
            warmup_iterations: 120,
            seed,
            ..ExploreOptions::default()
        };
        let mut seq = Explorer::new(&app, &arch, &opts).expect("feasible initial");
        while seq.run_segment(137) {}
        let seq = seq.into_outcome();

        let spec_opts = ExploreOptions { speculate: width, ..opts };
        let mut spec = Explorer::new(&app, &arch, &spec_opts).expect("feasible initial");
        spec.set_speculation_pool(Arc::new(Pool::new(workers)));
        while spec.run_segment(137) {}
        let spec = spec.into_outcome();

        prop_assert_eq!(&seq.mapping, &spec.mapping);
        prop_assert_eq!(seq.run.best_cost.to_bits(), spec.run.best_cost.to_bits());
        prop_assert_eq!(
            seq.evaluation.makespan.value().to_bits(),
            spec.evaluation.makespan.value().to_bits()
        );
        prop_assert_eq!(seq.run.iterations, spec.run.iterations);
        prop_assert_eq!(seq.run.accepted, spec.run.accepted);
        prop_assert_eq!(seq.run.rejected, spec.run.rejected);
        prop_assert_eq!(seq.run.infeasible, spec.run.infeasible);
    }

    #[test]
    fn snapshot_restore_roundtrip(
        n_tasks in 3usize..10,
        seed in 0u64..1_000_000,
    ) {
        let app = build_app(n_tasks, 20, seed);
        let arch = arch(300);
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = random_initial(&app, &arch, &mut rng);
        let mut problem = MappingProblem::new(&app, &arch, initial)
            .expect("feasible");
        let snap = problem.snapshot();
        let cost0 = problem.cost();
        for step in 0..50u32 {
            let _ = problem.try_move(&mut rng, (step % 2) as usize);
        }
        problem.restore(&snap);
        prop_assert_eq!(problem.cost(), cost0);
        problem.mapping().validate(&app, &arch).expect("valid after restore");
    }
}
