//! The mapping problem's multi-objective cost vector.
//!
//! The paper's design space trades schedule latency against FPGA area
//! and reconfiguration overhead (§5, Fig. 3). [`CostVector`] is that
//! trade-off as a first-class value: a `Copy` projection of the
//! [`EvalSummary`] the incremental evaluator already produces, so
//! deriving it costs a few register moves and **no additional
//! evaluation work on the hot path**.
//!
//! Objective axes, in index order (all minimized):
//!
//! | index | axis | unit | source |
//! |-------|------|------|--------|
//! | 0 | [`makespan`](CostVector::makespan) | µs | longest path of *G′* |
//! | 1 | [`clb_area`](CostVector::clb_area) | CLBs | peak context occupancy |
//! | 2 | [`reconfig_overhead`](CostVector::reconfig_overhead) | µs | initial + dynamic reconfiguration |
//! | 3 | [`contexts`](CostVector::contexts) | count | temporal partitions |
//!
//! The default scalar view ([`Cost::scalar`]) is the makespan, so a
//! run with no explicit scalarizer reproduces the historical
//! single-objective engine bit for bit.

use crate::eval::EvalSummary;
use rdse_anneal::Cost;

/// Index of the makespan objective.
pub const OBJ_MAKESPAN: usize = 0;
/// Index of the FPGA-area objective (peak context CLBs).
pub const OBJ_CLB_AREA: usize = 1;
/// Index of the reconfiguration-overhead objective.
pub const OBJ_RECONFIG: usize = 2;
/// Index of the context-count objective.
pub const OBJ_CONTEXTS: usize = 3;
/// Number of objective axes of a [`CostVector`].
pub const N_OBJECTIVES: usize = 4;

/// One named objective axis of the mapping cost vector, as selected by
/// CLI specs like `--objective lexi:makespan,area`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveKey {
    /// Schedule latency (µs).
    Makespan,
    /// Peak context CLB occupancy.
    ClbArea,
    /// Total reconfiguration overhead (µs).
    Reconfig,
    /// Number of contexts.
    Contexts,
}

impl ObjectiveKey {
    /// The axis index of this key inside a [`CostVector`].
    pub fn index(self) -> usize {
        match self {
            ObjectiveKey::Makespan => OBJ_MAKESPAN,
            ObjectiveKey::ClbArea => OBJ_CLB_AREA,
            ObjectiveKey::Reconfig => OBJ_RECONFIG,
            ObjectiveKey::Contexts => OBJ_CONTEXTS,
        }
    }

    /// Parses a CLI axis name (`makespan`, `area`, `reconfig`,
    /// `contexts`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "makespan" => Some(ObjectiveKey::Makespan),
            "area" | "clb_area" => Some(ObjectiveKey::ClbArea),
            "reconfig" => Some(ObjectiveKey::Reconfig),
            "contexts" => Some(ObjectiveKey::Contexts),
            _ => None,
        }
    }

    /// The canonical axis name.
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveKey::Makespan => "makespan",
            ObjectiveKey::ClbArea => "area",
            ObjectiveKey::Reconfig => "reconfig",
            ObjectiveKey::Contexts => "contexts",
        }
    }
}

/// The multi-objective cost of one mapping: (makespan, peak CLB area,
/// reconfiguration overhead, context count), all minimized.
///
/// Derived from an [`EvalSummary`] by [`from_summary`]
/// (`Copy`-cheap, no evaluation work); recorded by the annealing
/// engine per accepted move and archived in
/// [`ParetoFront`](rdse_anneal::ParetoFront)s across chains, sweeps
/// and the corpus.
///
/// [`from_summary`]: CostVector::from_summary
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostVector {
    /// Schedule latency (µs) — the longest path of the search graph.
    pub makespan: f64,
    /// Peak context CLB occupancy: the smallest device that could host
    /// the mapping.
    pub clb_area: f64,
    /// Initial + dynamic reconfiguration time (µs).
    pub reconfig_overhead: f64,
    /// Number of run-time contexts.
    pub contexts: f64,
}

impl CostVector {
    /// Projects an evaluation summary onto the objective axes. Pure
    /// field reads plus one addition — safe on the annealing hot path.
    pub fn from_summary(summary: &EvalSummary) -> Self {
        CostVector {
            makespan: summary.makespan.value(),
            clb_area: f64::from(summary.clb_area.value()),
            reconfig_overhead: summary.breakdown.initial_reconfig.value()
                + summary.breakdown.dynamic_reconfig.value(),
            contexts: summary.n_contexts as f64,
        }
    }

    /// Value of the axis selected by `key`.
    pub fn get(&self, key: ObjectiveKey) -> f64 {
        self.objective(key.index())
    }
}

impl Cost for CostVector {
    fn n_objectives(&self) -> usize {
        N_OBJECTIVES
    }

    fn objective(&self, i: usize) -> f64 {
        match i {
            OBJ_MAKESPAN => self.makespan,
            OBJ_CLB_AREA => self.clb_area,
            OBJ_RECONFIG => self.reconfig_overhead,
            OBJ_CONTEXTS => self.contexts,
            _ => panic!("CostVector has {N_OBJECTIVES} objectives, asked for {i}"),
        }
    }

    /// The default scalar view is the makespan — the paper's fixed
    /// architecture experiment ("the criterion to be optimized becomes
    /// here the execution time"), and the bit-identity anchor of the
    /// historical engine.
    fn scalar(&self) -> f64 {
        self.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalBreakdown;
    use rdse_anneal::Dominance;
    use rdse_model::units::{Clbs, Micros};

    fn summary(mk: f64, area: u32, init: f64, dynr: f64, ctx: usize) -> EvalSummary {
        EvalSummary {
            makespan: Micros::new(mk),
            n_contexts: ctx,
            n_hw_tasks: 3,
            clb_area: Clbs::new(area),
            breakdown: EvalBreakdown {
                initial_reconfig: Micros::new(init),
                dynamic_reconfig: Micros::new(dynr),
                computation_communication: Micros::new(mk - init - dynr),
            },
        }
    }

    #[test]
    fn from_summary_projects_the_axes() {
        let v = CostVector::from_summary(&summary(100.0, 250, 10.0, 5.0, 2));
        assert_eq!(v.makespan, 100.0);
        assert_eq!(v.clb_area, 250.0);
        assert_eq!(v.reconfig_overhead, 15.0);
        assert_eq!(v.contexts, 2.0);
        assert_eq!(v.scalar(), 100.0);
        assert_eq!(v.objective(OBJ_CLB_AREA), 250.0);
        assert_eq!(v.get(ObjectiveKey::Reconfig), 15.0);
    }

    #[test]
    fn dominance_minimizes_every_axis() {
        let a = CostVector::from_summary(&summary(90.0, 200, 8.0, 4.0, 2));
        let b = CostVector::from_summary(&summary(100.0, 250, 10.0, 5.0, 2));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Incomparable: better makespan, worse area.
        let c = CostVector::from_summary(&summary(80.0, 300, 8.0, 4.0, 2));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        // Equal vectors never dominate each other.
        assert!(!a.dominates(&a));
    }

    #[test]
    fn objective_keys_round_trip() {
        for key in [
            ObjectiveKey::Makespan,
            ObjectiveKey::ClbArea,
            ObjectiveKey::Reconfig,
            ObjectiveKey::Contexts,
        ] {
            assert_eq!(ObjectiveKey::parse(key.name()), Some(key));
        }
        assert_eq!(ObjectiveKey::parse("energy"), None);
    }
}
