//! Construction of the search graph *G′* (§3.3, §4.3).
//!
//! `G′ = <V ∪ {source}, E ∪ Esw ∪ Ehw>` where
//!
//! * `E` are the application's precedence edges, weighted by the bus
//!   transfer time `qij / D` when the edge crosses device boundaries
//!   and 0 when producer and consumer share a device;
//! * `Esw` are zero-weight sequentialization edges enforcing the total
//!   execution order on each processor (consecutive tasks in the
//!   order);
//! * `Ehw` are context sequentialization edges from every *terminal*
//!   node of context `k` to every *initial* node of context `k+1`,
//!   weighted `tR × nCLB(k+1)` — the partial reconfiguration time of
//!   the incoming context. The initial configuration of the first
//!   context is modelled the same way with edges from the virtual
//!   source (so Fig. 3's "initial reconfiguration time" is part of the
//!   makespan).
//!
//! Node weights are the task execution times under the mapping's
//! placements and implementation choices. A cycle in *G′* means the
//! candidate schedule is infeasible and the move that produced it is
//! discarded (§4.3).

use crate::error::MappingError;
use crate::placement::ResourceRef;
use crate::solution::Mapping;
use rdse_graph::{DenseDag, LongestPath, NodeId};
use rdse_model::{Architecture, TaskGraph, TaskId};

/// The materialized search graph of one candidate mapping, in CSR form
/// ([`DenseDag`]): flat `u32` edge slabs and structure-of-arrays
/// weights, built once per evaluation and read-only afterwards.
#[derive(Debug, Clone)]
pub struct SearchGraph {
    graph: DenseDag,
    node_weights: Vec<f64>,
    n_tasks: usize,
}

/// `true` if two placements share a physical device, in which case
/// communication between them does not use the shared bus.
pub fn same_device(a: ResourceRef, b: ResourceRef) -> bool {
    match (a, b) {
        (ResourceRef::Processor(x), ResourceRef::Processor(y)) => x == y,
        (ResourceRef::Context { drlc: x, .. }, ResourceRef::Context { drlc: y, .. }) => x == y,
        (ResourceRef::Asic(x), ResourceRef::Asic(y)) => x == y,
        _ => false,
    }
}

impl SearchGraph {
    /// Index of the virtual source node (used for the initial
    /// reconfiguration edges).
    pub fn source(&self) -> NodeId {
        NodeId(self.n_tasks as u32)
    }

    /// Builds *G′* for `mapping`.
    ///
    /// The construction itself cannot fail (any index inconsistency is
    /// a programming error and panics); feasibility is determined later
    /// by [`SearchGraph::longest_path`].
    pub fn build(app: &TaskGraph, arch: &Architecture, mapping: &Mapping) -> Self {
        let n = app.n_tasks();
        let source = n as u32;
        let mut node_weights = vec![0.0; n + 1];
        for t in app.task_ids() {
            node_weights[t.index()] = mapping.exec_time(app, t).value();
        }

        // Collect the edge list in the canonical insertion order (data,
        // Esw, Ehw), then freeze it into CSR in one pass.
        let mut edges: Vec<(u32, u32, f64)> = Vec::with_capacity(app.edges().len() + n);

        // Base precedence edges with communication weights.
        let bus = arch.bus();
        for e in app.edges() {
            let (ra, rb) = (mapping.resource(e.from), mapping.resource(e.to));
            let w = if same_device(ra, rb) {
                0.0
            } else {
                bus.transfer_time(e.bytes).value()
            };
            edges.push((e.from.0, e.to.0, w));
        }

        // Esw: processor total orders.
        for p in 0..arch.processors().len() {
            let order = mapping.proc_order(p);
            for pair in order.windows(2) {
                edges.push((pair[0].0, pair[1].0, 0.0));
            }
        }

        // Ehw: context sequentialization with reconfiguration weights.
        for (d, spec) in arch.drlcs().iter().enumerate() {
            let ctxs = mapping.contexts(d);
            for (k, ctx) in ctxs.iter().enumerate() {
                let reconfig = spec
                    .reconfiguration_time(mapping.context_clbs(app, d, k))
                    .value();
                let initials = context_initials(app, ctx.tasks());
                if k == 0 {
                    for &t in &initials {
                        edges.push((source, t.0, reconfig));
                    }
                } else {
                    let terminals = context_terminals(app, ctxs[k - 1].tasks());
                    for &from in &terminals {
                        for &to in &initials {
                            edges.push((from.0, to.0, reconfig));
                        }
                    }
                }
            }
        }

        let graph = DenseDag::from_edges(n + 1, &edges, &node_weights)
            .expect("search-graph nodes exist and tasks never self-depend");

        SearchGraph {
            graph,
            node_weights,
            n_tasks: n,
        }
    }

    /// The underlying CSR graph (tasks `0..n` plus the source).
    pub fn graph(&self) -> &DenseDag {
        &self.graph
    }

    /// Node weights (execution times in µs; source weight 0).
    pub fn node_weights(&self) -> &[f64] {
        &self.node_weights
    }

    /// Number of task nodes (excluding the virtual source).
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Longest path of *G′* (the §4.4 evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::CyclicSchedule`] if the sequentialization
    /// edges close a cycle (an infeasible order).
    pub fn longest_path(&self) -> Result<LongestPath, MappingError> {
        self.graph
            .longest_path()
            .map_err(|_| MappingError::CyclicSchedule)
    }
}

/// Initial nodes of a context: tasks whose immediate predecessors are
/// all outside the context (§3.3).
pub fn context_initials(app: &TaskGraph, tasks: &[TaskId]) -> Vec<TaskId> {
    let inside = |t: TaskId| tasks.contains(&t);
    tasks
        .iter()
        .copied()
        .filter(|&t| !app.edges().iter().any(|e| e.to == t && inside(e.from)))
        .collect()
}

/// Terminal nodes of a context: tasks whose immediate successors are
/// all outside the context (§3.3).
pub fn context_terminals(app: &TaskGraph, tasks: &[TaskId]) -> Vec<TaskId> {
    let inside = |t: TaskId| tasks.contains(&t);
    tasks
        .iter()
        .copied()
        .filter(|&t| !app.edges().iter().any(|e| e.from == t && inside(e.to)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_model::units::{Bytes, Clbs, Micros};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    /// Chain a(10) -> b(20) -> c(5); a and b have hardware impls.
    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("fx");
        let a = app
            .add_task(
                "a",
                "F",
                us(10.0),
                vec![HwImpl::new(Clbs::new(100), us(2.0))],
            )
            .unwrap();
        let b = app
            .add_task(
                "b",
                "G",
                us(20.0),
                vec![HwImpl::new(Clbs::new(150), us(3.0))],
            )
            .unwrap();
        let c = app.add_task("c", "H", us(5.0), vec![]).unwrap();
        app.add_data_edge(a, b, Bytes::new(1000)).unwrap();
        app.add_data_edge(b, c, Bytes::new(2000)).unwrap();
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(200), us(0.1), 1.0)
            .bus_rate(100.0) // 1000 bytes -> 10 µs
            .build()
            .unwrap();
        (app, arch)
    }

    fn topo(app: &TaskGraph) -> Vec<TaskId> {
        rdse_graph::topo_sort(&app.precedence_graph())
            .unwrap()
            .into_iter()
            .map(TaskId::from)
            .collect()
    }

    #[test]
    fn all_software_makespan_is_sum_of_sw_times() {
        let (app, arch) = fixture();
        let m = Mapping::all_software(&app, &arch, topo(&app));
        let sg = SearchGraph::build(&app, &arch, &m);
        let lp = sg.longest_path().unwrap();
        // Same device: zero comm. 10 + 20 + 5.
        assert_eq!(lp.makespan(), 35.0);
    }

    #[test]
    fn hw_placement_adds_comm_and_reconfig() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        // Move b to hardware, context 0 (150 CLBs -> reconfig 15 µs).
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 0, 0);
        let sg = SearchGraph::build(&app, &arch, &m);
        let lp = sg.longest_path().unwrap();
        // Path: max( reconfig 15, a(10) + comm 10 ) + b_hw(3) + comm 20 + c(5)
        // = max(15, 20) + 3 + 20 + 5 = 48.
        assert_eq!(lp.makespan(), 48.0);
    }

    #[test]
    fn initial_reconfig_floors_start_time() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        // Move a (a source task) to hardware: its start must wait for
        // the initial configuration (100 CLBs × 0.1 = 10 µs).
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0);
        let sg = SearchGraph::build(&app, &arch, &m);
        let lp = sg.longest_path().unwrap();
        // a: starts at 10 (reconfig), runs 2 -> 12; comm 10 -> b starts 22,
        // ends 42; comm 20 (cross: b sw? no b is sw, same cpu as c -> 0).
        // Wait: a(hw) -> b(sw): comm 10. b(20) -> c same device comm 0, c 5.
        // makespan = 10 + 2 + 10 + 20 + 5 = 47.
        assert_eq!(lp.makespan(), 47.0);
        assert_eq!(lp.completion(TaskId(0).node()), 12.0);
    }

    #[test]
    fn two_contexts_sequentialize_with_reconfig() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0); // ctx0: a, 100 CLBs
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 1, 0); // ctx1: b, 150 CLBs
        let sg = SearchGraph::build(&app, &arch, &m);
        let lp = sg.longest_path().unwrap();
        // a: reconfig 10 + 2 = 12. b: max(data: 12 + 0 (same device),
        // ctx handover: 12 + 15) = 27 + 3 = 30. c: 30 + comm 20 + 5 = 55.
        assert_eq!(lp.makespan(), 55.0);
    }

    #[test]
    fn infeasible_order_detected_as_cycle() {
        let (app, arch) = fixture();
        // Order c before a on the processor although a ⇝ c.
        let m = Mapping::all_software(&app, &arch, vec![TaskId(2), TaskId(0), TaskId(1)]);
        let sg = SearchGraph::build(&app, &arch, &m);
        assert_eq!(sg.longest_path(), Err(MappingError::CyclicSchedule));
    }

    #[test]
    fn backwards_context_order_is_cyclic() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 0, 0); // ctx0: b
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 1, 0); // ctx1: a, but a ⇝ b!
        let sg = SearchGraph::build(&app, &arch, &m);
        assert_eq!(sg.longest_path(), Err(MappingError::CyclicSchedule));
    }

    #[test]
    fn initials_and_terminals() {
        let (app, _) = fixture();
        // Context holding a and b (a -> b inside).
        let tasks = vec![TaskId(0), TaskId(1)];
        assert_eq!(context_initials(&app, &tasks), vec![TaskId(0)]);
        assert_eq!(context_terminals(&app, &tasks), vec![TaskId(1)]);
        // Independent tasks are both initial and terminal.
        let only_c = vec![TaskId(2)];
        assert_eq!(context_initials(&app, &only_c), vec![TaskId(2)]);
        assert_eq!(context_terminals(&app, &only_c), vec![TaskId(2)]);
    }

    #[test]
    fn same_device_rules() {
        use ResourceRef::*;
        assert!(same_device(Processor(0), Processor(0)));
        assert!(!same_device(Processor(0), Processor(1)));
        assert!(same_device(
            Context {
                drlc: 0,
                context: 1
            },
            Context {
                drlc: 0,
                context: 5
            }
        ));
        assert!(!same_device(
            Context {
                drlc: 0,
                context: 1
            },
            Context {
                drlc: 1,
                context: 1
            }
        ));
        assert!(!same_device(Processor(0), Asic(0)));
        assert!(same_device(Asic(1), Asic(1)));
    }
}
