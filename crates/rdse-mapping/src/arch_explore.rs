//! Architecture exploration — the m3/m4 moves of §4.2.
//!
//! "Moves m3 and m4 would allow the exploration of the system
//! architecture if it were not fixed a priori": drawing the sentinel
//! index 0 for the source requests *resource removal* (m3 — a resource
//! hosting a single task is deleted and its task reassigned), drawing 0
//! for the destination requests *resource creation* (m4 — a new
//! processor, ASIC or DRLC is added and the source task assigned to
//! it). The paper's experiments set the probability of 0 to zero; this
//! module implements the general method of \[11\], where the objective is
//! the system **cost** under a performance constraint.
//!
//! New resources are drawn from a [`ResourceCatalog`] (the component
//! library a system architect would select from); each catalog entry
//! carries the cost used by the objective.

use crate::error::MappingError;
use crate::eval::{evaluate, Evaluation};
use crate::init::random_initial;
use crate::moves::{propose_impl_move, propose_pair_move, MoveScratch};
use crate::placement::Placement;
use crate::solution::Mapping;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rdse_anneal::{Annealer, Cost, LamSchedule, ParetoFront, Problem, RunOptions};
use rdse_model::units::Micros;
use rdse_model::{Architecture, AsicSpec, DrlcSpec, ProcessorSpec, TaskGraph};

/// The cost vector of an architecture × mapping pair: system cost
/// (component prices) against schedule latency — the trade-off the
/// general method of \[11\] explores.
///
/// The third, hidden component is the deadline-penalized scalar the
/// annealer walks on ([`Cost::scalar`]); the Pareto axes are the two
/// visible objectives only, so the recorded front is the cost/
/// performance curve a system architect actually reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchCost {
    /// Total component cost of the architecture.
    pub system_cost: f64,
    /// Makespan of the mapping on it (µs).
    pub makespan: f64,
    /// The penalized scalar objective (cost + deadline penalty +
    /// makespan tie-breaker) — what acceptance minimizes.
    penalized: f64,
}

impl ArchCost {
    /// The penalized scalar the annealer minimizes.
    pub fn penalized(&self) -> f64 {
        self.penalized
    }
}

impl Cost for ArchCost {
    fn n_objectives(&self) -> usize {
        2
    }

    fn objective(&self, i: usize) -> f64 {
        match i {
            0 => self.system_cost,
            1 => self.makespan,
            _ => panic!("ArchCost has 2 objectives, asked for {i}"),
        }
    }

    fn scalar(&self) -> f64 {
        self.penalized
    }
}

/// The component library available to m4 resource-creation moves.
#[derive(Debug, Clone, Default)]
pub struct ResourceCatalog {
    /// Processors that may be instantiated.
    pub processors: Vec<ProcessorSpec>,
    /// Reconfigurable devices that may be instantiated.
    pub drlcs: Vec<DrlcSpec>,
    /// Dedicated circuits that may be instantiated.
    pub asics: Vec<AsicSpec>,
}

impl ResourceCatalog {
    fn n_kinds(&self) -> usize {
        usize::from(!self.processors.is_empty())
            + usize::from(!self.drlcs.is_empty())
            + usize::from(!self.asics.is_empty())
    }
}

/// Options for a cost-driven architecture exploration.
#[derive(Debug, Clone)]
pub struct ArchExploreOptions {
    /// Iteration budget.
    pub max_iterations: u64,
    /// Warm-up iterations at infinite temperature.
    pub warmup_iterations: u64,
    /// Lam quality factor.
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
    /// The performance constraint.
    pub deadline: Micros,
    /// Cost units charged per microsecond of deadline violation (keep
    /// large: feasibility first).
    pub penalty_per_micro: f64,
    /// Weight of the raw makespan in the cost (small tie-breaker so
    /// faster solutions win among equal-cost architectures).
    pub makespan_weight: f64,
}

impl Default for ArchExploreOptions {
    fn default() -> Self {
        ArchExploreOptions {
            max_iterations: 20_000,
            warmup_iterations: 2_000,
            lambda: 0.5,
            seed: 0,
            deadline: Micros::new(f64::INFINITY),
            penalty_per_micro: 10.0,
            makespan_weight: 1e-6,
        }
    }
}

/// Outcome of an architecture exploration.
#[derive(Debug, Clone)]
pub struct ArchExploreOutcome {
    /// The selected architecture.
    pub architecture: Architecture,
    /// The mapping on that architecture.
    pub mapping: Mapping,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Final objective value.
    pub cost: f64,
    /// Pareto front over (system cost, makespan) of every architecture
    /// × mapping state the walk accepted — the cost/performance curve
    /// of the co-exploration.
    pub front: ParetoFront<ArchCost>,
}

/// The co-exploration problem: architecture × mapping.
#[derive(Debug, Clone)]
pub struct ArchProblem<'a> {
    app: &'a TaskGraph,
    catalog: &'a ResourceCatalog,
    arch: Architecture,
    mapping: Mapping,
    current: Evaluation,
    scratch: MoveScratch,
    opts: ArchExploreOptions,
}

impl<'a> ArchProblem<'a> {
    /// Starts from a given architecture and a random mapping on it.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] if no feasible initial mapping exists.
    pub fn new(
        app: &'a TaskGraph,
        initial_arch: Architecture,
        catalog: &'a ResourceCatalog,
        opts: ArchExploreOptions,
    ) -> Result<Self, MappingError> {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xA5C4);
        let mapping = random_initial(app, &initial_arch, &mut rng);
        let current = evaluate(app, &initial_arch, &mapping)?;
        Ok(ArchProblem {
            app,
            catalog,
            arch: initial_arch,
            mapping,
            current,
            scratch: MoveScratch::default(),
            opts,
        })
    }

    fn objective(&self, eval: &Evaluation) -> f64 {
        let excess = (eval.makespan.value() - self.opts.deadline.value()).max(0.0);
        self.arch.total_cost()
            + excess * self.opts.penalty_per_micro
            + eval.makespan.value() * self.opts.makespan_weight
    }

    /// The current architecture.
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// Consumes the problem into its outcome parts, attaching the
    /// cost/performance front recorded by the annealer.
    pub fn into_outcome(self, front: ParetoFront<ArchCost>) -> ArchExploreOutcome {
        let cost = self.objective(&self.current);
        ArchExploreOutcome {
            architecture: self.arch,
            mapping: self.mapping,
            evaluation: self.current,
            cost,
            front,
        }
    }

    /// m4: instantiate a random catalog component and move one task
    /// onto it. Returns `false` if nothing could be created.
    fn create_resource(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.catalog.n_kinds() == 0 || self.app.n_tasks() == 0 {
            return false;
        }
        // Rebuild the architecture with one extra component.
        let kind = rng.random_range(0..3usize);
        let mut b = Architecture::builder(self.arch.name().to_owned());
        for p in self.arch.processors() {
            b = b.processor(p.name().to_owned(), p.cost());
        }
        for d in self.arch.drlcs() {
            b = b.drlc(
                d.name().to_owned(),
                d.n_clbs(),
                d.reconfig_time_per_clb(),
                d.cost(),
            );
        }
        for a in self.arch.asics() {
            b = b.asic(a.name().to_owned(), a.cost());
        }
        b = b.bus_rate(self.arch.bus().bytes_per_micro());
        match kind {
            0 if !self.catalog.processors.is_empty() => {
                let spec =
                    &self.catalog.processors[rng.random_range(0..self.catalog.processors.len())];
                b = b.processor(spec.name().to_owned(), spec.cost());
                self.arch = b.build().expect("extended architecture stays valid");
                let p = self.mapping.add_processor_slot();
                // Assign a random task to the new processor.
                let t = rdse_model::TaskId(rng.random_range(0..self.app.n_tasks() as u32));
                self.mapping.detach(t);
                self.mapping.insert_software(t, p, 0);
                true
            }
            1 if !self.catalog.drlcs.is_empty() => {
                let spec = &self.catalog.drlcs[rng.random_range(0..self.catalog.drlcs.len())];
                b = b.drlc(
                    spec.name().to_owned(),
                    spec.n_clbs(),
                    spec.reconfig_time_per_clb(),
                    spec.cost(),
                );
                self.arch = b.build().expect("extended architecture stays valid");
                let d = self.mapping.add_drlc_slot();
                // Assign a random hardware-capable, fitting task.
                let cap = spec.n_clbs();
                let candidates: Vec<rdse_model::TaskId> = self
                    .app
                    .tasks()
                    .filter(|(_, t)| t.hw_impls().iter().any(|i| i.clbs() <= cap))
                    .map(|(id, _)| id)
                    .collect();
                if candidates.is_empty() {
                    return true; // architecture changed; empty device is legal
                }
                let t = candidates[rng.random_range(0..candidates.len())];
                let impls = self.app.task(t).expect("task id in range").hw_impls();
                let fitting: Vec<usize> = (0..impls.len())
                    .filter(|&i| impls[i].clbs() <= cap)
                    .collect();
                let choice = fitting[rng.random_range(0..fitting.len())];
                self.mapping.detach(t);
                self.mapping.insert_new_context(t, d, 0, choice);
                true
            }
            _ if !self.catalog.asics.is_empty() => {
                let spec = &self.catalog.asics[rng.random_range(0..self.catalog.asics.len())];
                b = b.asic(spec.name().to_owned(), spec.cost());
                self.arch = b.build().expect("extended architecture stays valid");
                let a = self.arch.asics().len() - 1;
                let candidates: Vec<rdse_model::TaskId> = self
                    .app
                    .tasks()
                    .filter(|(_, t)| !t.hw_impls().is_empty())
                    .map(|(id, _)| id)
                    .collect();
                if let Some(&t) = candidates.first() {
                    self.mapping.detach(t);
                    self.mapping.insert_asic(t, a);
                }
                true
            }
            _ => false,
        }
    }

    /// m3: remove a resource hosting at most one task, reassigning that
    /// task to processor 0. Returns `false` when no resource can go.
    fn remove_resource(&mut self, rng: &mut dyn RngCore) -> bool {
        // Candidate kinds: extra processors (never processor 0 — the
        // fallback host), DRLCs with ≤ 1 hardware task, ASICs with ≤ 1.
        let mut options: Vec<(usize, usize)> = Vec::new(); // (kind, index)
        for p in 1..self.arch.processors().len() {
            if self.mapping.proc_order(p).len() <= 1 {
                options.push((0, p));
            }
        }
        for d in 0..self.arch.drlcs().len() {
            let n_tasks: usize = self.mapping.contexts(d).iter().map(|c| c.len()).sum();
            if n_tasks <= 1 {
                options.push((1, d));
            }
        }
        for a in 0..self.arch.asics().len() {
            let n_tasks = self
                .app
                .task_ids()
                .filter(|&t| self.mapping.placement(t) == Placement::Asic { asic: a })
                .count();
            if n_tasks <= 1 {
                options.push((2, a));
            }
        }
        let Some(&(kind, idx)) = options.get(rng.random_range(0..options.len().max(1))) else {
            return false;
        };

        // Move the (single) hosted task to processor 0's end.
        let hosted: Vec<rdse_model::TaskId> = self
            .app
            .task_ids()
            .filter(|&t| match (kind, self.mapping.placement(t)) {
                (0, Placement::Software { processor }) => processor == idx,
                (1, Placement::Hardware { drlc, .. }) => drlc == idx,
                (2, Placement::Asic { asic }) => asic == idx,
                _ => false,
            })
            .collect();
        for t in hosted {
            self.mapping.detach(t);
            let end = self.mapping.proc_order(0).len();
            self.mapping.insert_software(t, 0, end);
        }

        // Rebuild the architecture without the component and renumber.
        let mut b = Architecture::builder(self.arch.name().to_owned());
        for (i, p) in self.arch.processors().iter().enumerate() {
            if !(kind == 0 && i == idx) {
                b = b.processor(p.name().to_owned(), p.cost());
            }
        }
        for (i, d) in self.arch.drlcs().iter().enumerate() {
            if !(kind == 1 && i == idx) {
                b = b.drlc(
                    d.name().to_owned(),
                    d.n_clbs(),
                    d.reconfig_time_per_clb(),
                    d.cost(),
                );
            }
        }
        for (i, a) in self.arch.asics().iter().enumerate() {
            if !(kind == 2 && i == idx) {
                b = b.asic(a.name().to_owned(), a.cost());
            }
        }
        b = b.bus_rate(self.arch.bus().bytes_per_micro());
        self.arch = b.build().expect("reduced architecture keeps processor 0");
        match kind {
            0 => self.mapping.remove_processor_slot(idx),
            1 => self.mapping.remove_drlc_slot(idx),
            _ => self.mapping.remove_asic_slot(idx),
        }
        true
    }
}

impl Problem for ArchProblem<'_> {
    type Move = (Architecture, Mapping, Evaluation);
    type Snapshot = (Architecture, Mapping, Evaluation);
    type Cost = ArchCost;

    fn cost(&self) -> ArchCost {
        ArchCost {
            system_cost: self.arch.total_cost(),
            makespan: self.current.makespan.value(),
            penalized: self.objective(&self.current),
        }
    }

    fn n_move_classes(&self) -> usize {
        3
    }

    fn try_move(&mut self, rng: &mut dyn RngCore, class: usize) -> Option<(Self::Move, ArchCost)> {
        let prev = (
            self.arch.clone(),
            self.mapping.clone(),
            self.current.clone(),
        );
        let changed = match class {
            0 => propose_pair_move(
                self.app,
                &self.arch,
                &mut self.mapping,
                rng,
                &mut self.scratch,
            )
            .is_some(),
            1 => propose_impl_move(
                self.app,
                &self.arch,
                &mut self.mapping,
                rng,
                &mut self.scratch,
            )
            .is_some(),
            _ => {
                // m3/m4, drawn with equal probability.
                if rng.random::<bool>() {
                    self.create_resource(rng)
                } else {
                    self.remove_resource(rng)
                }
            }
        };
        if !changed {
            self.arch = prev.0;
            self.mapping = prev.1;
            self.current = prev.2;
            return None;
        }
        match evaluate(self.app, &self.arch, &self.mapping) {
            Ok(eval) => {
                self.current = eval;
                let cost = self.cost();
                Some((prev, cost))
            }
            Err(_) => {
                self.arch = prev.0;
                self.mapping = prev.1;
                self.current = prev.2;
                None
            }
        }
    }

    fn undo(&mut self, mv: Self::Move) {
        self.arch = mv.0;
        self.mapping = mv.1;
        self.current = mv.2;
    }

    fn snapshot(&self) -> Self::Snapshot {
        (
            self.arch.clone(),
            self.mapping.clone(),
            self.current.clone(),
        )
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        self.arch = snapshot.0.clone();
        self.mapping = snapshot.1.clone();
        self.current = snapshot.2.clone();
    }

    fn observables(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("arch_cost", self.arch.total_cost()),
            ("makespan_ms", self.current.makespan.as_millis()),
            ("n_drlcs", self.arch.drlcs().len() as f64),
            ("n_processors", self.arch.processors().len() as f64),
        ]
    }
}

/// Runs a full cost-driven architecture exploration.
///
/// # Errors
///
/// Returns a [`MappingError`] if the initial architecture admits no
/// feasible mapping.
pub fn explore_architecture(
    app: &TaskGraph,
    initial_arch: Architecture,
    catalog: &ResourceCatalog,
    opts: &ArchExploreOptions,
) -> Result<ArchExploreOutcome, MappingError> {
    let problem = ArchProblem::new(app, initial_arch, catalog, opts.clone())?;
    let schedule = LamSchedule::new(opts.lambda);
    let mut annealer = Annealer::new(
        problem,
        schedule,
        RunOptions {
            max_iterations: opts.max_iterations,
            warmup_iterations: opts.warmup_iterations,
            seed: opts.seed,
            ..RunOptions::default()
        },
    );
    annealer.track_front();
    annealer.run_segment(u64::MAX);
    let (problem, _schedule, run) = annealer.finish();
    let front = run.front.expect("front tracking was enabled above");
    Ok(problem.into_outcome(front))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_model::units::{Bytes, Clbs};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    /// A chain where hardware is the only way to meet a tight deadline.
    fn app() -> TaskGraph {
        let mut app = TaskGraph::new("arch-explore");
        let mut prev = None;
        for i in 0..6 {
            let t = app
                .add_task(
                    format!("t{i}"),
                    "F",
                    us(1_000.0),
                    vec![HwImpl::new(Clbs::new(80), us(50.0))],
                )
                .unwrap();
            if let Some(p) = prev {
                app.add_data_edge(p, t, Bytes::new(64)).unwrap();
            }
            prev = Some(t);
        }
        app
    }

    fn catalog() -> ResourceCatalog {
        ResourceCatalog {
            processors: vec![ProcessorSpec::new("cpu", 10.0)],
            drlcs: vec![DrlcSpec::new("fpga", Clbs::new(600), us(0.5), 40.0)],
            asics: vec![AsicSpec::new("asic", 25.0)],
        }
    }

    fn cpu_fpga() -> Architecture {
        Architecture::builder("start")
            .processor("cpu", 10.0)
            .drlc("fpga", Clbs::new(600), us(0.5), 40.0)
            .bus_rate(64.0)
            .build()
            .unwrap()
    }

    #[test]
    fn loose_deadline_drops_the_expensive_fpga() {
        let app = app();
        let out = explore_architecture(
            &app,
            cpu_fpga(),
            &catalog(),
            &ArchExploreOptions {
                max_iterations: 15_000,
                warmup_iterations: 1_500,
                deadline: Micros::new(100_000.0), // software alone is fine
                seed: 3,
                ..ArchExploreOptions::default()
            },
        )
        .unwrap();
        assert!(out.architecture.drlcs().is_empty(), "kept an unneeded FPGA");
        // The initial system cost 50 (cpu 10 + fpga 40); dropping the
        // FPGA is the big win. The annealer may briefly instantiate an
        // ASIC and freeze before dismantling it, so only require a
        // strict improvement over the start.
        assert!(out.architecture.total_cost() < 50.0);
        out.mapping.validate(&app, &out.architecture).unwrap();
    }

    #[test]
    fn tight_deadline_keeps_hardware() {
        let app = app();
        let out = explore_architecture(
            &app,
            cpu_fpga(),
            &catalog(),
            &ArchExploreOptions {
                max_iterations: 15_000,
                warmup_iterations: 1_500,
                deadline: Micros::new(2_000.0), // impossible in software (6 ms)
                seed: 3,
                ..ArchExploreOptions::default()
            },
        )
        .unwrap();
        assert!(
            !out.architecture.drlcs().is_empty() || !out.architecture.asics().is_empty(),
            "dropped all acceleration under a tight deadline"
        );
        assert!(out.evaluation.makespan <= Micros::new(2_000.0));
    }

    #[test]
    fn moves_keep_architecture_and_mapping_consistent() {
        let app = app();
        let catalog = catalog();
        let mut problem = ArchProblem::new(
            &app,
            cpu_fpga(),
            &catalog,
            ArchExploreOptions {
                deadline: Micros::new(3_000.0),
                seed: 9,
                ..ArchExploreOptions::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for step in 0..600u32 {
            let class = (step % 3) as usize;
            if let Some((mv, _)) = problem.try_move(&mut rng, class) {
                problem
                    .mapping
                    .validate(&app, &problem.arch)
                    .expect("valid after arch move");
                if step % 4 == 0 {
                    problem.undo(mv);
                    problem
                        .mapping
                        .validate(&app, &problem.arch)
                        .expect("valid after undo");
                }
            }
        }
    }
}
