//! The solution representation: a complete spatio-temporal mapping.

use crate::error::MappingError;
use crate::placement::{Placement, ResourceRef};
use rdse_model::units::{Clbs, Micros};
use rdse_model::{Architecture, TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// One run-time context of a reconfigurable device: a set of hardware
/// tasks configured and executed together (§3.2). Contexts execute in
/// list order; tasks inside a context are only partially ordered by the
/// application's precedence edges (the GTLP order of §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Context {
    tasks: Vec<TaskId>,
}

impl Context {
    /// Creates a context holding exactly one task.
    pub fn singleton(task: TaskId) -> Self {
        Context { tasks: vec![task] }
    }

    /// The tasks configured in this context (unordered set semantics).
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Number of tasks in the context.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the context holds no tasks (transient state only;
    /// valid mappings never contain empty contexts).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// A complete candidate solution (§3.3): spatial partitioning, temporal
/// partitioning, processor orders and implementation selection.
///
/// All mutating operations keep the cross-indices consistent (a task's
/// [`Placement`] always agrees with the processor orders and context
/// lists); [`Mapping::validate`] re-checks every invariant and is used
/// liberally in tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    placement: Vec<Placement>,
    proc_order: Vec<Vec<TaskId>>,
    contexts: Vec<Vec<Context>>,
}

impl Mapping {
    /// Creates the all-software mapping: every task on processor 0 in
    /// the given total order (callers usually pass a topological order).
    ///
    /// # Panics
    ///
    /// Panics if the architecture has no processor or `order` does not
    /// cover every task exactly once (checked by `validate` in debug
    /// builds).
    pub fn all_software(app: &TaskGraph, arch: &Architecture, order: Vec<TaskId>) -> Self {
        assert!(
            !arch.processors().is_empty(),
            "all-software mapping needs a processor"
        );
        assert_eq!(order.len(), app.n_tasks(), "order must cover all tasks");
        Mapping {
            placement: vec![Placement::Software { processor: 0 }; app.n_tasks()],
            proc_order: {
                let mut po = vec![Vec::new(); arch.processors().len()];
                po[0] = order;
                po
            },
            contexts: vec![Vec::new(); arch.drlcs().len()],
        }
    }

    /// Number of tasks covered.
    pub fn n_tasks(&self) -> usize {
        self.placement.len()
    }

    /// Placement of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn placement(&self, task: TaskId) -> Placement {
        self.placement[task.index()]
    }

    /// The scheduling resource of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn resource(&self, task: TaskId) -> ResourceRef {
        self.placement(task).resource()
    }

    /// Total execution order of one processor.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is out of range.
    pub fn proc_order(&self, processor: usize) -> &[TaskId] {
        &self.proc_order[processor]
    }

    /// Ordered context list of one device.
    ///
    /// # Panics
    ///
    /// Panics if `drlc` is out of range.
    pub fn contexts(&self, drlc: usize) -> &[Context] {
        &self.contexts[drlc]
    }

    /// Total number of contexts over all devices (the quantity plotted
    /// in Figs. 2 and 3 of the paper).
    pub fn n_contexts(&self) -> usize {
        self.contexts.iter().map(Vec::len).sum()
    }

    /// Execution time of `task` under its current placement and
    /// implementation selection.
    ///
    /// # Panics
    ///
    /// Panics if the placement references a missing implementation.
    pub fn exec_time(&self, app: &TaskGraph, task: TaskId) -> Micros {
        let t = app.task(task).expect("task id in range");
        match self.placement(task) {
            Placement::Software { .. } => t.sw_time(),
            Placement::Hardware { hw_impl, .. } => t.hw_impls()[hw_impl].time(),
            Placement::Asic { .. } => t
                .fastest_hw()
                .map(|i| i.time())
                .unwrap_or_else(|| t.sw_time()),
        }
    }

    /// CLBs occupied by `task` (zero for software/ASIC placements).
    pub fn task_clbs(&self, app: &TaskGraph, task: TaskId) -> Clbs {
        match self.placement(task) {
            Placement::Hardware { hw_impl, .. } => {
                app.task(task).expect("task id in range").hw_impls()[hw_impl].clbs()
            }
            _ => Clbs::ZERO,
        }
    }

    /// CLBs used by one context (`nCLB` in the paper's edge weights).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn context_clbs(&self, app: &TaskGraph, drlc: usize, context: usize) -> Clbs {
        self.contexts[drlc][context]
            .tasks()
            .iter()
            .map(|&t| self.task_clbs(app, t))
            .sum()
    }

    /// Sum of CLBs over all contexts of all devices (total area that
    /// must be configured during a run).
    pub fn total_configured_clbs(&self, app: &TaskGraph) -> Clbs {
        (0..self.contexts.len())
            .map(|d| {
                (0..self.contexts[d].len())
                    .map(|c| self.context_clbs(app, d, c))
                    .sum::<Clbs>()
            })
            .sum()
    }

    /// Tasks currently placed in hardware.
    pub fn hw_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.placement
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_hardware())
            .map(|(i, _)| TaskId(i as u32))
    }

    // ------------------------------------------------------------------
    // Mutations (used by the move generator and by baseline explorers).
    // Each keeps the structure self-consistent — placements always agree
    // with processor orders and context lists — while feasibility w.r.t.
    // precedence is checked by the evaluator.
    // ------------------------------------------------------------------

    /// Removes `task` from the resource it currently occupies, leaving
    /// it temporarily unplaced (the caller must re-insert it). Empty
    /// contexts are deleted and later context indices re-numbered.
    pub fn detach(&mut self, task: TaskId) {
        match self.placement(task) {
            Placement::Software { processor } => {
                self.proc_order[processor].retain(|&t| t != task);
            }
            Placement::Hardware { drlc, context, .. } => {
                let ctx = &mut self.contexts[drlc][context];
                ctx.tasks.retain(|&t| t != task);
                if ctx.is_empty() {
                    self.remove_context(drlc, context);
                }
            }
            Placement::Asic { .. } => {}
        }
    }

    /// Inserts `task` into `processor`'s order at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position` exceeds the order length.
    pub fn insert_software(&mut self, task: TaskId, processor: usize, position: usize) {
        self.proc_order[processor].insert(position, task);
        self.placement[task.index()] = Placement::Software { processor };
    }

    /// Adds `task` to an existing context with implementation `hw_impl`.
    pub fn insert_hardware(&mut self, task: TaskId, drlc: usize, context: usize, hw_impl: usize) {
        self.contexts[drlc][context].tasks.push(task);
        self.placement[task.index()] = Placement::Hardware {
            drlc,
            context,
            hw_impl,
        };
    }

    /// Adds `task` to an existing context at an exact slot in the
    /// context's task list. Contexts have set semantics for evaluation,
    /// but the slot matters to [`MoveDelta`](crate::moves::MoveDelta)
    /// undo: restoring a task at its original slot keeps the mapping
    /// bit-identical to its pre-move state.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the context length.
    pub fn insert_hardware_at(
        &mut self,
        task: TaskId,
        drlc: usize,
        context: usize,
        hw_impl: usize,
        slot: usize,
    ) {
        self.contexts[drlc][context].tasks.insert(slot, task);
        self.placement[task.index()] = Placement::Hardware {
            drlc,
            context,
            hw_impl,
        };
    }

    /// Spawns a new context at `position` in `drlc`'s context order
    /// holding only `task` (the paper's overflow rule: "another context
    /// will be spawned if nCLB(R(vd)) + C(vs) > NCLB").
    pub fn insert_new_context(
        &mut self,
        task: TaskId,
        drlc: usize,
        position: usize,
        hw_impl: usize,
    ) {
        self.contexts[drlc].insert(position, Context::singleton(task));
        // Re-number placements for contexts displaced by the insertion.
        for p in &mut self.placement {
            if let Placement::Hardware {
                drlc: d, context, ..
            } = p
            {
                if *d == drlc && *context >= position {
                    *context += 1;
                }
            }
        }
        self.placement[task.index()] = Placement::Hardware {
            drlc,
            context: position,
            hw_impl,
        };
    }

    /// Places `task` on an ASIC.
    pub fn insert_asic(&mut self, task: TaskId, asic: usize) {
        self.placement[task.index()] = Placement::Asic { asic };
    }

    /// Changes the selected implementation of a hardware task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not placed in hardware.
    pub fn select_impl(&mut self, task: TaskId, hw_impl: usize) {
        match &mut self.placement[task.index()] {
            Placement::Hardware { hw_impl: cur, .. } => *cur = hw_impl,
            other => panic!("select_impl on non-hardware placement {other:?}"),
        }
    }

    /// Appends an (empty) order slot for a newly created processor —
    /// the m4 architecture-exploration move. Returns the new index.
    pub fn add_processor_slot(&mut self) -> usize {
        self.proc_order.push(Vec::new());
        self.proc_order.len() - 1
    }

    /// Appends an (empty) context list for a newly created DRLC.
    /// Returns the new index.
    pub fn add_drlc_slot(&mut self) -> usize {
        self.contexts.push(Vec::new());
        self.contexts.len() - 1
    }

    /// Removes processor `p`'s slot — the m3 move. The order must be
    /// empty (move its tasks away first); placements on later
    /// processors are renumbered.
    ///
    /// # Panics
    ///
    /// Panics if the order is non-empty or `p` is out of range.
    pub fn remove_processor_slot(&mut self, p: usize) {
        assert!(
            self.proc_order[p].is_empty(),
            "processor {p} still has tasks"
        );
        self.proc_order.remove(p);
        for place in &mut self.placement {
            if let Placement::Software { processor } = place {
                assert_ne!(*processor, p, "placement points at removed processor");
                if *processor > p {
                    *processor -= 1;
                }
            }
        }
    }

    /// Removes DRLC `d`'s context list — the m3 move. The list must be
    /// empty; placements on later devices are renumbered.
    ///
    /// # Panics
    ///
    /// Panics if the device still has contexts or `d` is out of range.
    pub fn remove_drlc_slot(&mut self, d: usize) {
        assert!(self.contexts[d].is_empty(), "drlc {d} still has contexts");
        self.contexts.remove(d);
        for place in &mut self.placement {
            if let Placement::Hardware { drlc, .. } = place {
                assert_ne!(*drlc, d, "placement points at removed drlc");
                if *drlc > d {
                    *drlc -= 1;
                }
            }
        }
    }

    /// Renumbers ASIC placements after removal of ASIC `a` (which must
    /// host no tasks).
    ///
    /// # Panics
    ///
    /// Panics if a placement still references ASIC `a`.
    pub fn remove_asic_slot(&mut self, a: usize) {
        for place in &mut self.placement {
            if let Placement::Asic { asic } = place {
                assert_ne!(*asic, a, "placement points at removed asic");
                if *asic > a {
                    *asic -= 1;
                }
            }
        }
    }

    fn remove_context(&mut self, drlc: usize, context: usize) {
        self.contexts[drlc].remove(context);
        for p in &mut self.placement {
            if let Placement::Hardware {
                drlc: d,
                context: c,
                ..
            } = p
            {
                if *d == drlc && *c > context {
                    *c -= 1;
                }
            }
        }
    }

    /// Checks every structural invariant against the models.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`MappingError`] on the first violation:
    /// index mismatches, duplicated or missing tasks, empty contexts,
    /// missing hardware capability, or capacity overflow.
    pub fn validate(&self, app: &TaskGraph, arch: &Architecture) -> Result<(), MappingError> {
        if self.placement.len() != app.n_tasks() {
            return Err(MappingError::Inconsistent(format!(
                "{} placements for {} tasks",
                self.placement.len(),
                app.n_tasks()
            )));
        }
        if self.proc_order.len() != arch.processors().len() {
            return Err(MappingError::Inconsistent(
                "processor order count mismatch".into(),
            ));
        }
        if self.contexts.len() != arch.drlcs().len() {
            return Err(MappingError::Inconsistent(
                "context list count mismatch".into(),
            ));
        }
        let mut seen = vec![false; app.n_tasks()];
        for (p, order) in self.proc_order.iter().enumerate() {
            for &t in order {
                if t.index() >= app.n_tasks() {
                    return Err(MappingError::Inconsistent(format!("unknown task {t}")));
                }
                if seen[t.index()] {
                    return Err(MappingError::Inconsistent(format!(
                        "task {t} scheduled twice"
                    )));
                }
                seen[t.index()] = true;
                if self.placement(t) != (Placement::Software { processor: p }) {
                    return Err(MappingError::Inconsistent(format!(
                        "task {t} in proc {p} order but placed elsewhere"
                    )));
                }
            }
        }
        for (d, ctxs) in self.contexts.iter().enumerate() {
            let spec = &arch.drlcs()[d];
            for (c, ctx) in ctxs.iter().enumerate() {
                if ctx.is_empty() {
                    return Err(MappingError::Inconsistent(format!(
                        "empty context {c} on drlc {d}"
                    )));
                }
                for &t in ctx.tasks() {
                    if t.index() >= app.n_tasks() {
                        return Err(MappingError::Inconsistent(format!("unknown task {t}")));
                    }
                    if seen[t.index()] {
                        return Err(MappingError::Inconsistent(format!(
                            "task {t} scheduled twice"
                        )));
                    }
                    seen[t.index()] = true;
                    match self.placement(t) {
                        Placement::Hardware {
                            drlc,
                            context,
                            hw_impl,
                        } if drlc == d && context == c => {
                            let task = app.task(t).expect("task id in range");
                            if task.hw_impls().is_empty() {
                                return Err(MappingError::NotHwCapable(t));
                            }
                            if hw_impl >= task.hw_impls().len() {
                                return Err(MappingError::Inconsistent(format!(
                                    "task {t} selects implementation {hw_impl} of {}",
                                    task.hw_impls().len()
                                )));
                            }
                        }
                        _ => {
                            return Err(MappingError::Inconsistent(format!(
                                "task {t} in drlc {d}/ctx {c} but placed elsewhere"
                            )));
                        }
                    }
                }
                if self.context_clbs(app, d, c) > spec.n_clbs() {
                    return Err(MappingError::CapacityExceeded {
                        drlc: d,
                        context: c,
                    });
                }
            }
        }
        for (i, p) in self.placement.iter().enumerate() {
            let t = TaskId(i as u32);
            match *p {
                Placement::Asic { asic } => {
                    if asic >= arch.asics().len() {
                        return Err(MappingError::UnknownResource(format!("asic{asic}")));
                    }
                    seen[i] = true;
                }
                Placement::Software { processor } if processor >= arch.processors().len() => {
                    return Err(MappingError::UnknownResource(format!("proc{processor}")));
                }
                _ => {}
            }
            if !seen[i] {
                return Err(MappingError::Inconsistent(format!(
                    "task {t} not present on its resource"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_model::units::Bytes;
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("fx");
        let a = app
            .add_task(
                "a",
                "F",
                us(10.0),
                vec![HwImpl::new(Clbs::new(100), us(2.0))],
            )
            .unwrap();
        let b = app
            .add_task(
                "b",
                "G",
                us(20.0),
                vec![
                    HwImpl::new(Clbs::new(50), us(8.0)),
                    HwImpl::new(Clbs::new(150), us(3.0)),
                ],
            )
            .unwrap();
        let c = app.add_task("c", "H", us(5.0), vec![]).unwrap();
        app.add_data_edge(a, b, Bytes::new(100)).unwrap();
        app.add_data_edge(b, c, Bytes::new(200)).unwrap();
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(200), us(22.5), 1.0)
            .build()
            .unwrap();
        (app, arch)
    }

    fn topo_order(app: &TaskGraph) -> Vec<TaskId> {
        rdse_graph::topo_sort(&app.precedence_graph())
            .unwrap()
            .into_iter()
            .map(TaskId::from)
            .collect()
    }

    #[test]
    fn all_software_is_valid() {
        let (app, arch) = fixture();
        let m = Mapping::all_software(&app, &arch, topo_order(&app));
        m.validate(&app, &arch).unwrap();
        assert_eq!(m.n_contexts(), 0);
        assert_eq!(m.proc_order(0).len(), 3);
        assert_eq!(m.exec_time(&app, TaskId(0)), us(10.0));
    }

    #[test]
    fn move_task_to_new_context() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo_order(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0);
        m.validate(&app, &arch).unwrap();
        assert_eq!(m.n_contexts(), 1);
        assert_eq!(m.exec_time(&app, TaskId(0)), us(2.0));
        assert_eq!(m.context_clbs(&app, 0, 0), Clbs::new(100));
        assert_eq!(m.proc_order(0).len(), 2);
    }

    #[test]
    fn detach_removes_empty_context_and_renumbers() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo_order(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0);
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 1, 0);
        m.validate(&app, &arch).unwrap();
        assert_eq!(m.n_contexts(), 2);
        // Remove the first context's only task: context 1 renumbers to 0.
        m.detach(TaskId(0));
        m.insert_software(TaskId(0), 0, 0);
        m.validate(&app, &arch).unwrap();
        assert_eq!(m.n_contexts(), 1);
        assert_eq!(
            m.placement(TaskId(1)),
            Placement::Hardware {
                drlc: 0,
                context: 0,
                hw_impl: 0
            }
        );
    }

    #[test]
    fn insert_new_context_in_middle_renumbers() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo_order(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0);
        m.detach(TaskId(2));
        // c has no hw impls, so pretend b instead:
        m.insert_software(TaskId(2), 0, 0);
        m.detach(TaskId(1));
        // Insert b's context *before* a's: a's context index must bump.
        m.insert_new_context(TaskId(1), 0, 0, 1);
        m.validate(&app, &arch).unwrap();
        assert_eq!(
            m.placement(TaskId(0)),
            Placement::Hardware {
                drlc: 0,
                context: 1,
                hw_impl: 0
            }
        );
    }

    #[test]
    fn select_impl_changes_area_and_time() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo_order(&app));
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 0, 0);
        assert_eq!(m.exec_time(&app, TaskId(1)), us(8.0));
        m.select_impl(TaskId(1), 1);
        m.validate(&app, &arch).unwrap();
        assert_eq!(m.exec_time(&app, TaskId(1)), us(3.0));
        assert_eq!(m.context_clbs(&app, 0, 0), Clbs::new(150));
    }

    #[test]
    fn capacity_violation_detected() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo_order(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0); // 100 CLBs
        m.detach(TaskId(1));
        m.insert_hardware(TaskId(1), 0, 0, 1); // +150 CLBs > 200
        assert_eq!(
            m.validate(&app, &arch),
            Err(MappingError::CapacityExceeded {
                drlc: 0,
                context: 0
            })
        );
    }

    #[test]
    fn duplicated_task_detected() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo_order(&app));
        // Manually corrupt: insert a second copy of task 0 into the order.
        m.proc_order[0].push(TaskId(0));
        assert!(matches!(
            m.validate(&app, &arch),
            Err(MappingError::Inconsistent(_))
        ));
    }

    #[test]
    fn non_hw_capable_task_rejected_in_context() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo_order(&app));
        m.detach(TaskId(2)); // task c has no hw impls
        m.insert_new_context(TaskId(2), 0, 0, 0);
        assert_eq!(
            m.validate(&app, &arch),
            Err(MappingError::NotHwCapable(TaskId(2)))
        );
    }

    #[test]
    fn total_configured_clbs_sums_contexts() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo_order(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0);
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 1, 0);
        assert_eq!(m.total_configured_clbs(&app), Clbs::new(150));
        let hw: Vec<TaskId> = m.hw_tasks().collect();
        assert_eq!(hw, vec![TaskId(0), TaskId(1)]);
    }
}
