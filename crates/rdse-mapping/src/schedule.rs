//! Gantt-chart extraction — the schedule view of Fig. 1(c).
//!
//! The ASAP completion labels of the evaluation double as a schedule:
//! task slots on their resources, reconfiguration slots between
//! contexts, and the ordered bus transactions of the communication row.

use crate::eval::Evaluation;
use crate::placement::ResourceRef;
use crate::solution::Mapping;
use rdse_model::units::{Bytes, Micros};
use rdse_model::{Architecture, TaskGraph, TaskId};
use std::fmt::Write as _;

/// One task occupying a resource for a time interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSlot {
    /// The scheduled task.
    pub task: TaskId,
    /// The resource it executes on.
    pub resource: ResourceRef,
    /// Start time.
    pub start: Micros,
    /// End time.
    pub end: Micros,
}

/// One reconfiguration interval on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigSlot {
    /// DRLC index.
    pub drlc: usize,
    /// Context being configured.
    pub context: usize,
    /// Start time.
    pub start: Micros,
    /// End time.
    pub end: Micros,
}

/// One transaction on the shared bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusTransfer {
    /// Producer task.
    pub from: TaskId,
    /// Consumer task.
    pub to: TaskId,
    /// Transfer start (producer completion).
    pub start: Micros,
    /// Transfer end.
    pub end: Micros,
    /// Amount of data moved.
    pub bytes: Bytes,
}

/// A complete schedule view of one evaluated mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttChart {
    /// Task execution slots.
    pub tasks: Vec<TaskSlot>,
    /// Reconfiguration slots (one per context).
    pub reconfigs: Vec<ReconfigSlot>,
    /// Ordered bus transactions.
    pub transfers: Vec<BusTransfer>,
    /// Overall makespan.
    pub makespan: Micros,
}

impl GanttChart {
    /// Builds the chart from a mapping and its evaluation.
    pub fn extract(
        app: &TaskGraph,
        arch: &Architecture,
        mapping: &Mapping,
        eval: &Evaluation,
    ) -> Self {
        let tasks: Vec<TaskSlot> = app
            .task_ids()
            .map(|t| TaskSlot {
                task: t,
                resource: mapping.resource(t),
                start: eval.starts[t.index()],
                end: eval.completions[t.index()],
            })
            .collect();

        let mut reconfigs = Vec::new();
        for (d, spec) in arch.drlcs().iter().enumerate() {
            let ctxs = mapping.contexts(d);
            for (k, _) in ctxs.iter().enumerate() {
                let duration = spec.reconfiguration_time(mapping.context_clbs(app, d, k));
                let start = if k == 0 {
                    Micros::ZERO
                } else {
                    ctxs[k - 1]
                        .tasks()
                        .iter()
                        .map(|&t| eval.completions[t.index()])
                        .fold(Micros::ZERO, Micros::max)
                };
                reconfigs.push(ReconfigSlot {
                    drlc: d,
                    context: k,
                    start,
                    end: start + duration,
                });
            }
        }

        let bus = arch.bus();
        let mut transfers: Vec<BusTransfer> = app
            .edges()
            .iter()
            .filter(|e| {
                !crate::searchgraph::same_device(mapping.resource(e.from), mapping.resource(e.to))
            })
            .map(|e| {
                let start = eval.completions[e.from.index()];
                BusTransfer {
                    from: e.from,
                    to: e.to,
                    start,
                    end: start + bus.transfer_time(e.bytes),
                    bytes: e.bytes,
                }
            })
            .collect();
        // The total order imposed on the transactions (§3.3): by start
        // time, ties by producer id.
        transfers.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .expect("times are finite")
                .then(a.from.cmp(&b.from))
        });

        GanttChart {
            tasks,
            reconfigs,
            transfers,
            makespan: eval.makespan,
        }
    }

    /// Renders an ASCII Gantt chart of the given character width.
    ///
    /// One row per processor, per DRLC (contexts shown as digits,
    /// reconfiguration as `#`), per ASIC, and one row for the bus.
    pub fn render_ascii(&self, app: &TaskGraph, arch: &Architecture, width: usize) -> String {
        let width = width.max(20);
        let span = self.makespan.value().max(1e-9);
        let col = |t: Micros| -> usize {
            (((t.value() / span) * (width as f64 - 1.0)).round() as usize).min(width - 1)
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "makespan {} | width {width} chars ({:.1} µs/char)",
            self.makespan,
            span / width as f64
        );

        for p in 0..arch.processors().len() {
            let mut row = vec![b'.'; width];
            for slot in self
                .tasks
                .iter()
                .filter(|s| s.resource == ResourceRef::Processor(p))
            {
                let (a, b) = (col(slot.start), col(slot.end));
                let label = app
                    .task(slot.task)
                    .map(|t| t.name().bytes().next().unwrap_or(b'?'))
                    .unwrap_or(b'?');
                for c in row.iter_mut().take(b + 1).skip(a) {
                    *c = label;
                }
            }
            let _ = writeln!(out, "proc{p} |{}|", String::from_utf8_lossy(&row));
        }

        for d in 0..arch.drlcs().len() {
            let mut row = vec![b'.'; width];
            for r in self.reconfigs.iter().filter(|r| r.drlc == d) {
                for c in row.iter_mut().take(col(r.end) + 1).skip(col(r.start)) {
                    *c = b'#';
                }
            }
            for slot in self.tasks.iter() {
                if let ResourceRef::Context { drlc, context } = slot.resource {
                    if drlc == d {
                        let digit = b'0' + (context % 10) as u8;
                        for c in row.iter_mut().take(col(slot.end) + 1).skip(col(slot.start)) {
                            *c = digit;
                        }
                    }
                }
            }
            let _ = writeln!(out, "drlc{d} |{}|", String::from_utf8_lossy(&row));
        }

        for a in 0..arch.asics().len() {
            let mut row = vec![b'.'; width];
            for slot in self
                .tasks
                .iter()
                .filter(|s| s.resource == ResourceRef::Asic(a))
            {
                for c in row.iter_mut().take(col(slot.end) + 1).skip(col(slot.start)) {
                    *c = b'a';
                }
            }
            let _ = writeln!(out, "asic{a} |{}|", String::from_utf8_lossy(&row));
        }

        let mut row = vec![b'.'; width];
        for t in &self.transfers {
            for c in row.iter_mut().take(col(t.end) + 1).skip(col(t.start)) {
                *c = b'x';
            }
        }
        let _ = writeln!(out, "bus   |{}|", String::from_utf8_lossy(&row));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::solution::Mapping;
    use rdse_model::units::Clbs;
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    fn fixture() -> (TaskGraph, Architecture, Mapping) {
        let mut app = TaskGraph::new("fx");
        let a = app
            .add_task(
                "alpha",
                "F",
                us(10.0),
                vec![HwImpl::new(Clbs::new(100), us(2.0))],
            )
            .unwrap();
        let b = app
            .add_task(
                "beta",
                "G",
                us(20.0),
                vec![HwImpl::new(Clbs::new(150), us(3.0))],
            )
            .unwrap();
        let c = app.add_task("gamma", "H", us(5.0), vec![]).unwrap();
        app.add_data_edge(a, b, Bytes::new(1000)).unwrap();
        app.add_data_edge(b, c, Bytes::new(2000)).unwrap();
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(200), us(0.1), 1.0)
            .bus_rate(100.0)
            .build()
            .unwrap();
        let mut m = Mapping::all_software(&app, &arch, vec![TaskId(0), TaskId(1), TaskId(2)]);
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 0, 0);
        (app, arch, m)
    }

    #[test]
    fn slots_are_consistent_with_evaluation() {
        let (app, arch, m) = fixture();
        let eval = evaluate(&app, &arch, &m).unwrap();
        let g = GanttChart::extract(&app, &arch, &m, &eval);
        assert_eq!(g.tasks.len(), 3);
        for slot in &g.tasks {
            assert!(slot.start <= slot.end);
            assert!(slot.end <= g.makespan);
        }
        // Processor slots must not overlap.
        let mut proc: Vec<&TaskSlot> = g
            .tasks
            .iter()
            .filter(|s| s.resource == ResourceRef::Processor(0))
            .collect();
        proc.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for w in proc.windows(2) {
            assert!(w[0].end <= w[1].start, "processor slots overlap");
        }
    }

    #[test]
    fn reconfig_slots_precede_context_tasks() {
        let (app, arch, m) = fixture();
        let eval = evaluate(&app, &arch, &m).unwrap();
        let g = GanttChart::extract(&app, &arch, &m, &eval);
        assert_eq!(g.reconfigs.len(), 1);
        let r = &g.reconfigs[0];
        assert_eq!(r.start, Micros::ZERO);
        assert_eq!(r.end, us(15.0)); // 150 CLBs × 0.1 µs
        let hw_slot = g
            .tasks
            .iter()
            .find(|s| matches!(s.resource, ResourceRef::Context { .. }))
            .unwrap();
        assert!(hw_slot.start >= r.end);
    }

    #[test]
    fn transfers_cross_devices_only() {
        let (app, arch, m) = fixture();
        let eval = evaluate(&app, &arch, &m).unwrap();
        let g = GanttChart::extract(&app, &arch, &m, &eval);
        // a->b and b->c both cross cpu<->fpga.
        assert_eq!(g.transfers.len(), 2);
        assert!(g.transfers.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn ascii_render_contains_rows() {
        let (app, arch, m) = fixture();
        let eval = evaluate(&app, &arch, &m).unwrap();
        let g = GanttChart::extract(&app, &arch, &m, &eval);
        let art = g.render_ascii(&app, &arch, 60);
        assert!(art.contains("proc0 |"));
        assert!(art.contains("drlc0 |"));
        assert!(art.contains("bus   |"));
        assert!(art.contains('#'), "reconfiguration not rendered");
        assert!(art.contains('a'), "task letters not rendered");
    }
}
