//! Mapping and evaluation errors.

use rdse_model::TaskId;
use std::error::Error;
use std::fmt;

/// Errors raised while constructing or evaluating mappings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MappingError {
    /// The combined search graph (precedence ∪ sequentialization edges)
    /// contains a cycle: the schedule is infeasible.
    CyclicSchedule,
    /// A context exceeds the CLB capacity of its device.
    CapacityExceeded {
        /// DRLC index within the architecture.
        drlc: usize,
        /// Context index within the device's context list.
        context: usize,
    },
    /// A task was placed on hardware but has no hardware implementation.
    NotHwCapable(TaskId),
    /// A placement referenced a resource that does not exist.
    UnknownResource(String),
    /// Structural invariant violated (task missing from its resource's
    /// order, duplicated, empty context, out-of-range implementation...).
    Inconsistent(String),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::CyclicSchedule => {
                write!(f, "search graph has a cycle: schedule infeasible")
            }
            MappingError::CapacityExceeded { drlc, context } => {
                write!(f, "context {context} on drlc {drlc} exceeds CLB capacity")
            }
            MappingError::NotHwCapable(t) => {
                write!(f, "task {t} has no hardware implementation")
            }
            MappingError::UnknownResource(r) => write!(f, "unknown resource {r}"),
            MappingError::Inconsistent(msg) => write!(f, "inconsistent mapping: {msg}"),
        }
    }
}

impl Error for MappingError {}
