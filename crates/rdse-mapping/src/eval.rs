//! Solution evaluation (§4.4) and the cost breakdown used by Fig. 3.

use crate::error::MappingError;
use crate::searchgraph::SearchGraph;
use crate::solution::Mapping;
use rdse_model::units::{Clbs, Micros};
use rdse_model::{Architecture, TaskGraph, TaskId};

/// The additive decomposition annotated on Fig. 3 of the paper:
/// "Execution time = reconfiguration time (initial + dynamic) +
/// computation and communication time".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalBreakdown {
    /// Time to load the first context of each device (`tR·nCLB(C₁)`).
    pub initial_reconfig: Micros,
    /// Total reconfiguration time of the remaining contexts.
    pub dynamic_reconfig: Micros,
    /// Everything else (makespan minus total reconfiguration, floored
    /// at zero — reconfiguration overlapped with processor work can
    /// make the subtraction conservative).
    pub computation_communication: Micros,
}

/// The cheap scalar summary of an evaluation — everything the
/// annealing hot path needs (cost, observables), nothing it does not.
///
/// `Copy`: keeping, undoing or snapshotting a summary is a register
/// move, unlike the heavyweight per-task trace of [`Evaluation`]
/// (starts, completions, critical path) which is computed on demand
/// for reports via [`evaluate`] /
/// [`Evaluator::evaluate_full`](crate::Evaluator::evaluate_full).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSummary {
    /// Longest path of the search graph — the system execution time.
    pub makespan: Micros,
    /// Total number of contexts allocated (Fig. 2/3 series).
    pub n_contexts: usize,
    /// Number of tasks placed in hardware.
    pub n_hw_tasks: usize,
    /// Peak CLB occupancy over all contexts of all devices — the
    /// smallest device capacity that could host this mapping, i.e. the
    /// FPGA-area objective of the multi-objective cost vector. Zero
    /// for an all-software mapping.
    pub clb_area: Clbs,
    /// Cost decomposition for the Fig. 3 series.
    pub breakdown: EvalBreakdown,
}

/// Full evaluation of one mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Longest path of the search graph — the system execution time.
    pub makespan: Micros,
    /// ASAP completion time of every task.
    pub completions: Vec<Micros>,
    /// ASAP start time of every task.
    pub starts: Vec<Micros>,
    /// Tasks on one critical path, in execution order.
    pub critical_tasks: Vec<TaskId>,
    /// Total number of contexts allocated (Fig. 2/3 series).
    pub n_contexts: usize,
    /// Number of tasks placed in hardware.
    pub n_hw_tasks: usize,
    /// Peak CLB occupancy over all contexts (see
    /// [`EvalSummary::clb_area`]).
    pub clb_area: Clbs,
    /// Cost decomposition for the Fig. 3 series.
    pub breakdown: EvalBreakdown,
}

impl Evaluation {
    /// The scalar summary of this evaluation (drops the per-task
    /// trace).
    pub fn summary(&self) -> EvalSummary {
        EvalSummary {
            makespan: self.makespan,
            n_contexts: self.n_contexts,
            n_hw_tasks: self.n_hw_tasks,
            clb_area: self.clb_area,
            breakdown: self.breakdown,
        }
    }
}

/// Evaluates `mapping`: checks capacity, builds the search graph and
/// computes its longest path.
///
/// # Errors
///
/// Returns [`MappingError::CapacityExceeded`] when a context overflows
/// its device and [`MappingError::CyclicSchedule`] when the imposed
/// orders contradict the precedence graph.
///
/// # Examples
///
/// ```
/// use rdse_mapping::{evaluate, Mapping};
/// use rdse_model::{Architecture, TaskGraph};
/// use rdse_model::units::{Clbs, Micros};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut app = TaskGraph::new("one");
/// let t = app.add_task("t", "F", Micros::new(7.0), vec![])?;
/// let arch = Architecture::builder("a").processor("p", 1.0).build()?;
/// let m = Mapping::all_software(&app, &arch, vec![t]);
/// let eval = evaluate(&app, &arch, &m)?;
/// assert_eq!(eval.makespan, Micros::new(7.0));
/// # Ok(())
/// # }
/// ```
pub fn evaluate(
    app: &TaskGraph,
    arch: &Architecture,
    mapping: &Mapping,
) -> Result<Evaluation, MappingError> {
    // Capacity check first: a context overflow is infeasible regardless
    // of ordering. The same pass records the peak context occupancy —
    // the clb_area objective.
    let mut clb_area = Clbs::new(0);
    for (d, spec) in arch.drlcs().iter().enumerate() {
        for c in 0..mapping.contexts(d).len() {
            let used = mapping.context_clbs(app, d, c);
            if used > spec.n_clbs() {
                return Err(MappingError::CapacityExceeded {
                    drlc: d,
                    context: c,
                });
            }
            clb_area = clb_area.max(used);
        }
    }

    let sg = SearchGraph::build(app, arch, mapping);
    let lp = sg.longest_path()?;

    let n = app.n_tasks();
    let mut completions = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(n);
    for t in app.task_ids() {
        let c = lp.completion(t.node());
        completions.push(Micros::new(c));
        starts.push(Micros::new(c - mapping.exec_time(app, t).value()));
    }

    let mut initial_reconfig = Micros::ZERO;
    let mut dynamic_reconfig = Micros::ZERO;
    for (d, spec) in arch.drlcs().iter().enumerate() {
        for c in 0..mapping.contexts(d).len() {
            let r = spec.reconfiguration_time(mapping.context_clbs(app, d, c));
            if c == 0 {
                initial_reconfig += r;
            } else {
                dynamic_reconfig += r;
            }
        }
    }

    let makespan = Micros::new(lp.makespan());
    let comp_comm =
        Micros::new((lp.makespan() - initial_reconfig.value() - dynamic_reconfig.value()).max(0.0));

    let critical_tasks = lp
        .critical_path()
        .into_iter()
        .filter(|v| v.index() < n)
        .map(TaskId::from)
        .collect();

    Ok(Evaluation {
        makespan,
        completions,
        starts,
        critical_tasks,
        n_contexts: mapping.n_contexts(),
        n_hw_tasks: mapping.hw_tasks().count(),
        clb_area,
        breakdown: EvalBreakdown {
            initial_reconfig,
            dynamic_reconfig,
            computation_communication: comp_comm,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdse_model::units::{Bytes, Clbs};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("fx");
        let a = app
            .add_task(
                "a",
                "F",
                us(10.0),
                vec![HwImpl::new(Clbs::new(100), us(2.0))],
            )
            .unwrap();
        let b = app
            .add_task(
                "b",
                "G",
                us(20.0),
                vec![HwImpl::new(Clbs::new(150), us(3.0))],
            )
            .unwrap();
        let c = app.add_task("c", "H", us(5.0), vec![]).unwrap();
        app.add_data_edge(a, b, Bytes::new(1000)).unwrap();
        app.add_data_edge(b, c, Bytes::new(2000)).unwrap();
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(200), us(0.1), 1.0)
            .bus_rate(100.0)
            .build()
            .unwrap();
        (app, arch)
    }

    fn topo(app: &TaskGraph) -> Vec<TaskId> {
        rdse_graph::topo_sort(&app.precedence_graph())
            .unwrap()
            .into_iter()
            .map(TaskId::from)
            .collect()
    }

    #[test]
    fn breakdown_splits_reconfig() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0); // 100 CLBs -> 10 µs initial
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 1, 0); // 150 CLBs -> 15 µs dynamic
        let e = evaluate(&app, &arch, &m).unwrap();
        assert_eq!(e.breakdown.initial_reconfig, us(10.0));
        assert_eq!(e.breakdown.dynamic_reconfig, us(15.0));
        assert_eq!(e.n_contexts, 2);
        assert_eq!(e.n_hw_tasks, 2);
        assert_eq!(e.breakdown.computation_communication, e.makespan - us(25.0));
    }

    #[test]
    fn starts_plus_exec_equal_completions() {
        let (app, arch) = fixture();
        let m = Mapping::all_software(&app, &arch, topo(&app));
        let e = evaluate(&app, &arch, &m).unwrap();
        for t in app.task_ids() {
            let exec = m.exec_time(&app, t);
            assert_eq!(e.starts[t.index()] + exec, e.completions[t.index()]);
        }
        // Sequential on one processor: starts are 0, 10, 30.
        assert_eq!(e.starts, vec![us(0.0), us(10.0), us(30.0)]);
    }

    #[test]
    fn capacity_error_beats_cycle_error() {
        let (app, arch) = fixture();
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0);
        m.detach(TaskId(1));
        m.insert_hardware(TaskId(1), 0, 0, 0); // 250 > 200 CLBs
        assert_eq!(
            evaluate(&app, &arch, &m),
            Err(MappingError::CapacityExceeded {
                drlc: 0,
                context: 0
            })
        );
    }

    #[test]
    fn critical_path_covers_the_chain() {
        let (app, arch) = fixture();
        let m = Mapping::all_software(&app, &arch, topo(&app));
        let e = evaluate(&app, &arch, &m).unwrap();
        assert_eq!(e.critical_tasks, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }
}
