//! The incremental evaluation engine: a data-oriented, delta-repairing
//! re-implementation of [`evaluate`] for the annealing hot path.
//!
//! Simulated annealing scores thousands of candidate mappings per run
//! (§4.3–4.4), and a portfolio run multiplies that by the chain count.
//! The from-scratch [`evaluate`] allocates a fresh search graph,
//! topological order and label vectors on every call; [`Evaluator`]
//! instead mirrors the mapping in flat structure-of-arrays form and
//! keeps longest-path labels alive across moves:
//!
//! * the application's data edges live in a CSR [`DenseDag`] whose edge
//!   weights are the current communication latencies (`0` on-device,
//!   the bus transfer time otherwise);
//! * the processor total orders (*Esw*) are doubly linked
//!   `prev_sw`/`next_sw` arrays, spliced in O(1) per move;
//! * the context sequentialization edges (*Ehw*) are *virtual*: each
//!   task carries at most one in-bundle and one out-bundle marker
//!   `(device, context)`, and the [`RepairGraph`] overlay expands a
//!   marker into the terminals×initials biclique on the fly — a move
//!   never materializes those edges;
//! * [`Evaluator::evaluate_delta`] re-derives only the state a single
//!   move can touch, seeds the nodes whose in-edge candidate sets
//!   changed, and relabels through the *certified ordered sweep*: the
//!   longest-path engine maintains a topological order across moves
//!   ([`IncrementalLongestPath::order_pos`]), the evaluator locally
//!   [`reposition`](IncrementalLongestPath::reposition)s every node
//!   whose own edge set changed and verifies the order still covers
//!   their edges, then a single check-free relaxation pass over the
//!   order suffix from the first seed relabels the cone
//!   ([`IncrementalLongestPath::sweep_certified`]). When the order
//!   cannot absorb the move the engine falls back to a full Kahn pass
//!   ([`IncrementalLongestPath::full_fallback`]) — still journaled, so
//!   rejection stays a cheap rollback.
//!
//! Batches of sibling candidates amortize the one full synchronization
//! through [`Evaluator::evaluate_batch`].
//!
//! # Determinism contract
//!
//! `Evaluator::evaluate`, `evaluate_delta` and `evaluate_batch` return
//! *bit-identical* makespans and breakdowns to the from-scratch
//! [`evaluate`]:
//!
//! * every completion label is `w(v) + max(0, max over in-edges
//!   (completion(u) + w(u,v)))` — a max over a finite candidate set,
//!   and IEEE-754 `max` is order-independent in value, so the labels
//!   have a unique fixpoint on a DAG and *no relaxation order* (cone
//!   sweep, certified suffix sweep, or full Kahn pass) can change
//!   label bits;
//! * a sweep relabels a superset of the nodes whose candidate sets
//!   changed (every directly changed node is seeded, the suffix from
//!   the minimum seed position covers all their descendants in a valid
//!   topological order), and re-relaxing an unchanged node rewrites
//!   its label with the identical bits;
//! * the reconfiguration breakdown is summed in the same
//!   `(device, context)` order as the reference, from `f64` values
//!   produced by the same pure function.
//!
//! Property tests (`tests/proptests.rs`), the unit walk tests below and
//! the golden-seed end-to-end tests enforce this.

use crate::error::MappingError;
use crate::eval::{evaluate, EvalBreakdown, EvalSummary, Evaluation};
use crate::placement::Placement;
use crate::searchgraph::same_device;
use crate::solution::Mapping;
use rdse_graph::{DenseDag, IncrementalLongestPath, RepairGraph};
use rdse_model::units::{Clbs, Micros};
use rdse_model::{Architecture, TaskGraph, TaskId};

/// Sentinel for "no link / no marker" in the flat `u32` arrays.
const NONE: u32 = u32::MAX;
/// Placement kind codes (branch-free comparisons on the hot path).
const K_SW: u8 = 0;
const K_HW: u8 = 1;
const K_ASIC: u8 = 2;

/// Packs a `(device, context)` bundle marker into one `u32`.
#[inline]
fn enc_bundle(d: usize, k: usize) -> u32 {
    debug_assert!(d < 0x1_0000 && k < 0x1_0000, "bundle marker overflow");
    ((d as u32) << 16) | k as u32
}

/// Unpacks a bundle marker produced by [`enc_bundle`].
#[inline]
fn dec_bundle(b: u32) -> (usize, usize) {
    ((b >> 16) as usize, (b & 0xFFFF) as usize)
}

/// Logs `arr[i] = v` into `log` and reports whether anything changed.
#[inline]
fn log_set_u32(log: &mut Vec<(u32, u32)>, arr: &mut [u32], i: u32, v: u32) -> bool {
    let old = arr[i as usize];
    if old == v {
        return false;
    }
    log.push((i, old));
    arr[i as usize] = v;
    true
}

/// Counters describing an [`Evaluator`]'s arena and repair behaviour,
/// used by the CLI's `--profile` report to confirm steady-state
/// evaluations are allocation-free and to size the repair cones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvaluatorStats {
    /// Evaluations performed (full, delta and batch-member alike).
    pub evaluations: u64,
    /// Evaluations during which at least one scratch arena grew (i.e.
    /// went through the allocator).
    pub arena_growths: u64,
    /// 1-based index of the last evaluation that grew an arena (0 if
    /// none ever did). Once `evaluations` is well past this, every
    /// subsequent step runs entirely in the warm arenas.
    pub last_growth_eval: u64,
    /// Bounded repairs that completed without falling back.
    pub repairs: u64,
    /// Full longest-path passes (initial synchronizations and repair
    /// fall-backs).
    pub full_passes: u64,
    /// Repairs that exceeded the cone threshold and fell back to a
    /// full pass.
    pub fallbacks: u64,
    /// Largest repair cone seen, in nodes.
    pub max_cone: u64,
    /// Total nodes relabeled across all completed repairs (for the
    /// mean cone size).
    pub cone_nodes: u64,
    /// Moves drawn and scored down the speculative pipeline (zero
    /// unless the walk ran with `--speculate` width > 1).
    pub speculated: u64,
    /// Speculated scores the walk actually consumed: the confirmed
    /// rejected prefix of each round plus its terminating accept.
    pub spec_committed: u64,
    /// Speculated scores discarded because an earlier entry in the
    /// round accepted (the price paid for the parallelism).
    pub spec_wasted: u64,
    /// Speculative rounds executed.
    pub spec_rounds: u64,
}

impl EvaluatorStats {
    /// `true` once the arenas have stopped growing: every evaluation
    /// after `last_growth_eval` ran without touching the allocator.
    pub fn arenas_warm(&self) -> bool {
        self.evaluations > self.last_growth_eval
    }

    /// Mean repair-cone size over completed repairs (0.0 if none ran).
    pub fn mean_cone(&self) -> f64 {
        if self.repairs == 0 {
            0.0
        } else {
            self.cone_nodes as f64 / self.repairs as f64
        }
    }

    /// Mean number of speculated scores consumed per speculative round
    /// (0.0 if no speculation ran). At width `W` this lives in
    /// `[1, W]`; the closer to `W`, the better the rejection hypothesis
    /// paid off.
    pub fn mean_useful_prefix(&self) -> f64 {
        if self.spec_rounds == 0 {
            0.0
        } else {
            self.spec_committed as f64 / self.spec_rounds as f64
        }
    }
}

/// Mirror of one context's evaluation-relevant state.
#[derive(Debug, Clone, Default)]
struct CtxState {
    /// CLBs occupied by the context's tasks (u32 sum — order-free).
    clbs: u32,
    /// Reconfiguration latency for this context, in microseconds.
    reconfig: f64,
    /// Initial tasks (no data predecessor inside the context), in
    /// context order.
    initials: Vec<u32>,
    /// Terminal tasks (no data successor inside the context), in
    /// context order.
    terminals: Vec<u32>,
}

/// Mirror of one DRLC's context list, double-buffered so a delta can
/// rebuild into `alt` and diff against `cur` before committing.
///
/// Buffers only grow: `cur`/`alt` keep `CtxState` slots (and their
/// inner vectors) alive past the current length, so steady-state
/// rebuilds recycle capacity instead of allocating.
#[derive(Debug, Clone, Default)]
struct DrlcState {
    cur: Vec<CtxState>,
    cur_len: usize,
    alt: Vec<CtxState>,
    alt_len: usize,
}

/// Typed undo log for one delta evaluation. Each vector records
/// `(index, previous value)` pairs; replaying them in reverse restores
/// the mirrored state bit-identically.
#[derive(Debug, Clone, Default)]
struct DeltaLog {
    node_w: Vec<(u32, f64)>,
    edge_w: Vec<(u32, f64)>,
    prev_sw: Vec<(u32, u32)>,
    next_sw: Vec<(u32, u32)>,
    in_bundle: Vec<(u32, u32)>,
    out_bundle: Vec<(u32, u32)>,
    kind: Vec<(u32, u8)>,
    drlc_of: Vec<(u32, u32)>,
    /// DRLCs whose `cur`/`alt` buffers were swapped.
    swapped: Vec<u32>,
    /// `hw_count` before the delta.
    hw_count: u32,
}

impl DeltaLog {
    fn clear(&mut self) {
        self.node_w.clear();
        self.edge_w.clear();
        self.prev_sw.clear();
        self.next_sw.clear();
        self.in_bundle.clear();
        self.out_bundle.clear();
        self.kind.clear();
        self.drlc_of.clear();
        self.swapped.clear();
    }

    fn capacity(&self) -> usize {
        self.node_w.capacity()
            + self.edge_w.capacity()
            + self.prev_sw.capacity()
            + self.next_sw.capacity()
            + self.in_bundle.capacity()
            + self.out_bundle.capacity()
            + self.kind.capacity()
            + self.drlc_of.capacity()
            + self.swapped.capacity()
    }
}

/// Read-only view of the search graph *G′* assembled from the
/// evaluator's mirrors: CSR data edges, linked-list processor chains
/// and virtual context-sequentialization bicliques. Implements
/// [`RepairGraph`] so the incremental longest path can traverse *G′*
/// without the edges ever being materialized.
struct Overlay<'e> {
    dag: &'e DenseDag,
    prev_sw: &'e [u32],
    next_sw: &'e [u32],
    in_bundle: &'e [u32],
    out_bundle: &'e [u32],
    drlcs: &'e [DrlcState],
    /// Task count; node `n` is the virtual source.
    n: usize,
}

impl RepairGraph for Overlay<'_> {
    #[inline]
    fn n_nodes(&self) -> usize {
        self.n + 1
    }

    #[inline]
    fn node_weight(&self, v: u32) -> f64 {
        self.dag.node_weight(v)
    }

    #[inline]
    fn for_each_out<F: FnMut(u32)>(&self, v: u32, mut f: F) {
        if v as usize == self.n {
            // Virtual source: one edge per device to each initial task
            // of the device's first context.
            for st in self.drlcs {
                if st.cur_len > 0 {
                    for &t in &st.cur[0].initials {
                        f(t);
                    }
                }
            }
            return;
        }
        self.dag.for_each_out(v, &mut f);
        let nx = self.next_sw[v as usize];
        if nx != NONE {
            f(nx);
        }
        let b = self.out_bundle[v as usize];
        if b != NONE {
            let (d, k) = dec_bundle(b);
            for &t in &self.drlcs[d].cur[k].initials {
                f(t);
            }
        }
    }

    /// Closed-form in-degree: static data edges from the CSR extents,
    /// plus one software-chain edge if `prev_sw` is set, plus the
    /// bundle contribution (one virtual-source edge for context 0,
    /// otherwise one edge per terminal of the previous context). The
    /// default enumeration-based count would walk every in-edge; this
    /// makes the full pass's Kahn seeding O(n) instead of O(n + m).
    #[inline]
    fn in_degree(&self, v: u32) -> u32 {
        if v as usize == self.n {
            return 0;
        }
        let mut d = self.dag.in_degree(v);
        if self.prev_sw[v as usize] != NONE {
            d += 1;
        }
        let b = self.in_bundle[v as usize];
        if b != NONE {
            let (dev, k) = dec_bundle(b);
            if k == 0 {
                d += 1;
            } else {
                d += self.drlcs[dev].cur[k - 1].terminals.len() as u32;
            }
        }
        d
    }

    #[inline]
    fn for_each_in<F: FnMut(u32, f64)>(&self, v: u32, mut f: F) {
        if v as usize == self.n {
            return;
        }
        self.dag.for_each_in(v, &mut f);
        let pv = self.prev_sw[v as usize];
        if pv != NONE {
            f(pv, 0.0);
        }
        let b = self.in_bundle[v as usize];
        if b != NONE {
            let (d, k) = dec_bundle(b);
            let w = self.drlcs[d].cur[k].reconfig;
            if k == 0 {
                f(self.n as u32, w);
            } else {
                for &t in &self.drlcs[d].cur[k - 1].terminals {
                    f(t, w);
                }
            }
        }
    }
}

/// Reusable evaluation engine bound to one `app` × `arch` pair.
///
/// Construct once per search (or per chain), synchronize with a full
/// [`evaluate`](Evaluator::evaluate), then score single-move neighbours
/// with [`evaluate_delta`](Evaluator::evaluate_delta) (revertible via
/// [`revert_delta`](Evaluator::revert_delta)) or whole candidate sets
/// with [`evaluate_batch`](Evaluator::evaluate_batch). The heavyweight
/// per-task trace is available on demand via
/// [`evaluate_full`](Evaluator::evaluate_full).
///
/// # Examples
///
/// ```
/// use rdse_mapping::{random_initial, evaluate, Evaluator};
/// use rdse_workloads::{epicure_architecture, motion_detection_app};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = motion_detection_app();
/// let arch = epicure_architecture(2000);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mapping = random_initial(&app, &arch, &mut rng);
///
/// let mut evaluator = Evaluator::new(&app, &arch);
/// let summary = evaluator.evaluate(&mapping)?;
/// // Bit-identical to the from-scratch reference evaluation.
/// let reference = evaluate(&app, &arch, &mapping)?;
/// assert_eq!(summary.makespan, reference.makespan);
/// assert_eq!(summary, reference.summary());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    app: &'a TaskGraph,
    arch: &'a Architecture,
    n: usize,
    /// The application's data edges in CSR form over `n + 1` nodes
    /// (node `n` is the virtual source; it carries no data edges).
    /// Edge `eid` is `app.edges()[eid]`; edge weights are the current
    /// communication latencies, node weights the current exec times.
    dag: DenseDag,
    /// Static bus transfer time per data edge (the weight when the
    /// endpoints sit on different devices).
    xfer: Vec<f64>,
    /// Processor chains (*Esw*) as doubly linked lists over tasks.
    prev_sw: Vec<u32>,
    next_sw: Vec<u32>,
    /// Virtual *Ehw* markers: `in_bundle[t]` is set iff `t` is an
    /// initial of context `(d, k)`; `out_bundle[t]` iff `t` is a
    /// terminal of context `(d, k-1)` and context `k` exists (the
    /// marker encodes the *target* context).
    in_bundle: Vec<u32>,
    out_bundle: Vec<u32>,
    /// Placement kind per task ([`K_SW`]/[`K_HW`]/[`K_ASIC`]).
    kind: Vec<u8>,
    /// Home DRLC per task ([`NONE`] unless hardware-placed).
    drlc_of: Vec<u32>,
    /// Number of hardware-placed tasks.
    hw_count: u32,
    /// Double-buffered per-DRLC context mirrors.
    drlcs: Vec<DrlcState>,
    /// Generation-stamped context membership (avoids clearing).
    membership: Vec<u64>,
    generation: u64,
    /// Longest-path labels, kept alive and repaired across moves.
    lp: IncrementalLongestPath,
    /// Seed nodes whose in-edge candidate sets changed this delta.
    seeds: Vec<u32>,
    /// The subset of seeds whose *edge structure* changed (heads of
    /// every edge the delta added or removed) — the nodes whose
    /// positions the order certification must patch and verify.
    struct_seeds: Vec<u32>,
    /// Scratch for incident `(endpoint, edge id)` pairs (collected
    /// before mutating the CSR weights).
    eid_scratch: Vec<(u32, u32)>,
    log: DeltaLog,
    /// `true` while an un-reverted successful delta is outstanding.
    delta_active: bool,
    /// `true` once the mirrors reflect some mapping (set by a
    /// successful full evaluation, kept by deltas and reverts).
    synced: bool,
    /// Per-candidate results of the last [`evaluate_batch`] call.
    batch_out: Vec<Result<EvalSummary, MappingError>>,
    /// Scratch for batch diffs: tasks / processors / DRLCs that differ
    /// between the base and the candidate.
    diff_tasks: Vec<u32>,
    diff_procs: Vec<u32>,
    diff_drlcs: Vec<u32>,
    stats: EvaluatorStats,
}

/// A lifetime-free bundle of every arena an [`Evaluator`] owns,
/// detached from the `app`/`arch` borrows so it can be cached across
/// jobs (the serving layer keeps one per warm (app, arch) entry).
///
/// Produced by [`Evaluator::into_arenas`] and revived by
/// [`Evaluator::with_arenas`]. Reviving performs a full shape check
/// (task count, edge count *and endpoints*, device count) and falls
/// back to a fresh build on any mismatch, and always recomputes the
/// bus-rate-dependent transfer table and resets the delta machinery,
/// so a revived evaluator is observationally identical to a freshly
/// constructed one: the first full `evaluate` resynchronizes every
/// mapping-dependent mirror. Only allocation capacities (and the
/// lifetime stats counters) survive the round trip.
#[derive(Debug, Clone)]
pub struct EvaluatorArenas {
    n: usize,
    dag: DenseDag,
    xfer: Vec<f64>,
    prev_sw: Vec<u32>,
    next_sw: Vec<u32>,
    in_bundle: Vec<u32>,
    out_bundle: Vec<u32>,
    kind: Vec<u8>,
    drlc_of: Vec<u32>,
    drlcs: Vec<DrlcState>,
    membership: Vec<u64>,
    generation: u64,
    lp: IncrementalLongestPath,
    seeds: Vec<u32>,
    struct_seeds: Vec<u32>,
    eid_scratch: Vec<(u32, u32)>,
    log: DeltaLog,
    batch_out: Vec<Result<EvalSummary, MappingError>>,
    diff_tasks: Vec<u32>,
    diff_procs: Vec<u32>,
    diff_drlcs: Vec<u32>,
    stats: EvaluatorStats,
}

impl EvaluatorArenas {
    /// `true` if these arenas were sized for exactly this `app` ×
    /// `arch` pair: same task count, same data edges (count and
    /// endpoints) and same device count. Weight-like content (exec
    /// times, bus rate) is *not* checked — it is rewritten wholesale
    /// on revival.
    pub fn fits(&self, app: &TaskGraph, arch: &Architecture) -> bool {
        let n = app.n_tasks();
        let m = app.edges().len();
        self.n == n
            && self.xfer.len() == m
            && self.dag.n_nodes() == n + 1
            && self.dag.n_edges() == m
            && self.drlcs.len() == arch.drlcs().len()
            && app
                .edges()
                .iter()
                .enumerate()
                .all(|(eid, e)| self.dag.edge_endpoints(eid as u32) == (e.from.0, e.to.0))
    }

    /// Lifetime evaluation counters carried inside the arenas (they
    /// survive [`Evaluator::into_arenas`] round trips).
    pub fn stats(&self) -> EvaluatorStats {
        let r = self.lp.stats();
        EvaluatorStats {
            repairs: r.repairs,
            full_passes: r.full_passes,
            fallbacks: r.fallbacks,
            max_cone: r.max_cone,
            cone_nodes: r.cone_nodes,
            ..self.stats
        }
    }
}

impl<'a> Evaluator<'a> {
    /// Prepares mirrors and arenas for `app` × `arch`. All per-task
    /// buffers are pre-sized; list capacities warm up over the first
    /// few evaluations.
    pub fn new(app: &'a TaskGraph, arch: &'a Architecture) -> Self {
        let n = app.n_tasks();
        let bus = arch.bus();
        let edges: Vec<(u32, u32, f64)> = app
            .edges()
            .iter()
            .map(|e| (e.from.0, e.to.0, 0.0))
            .collect();
        let dag = DenseDag::from_edges(n + 1, &edges, &vec![0.0; n + 1])
            .expect("application data edges form a valid graph");
        let xfer = app
            .edges()
            .iter()
            .map(|e| bus.transfer_time(e.bytes).value())
            .collect();
        Evaluator {
            app,
            arch,
            n,
            dag,
            xfer,
            prev_sw: vec![NONE; n],
            next_sw: vec![NONE; n],
            in_bundle: vec![NONE; n],
            out_bundle: vec![NONE; n],
            kind: vec![K_SW; n],
            drlc_of: vec![NONE; n],
            hw_count: 0,
            drlcs: vec![DrlcState::default(); arch.drlcs().len()],
            membership: vec![0; n],
            generation: 0,
            lp: {
                // Disable the relaxation cap by default: the ordered
                // sweep relaxes each node at most once per delta and
                // detects cycles through its order checks, so there is
                // no runaway to bound. A caller can still lower it via
                // `set_repair_threshold` to force full-pass fall-backs.
                let mut lp = IncrementalLongestPath::new(n + 1);
                lp.set_threshold(n + 2);
                lp
            },
            seeds: Vec::with_capacity(16),
            struct_seeds: Vec::with_capacity(16),
            eid_scratch: Vec::with_capacity(8),
            log: DeltaLog::default(),
            delta_active: false,
            synced: false,
            batch_out: Vec::new(),
            diff_tasks: Vec::new(),
            diff_procs: Vec::new(),
            diff_drlcs: Vec::new(),
            stats: EvaluatorStats::default(),
        }
    }

    /// Revives a cached [`EvaluatorArenas`] bundle for `app` × `arch`,
    /// recycling every allocation instead of going through the
    /// allocator again. Falls back to [`Evaluator::new`] when the
    /// arenas do not [fit](EvaluatorArenas::fits) this pair.
    ///
    /// The revived evaluator starts unsynchronized (like a fresh one):
    /// the first full [`evaluate`](Evaluator::evaluate) rewrites every
    /// mapping-dependent mirror and the transfer table is recomputed
    /// here from `arch`'s bus, so results are bit-identical to a
    /// cold-started evaluator regardless of what the arenas last held.
    pub fn with_arenas(
        app: &'a TaskGraph,
        arch: &'a Architecture,
        arenas: EvaluatorArenas,
    ) -> Self {
        if !arenas.fits(app, arch) {
            return Evaluator::new(app, arch);
        }
        let EvaluatorArenas {
            n,
            dag,
            mut xfer,
            prev_sw,
            next_sw,
            in_bundle,
            out_bundle,
            kind,
            drlc_of,
            drlcs,
            membership,
            generation,
            mut lp,
            mut seeds,
            mut struct_seeds,
            mut eid_scratch,
            mut log,
            mut batch_out,
            diff_tasks,
            diff_procs,
            diff_drlcs,
            stats,
        } = arenas;
        let bus = arch.bus();
        for (slot, e) in xfer.iter_mut().zip(app.edges()) {
            *slot = bus.transfer_time(e.bytes).value();
        }
        lp.set_threshold(n + 2);
        log.clear();
        seeds.clear();
        struct_seeds.clear();
        eid_scratch.clear();
        batch_out.clear();
        Evaluator {
            app,
            arch,
            n,
            dag,
            xfer,
            prev_sw,
            next_sw,
            in_bundle,
            out_bundle,
            kind,
            drlc_of,
            hw_count: 0,
            drlcs,
            membership,
            generation,
            lp,
            seeds,
            struct_seeds,
            eid_scratch,
            log,
            delta_active: false,
            synced: false,
            batch_out,
            diff_tasks,
            diff_procs,
            diff_drlcs,
            stats,
        }
    }

    /// Detaches the arenas from the `app`/`arch` borrows so they can
    /// outlive the models (e.g. in a warm-evaluator cache). The
    /// exhaustive destructuring here is deliberate: adding a field to
    /// [`Evaluator`] will not compile until a decision is made about
    /// whether it rides along.
    pub fn into_arenas(self) -> EvaluatorArenas {
        let Evaluator {
            app: _,
            arch: _,
            n,
            dag,
            xfer,
            prev_sw,
            next_sw,
            in_bundle,
            out_bundle,
            kind,
            drlc_of,
            hw_count: _,
            drlcs,
            membership,
            generation,
            lp,
            seeds,
            struct_seeds,
            eid_scratch,
            log,
            delta_active: _,
            synced: _,
            batch_out,
            diff_tasks,
            diff_procs,
            diff_drlcs,
            stats,
        } = self;
        EvaluatorArenas {
            n,
            dag,
            xfer,
            prev_sw,
            next_sw,
            in_bundle,
            out_bundle,
            kind,
            drlc_of,
            drlcs,
            membership,
            generation,
            lp,
            seeds,
            struct_seeds,
            eid_scratch,
            log,
            batch_out,
            diff_tasks,
            diff_procs,
            diff_drlcs,
            stats,
        }
    }

    /// The application this evaluator is bound to.
    pub fn app(&self) -> &'a TaskGraph {
        self.app
    }

    /// The architecture this evaluator is bound to.
    pub fn arch(&self) -> &'a Architecture {
        self.arch
    }

    /// Arena and repair counters (see [`EvaluatorStats`]).
    pub fn stats(&self) -> EvaluatorStats {
        let r = self.lp.stats();
        EvaluatorStats {
            repairs: r.repairs,
            full_passes: r.full_passes,
            fallbacks: r.fallbacks,
            max_cone: r.max_cone,
            cone_nodes: r.cone_nodes,
            ..self.stats
        }
    }

    /// `true` once the mirrors reflect a mapping (after a successful
    /// full [`evaluate`](Evaluator::evaluate)); required by
    /// [`evaluate_delta`](Evaluator::evaluate_delta)'s fast path.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// Declares the mirrors stale: the caller mutated the mapping
    /// behind the evaluator's back (e.g. replayed a speculatively
    /// scored move on the resident mapping). The next
    /// [`evaluate_delta`](Evaluator::evaluate_delta) then takes its
    /// full-evaluate fall-back instead of repairing from a state that
    /// no longer matches.
    pub fn invalidate_sync(&mut self) {
        self.synced = false;
        self.delta_active = false;
    }

    /// Sets the repair budget — relaxations the ordered sweep may spend
    /// on a delta before falling back to a full longest-path pass. The
    /// default (`node count + 2`) never trips, since the sweep relaxes
    /// each node at most once; lower values trade repair work for
    /// full-pass predictability and are mainly useful for testing the
    /// fall-back path.
    pub fn set_repair_threshold(&mut self, threshold: usize) {
        self.lp.set_threshold(threshold);
    }

    /// The current repair fall-back threshold.
    pub fn repair_threshold(&self) -> usize {
        self.lp.threshold()
    }

    /// Scores `mapping` from scratch and synchronizes every mirror
    /// with it: CSR weights, processor chains, context states, bundle
    /// markers and longest-path labels. Steady-state calls do not
    /// allocate.
    ///
    /// # Errors
    ///
    /// Exactly as [`evaluate`]:
    /// [`MappingError::CapacityExceeded`] when a context overflows its
    /// device, [`MappingError::CyclicSchedule`] when the imposed orders
    /// contradict the precedence graph.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not belong to this evaluator's `app` ×
    /// `arch` (index out of range).
    pub fn evaluate(&mut self, mapping: &Mapping) -> Result<EvalSummary, MappingError> {
        let (app, arch) = (self.app, self.arch);
        self.stats.evaluations += 1;
        self.synced = false;
        self.delta_active = false;
        self.log.clear();
        self.lp.discard_journal();

        // Capacity check first: a context overflow is infeasible
        // regardless of ordering (same order as `evaluate`). The same
        // pass records the peak context occupancy — the clb_area
        // objective, a `u32` max, so both engines agree exactly.
        let mut clb_area = Clbs::new(0);
        for (d, spec) in arch.drlcs().iter().enumerate() {
            for c in 0..mapping.contexts(d).len() {
                let used = mapping.context_clbs(app, d, c);
                if used > spec.n_clbs() {
                    return Err(MappingError::CapacityExceeded {
                        drlc: d,
                        context: c,
                    });
                }
                clb_area = clb_area.max(used);
            }
        }

        let capacity_before = self.arena_capacity();

        // Node weights under the mapping's placements/implementations
        // (the virtual source keeps weight 0 from construction).
        for t in app.task_ids() {
            let w = mapping.exec_time(app, t).value();
            self.dag.set_node_weight(t.0, w);
        }

        // Data-edge weights: zero on-device, bus latency across.
        for (eid, e) in app.edges().iter().enumerate() {
            let w = if same_device(mapping.resource(e.from), mapping.resource(e.to)) {
                0.0
            } else {
                self.xfer[eid]
            };
            self.dag.set_edge_weight(eid as u32, w);
        }

        // Placement kinds and hardware census.
        self.hw_count = 0;
        for t in app.task_ids() {
            let (k, d) = match mapping.placement(t) {
                Placement::Software { .. } => (K_SW, NONE),
                Placement::Hardware { drlc, .. } => (K_HW, drlc as u32),
                Placement::Asic { .. } => (K_ASIC, NONE),
            };
            self.kind[t.index()] = k;
            self.drlc_of[t.index()] = d;
            if k == K_HW {
                self.hw_count += 1;
            }
        }

        // Processor chains (Esw).
        self.prev_sw.fill(NONE);
        self.next_sw.fill(NONE);
        for p in 0..arch.processors().len() {
            for pair in mapping.proc_order(p).windows(2) {
                self.next_sw[pair[0].index()] = pair[1].0;
                self.prev_sw[pair[1].index()] = pair[0].0;
            }
        }

        // Context mirrors and bundle markers (Ehw).
        for d in 0..arch.drlcs().len() {
            self.rebuild_drlc_into_alt(mapping, d);
            let st = &mut self.drlcs[d];
            std::mem::swap(&mut st.cur, &mut st.alt);
            std::mem::swap(&mut st.cur_len, &mut st.alt_len);
        }
        self.in_bundle.fill(NONE);
        self.out_bundle.fill(NONE);
        for d in 0..self.drlcs.len() {
            let st = &self.drlcs[d];
            for k in 0..st.cur_len {
                for &t in &st.cur[k].initials {
                    self.in_bundle[t as usize] = enc_bundle(d, k);
                }
                if k + 1 < st.cur_len {
                    for &t in &st.cur[k].terminals {
                        self.out_bundle[t as usize] = enc_bundle(d, k + 1);
                    }
                }
            }
        }

        // Full longest-path pass over the overlay.
        let full = {
            let overlay = Overlay {
                dag: &self.dag,
                prev_sw: &self.prev_sw,
                next_sw: &self.next_sw,
                in_bundle: &self.in_bundle,
                out_bundle: &self.out_bundle,
                drlcs: &self.drlcs,
                n: self.n,
            };
            self.lp.full(&overlay)
        };
        if full.is_err() {
            return Err(MappingError::CyclicSchedule);
        }
        self.lp.discard_journal();
        self.synced = true;

        if self.arena_capacity() != capacity_before {
            self.stats.arena_growths += 1;
            self.stats.last_growth_eval = self.stats.evaluations;
        }

        Ok(self.summarize(clb_area))
    }

    /// Scores the mapping that results from applying one move (of task
    /// `moved`) to the last-synchronized state, in time proportional to
    /// the move's repair cone rather than the graph size.
    ///
    /// `mapping` must be the *post-move* state and must differ from the
    /// synchronized state only by a single-task relocation or
    /// re-implementation (the shapes produced by
    /// [`MoveDelta`](crate::moves::MoveDelta); context renumbering on
    /// the touched device is part of that shape). On success the
    /// mirrors track `mapping` and the previous state stays recoverable
    /// via [`revert_delta`](Evaluator::revert_delta) until the next
    /// evaluation. On error the evaluator has already reverted itself —
    /// do **not** call `revert_delta` then.
    ///
    /// If the evaluator is not yet synchronized this falls back to a
    /// full [`evaluate`](Evaluator::evaluate), after which there is no
    /// delta to revert.
    ///
    /// # Errors
    ///
    /// As [`evaluate`], with the same error priority (capacity before
    /// cycles).
    pub fn evaluate_delta(
        &mut self,
        mapping: &Mapping,
        moved: TaskId,
    ) -> Result<EvalSummary, MappingError> {
        if !self.synced {
            return self.evaluate(mapping);
        }
        self.stats.evaluations += 1;
        let capacity_before = self.arena_capacity();
        self.log.clear();
        self.seeds.clear();
        self.struct_seeds.clear();
        self.lp.discard_journal();
        self.log.hw_count = self.hw_count;
        self.delta_active = true;

        let ti = moved.index();
        let old_kind = self.kind[ti];
        let old_drlc = self.drlc_of[ti];

        // 1. Unsplice from the old processor chain (O(1)).
        if old_kind == K_SW {
            self.unsplice_sw(moved.0);
        }
        // 2. Task-local updates: node weight, incident data-edge
        //    weights, kind, home device, hardware census.
        self.update_task(mapping, moved);
        // 3. Splice into the new processor chain.
        if self.kind[ti] == K_SW {
            self.splice_sw(mapping, moved);
        }
        // 4. Rebuild the touched devices (old home, new home) and seed
        //    the difference: diff against the old state, clear old
        //    markers, commit, set new markers.
        let mut touched = [usize::MAX; 2];
        let mut nt = 0usize;
        if old_kind == K_HW {
            touched[nt] = old_drlc as usize;
            nt += 1;
        }
        if self.kind[ti] == K_HW {
            let nd = self.drlc_of[ti] as usize;
            if nt == 0 || touched[0] != nd {
                touched[nt] = nd;
                nt += 1;
            }
        }
        for &d in &touched[..nt] {
            self.rebuild_drlc_into_alt(mapping, d);
        }
        for &d in &touched[..nt] {
            self.diff_seed_drlc(d);
        }
        for &d in &touched[..nt] {
            self.clear_bundles_logged(d);
        }
        for &d in &touched[..nt] {
            let st = &mut self.drlcs[d];
            std::mem::swap(&mut st.cur, &mut st.alt);
            std::mem::swap(&mut st.cur_len, &mut st.alt_len);
            self.log.swapped.push(d as u32);
        }
        for &d in &touched[..nt] {
            self.set_bundles_logged(d);
        }

        let result = self.finish_delta();
        if result.is_ok() && self.arena_capacity() != capacity_before {
            self.stats.arena_growths += 1;
            self.stats.last_growth_eval = self.stats.evaluations;
        }
        result
    }

    /// Restores the mirrors and longest-path labels to the state before
    /// the last successful [`evaluate_delta`](Evaluator::evaluate_delta)
    /// (the annealer's move rejection). Bit-identical restoration: the
    /// undo log replays previous values verbatim and the label journal
    /// rolls back verbatim.
    ///
    /// # Panics
    ///
    /// Panics if no un-reverted successful delta is outstanding.
    pub fn revert_delta(&mut self) {
        assert!(
            self.delta_active,
            "revert_delta without a preceding successful evaluate_delta"
        );
        self.rollback_delta_state();
        self.delta_active = false;
    }

    /// Scores `candidates` against a common `base` mapping, amortizing
    /// the single full synchronization: the base is evaluated once,
    /// then each candidate is applied as a delta (diffed directly
    /// against the base — candidates may differ from it by *any*
    /// number of moves) and reverted. Results are returned per
    /// candidate, in order; the slice stays valid until the next call.
    /// After the call the evaluator is synchronized to `base`.
    ///
    /// # Errors
    ///
    /// The outer error reports an infeasible `base`. Per-candidate
    /// errors (capacity, cycles) land in the corresponding slot and
    /// are exactly those [`evaluate`] would report.
    pub fn evaluate_batch(
        &mut self,
        base: &Mapping,
        candidates: &[Mapping],
    ) -> Result<&[Result<EvalSummary, MappingError>], MappingError> {
        self.evaluate(base)?;
        self.batch_out.clear();
        for cand in candidates {
            self.stats.evaluations += 1;
            self.log.clear();
            self.seeds.clear();
            self.struct_seeds.clear();
            self.lp.discard_journal();
            self.log.hw_count = self.hw_count;
            self.delta_active = true;
            self.apply_diff(base, cand);
            let r = self.finish_delta();
            let ok = r.is_ok();
            self.batch_out.push(r);
            if ok {
                // Back to the base for the next candidate.
                self.rollback_delta_state();
                self.delta_active = false;
            }
        }
        Ok(&self.batch_out)
    }

    /// Full evaluation with the per-task trace (starts, completions,
    /// critical path) — the report path. Allocates; use
    /// [`evaluate`](Evaluator::evaluate) or
    /// [`evaluate_delta`](Evaluator::evaluate_delta) on the hot path.
    ///
    /// # Errors
    ///
    /// As [`evaluate`].
    pub fn evaluate_full(&self, mapping: &Mapping) -> Result<Evaluation, MappingError> {
        evaluate(self.app, self.arch, mapping)
    }

    // --- delta machinery -------------------------------------------------

    /// Removes `t` from its processor chain, relinking its neighbours.
    fn unsplice_sw(&mut self, t: u32) {
        let p = self.prev_sw[t as usize];
        let nx = self.next_sw[t as usize];
        let Self {
            prev_sw,
            next_sw,
            log,
            seeds,
            struct_seeds,
            ..
        } = self;
        if p != NONE {
            log_set_u32(&mut log.next_sw, next_sw, p, nx);
        }
        if nx != NONE && log_set_u32(&mut log.prev_sw, prev_sw, nx, p) {
            seeds.push(nx);
            struct_seeds.push(nx);
        }
        if log_set_u32(&mut log.prev_sw, prev_sw, t, NONE) {
            seeds.push(t);
            struct_seeds.push(t);
        }
        log_set_u32(&mut log.next_sw, next_sw, t, NONE);
    }

    /// Inserts `moved` into its (new) processor chain at the position
    /// the mapping's order dictates.
    fn splice_sw(&mut self, mapping: &Mapping, moved: TaskId) {
        let processor = match mapping.placement(moved) {
            Placement::Software { processor } => processor,
            _ => unreachable!("splice_sw on a non-software placement"),
        };
        let order = mapping.proc_order(processor);
        let pos = order
            .iter()
            .position(|&x| x == moved)
            .expect("software task present in its processor order");
        let a = if pos > 0 { order[pos - 1].0 } else { NONE };
        let b = if pos + 1 < order.len() {
            order[pos + 1].0
        } else {
            NONE
        };
        let Self {
            prev_sw,
            next_sw,
            log,
            seeds,
            struct_seeds,
            ..
        } = self;
        if a != NONE {
            log_set_u32(&mut log.next_sw, next_sw, a, moved.0);
        }
        if log_set_u32(&mut log.prev_sw, prev_sw, moved.0, a) {
            seeds.push(moved.0);
            struct_seeds.push(moved.0);
        }
        log_set_u32(&mut log.next_sw, next_sw, moved.0, b);
        if b != NONE && log_set_u32(&mut log.prev_sw, prev_sw, b, moved.0) {
            seeds.push(b);
            struct_seeds.push(b);
        }
    }

    /// Syncs `t`'s node weight, incident data-edge weights, placement
    /// kind and home device with `mapping`, logging and seeding every
    /// change.
    fn update_task(&mut self, mapping: &Mapping, t: TaskId) {
        let app = self.app;
        let ti = t.index();

        let w = mapping.exec_time(app, t).value();
        let old = self.dag.node_weight(t.0);
        if old.to_bits() != w.to_bits() {
            self.log.node_w.push((t.0, old));
            self.dag.set_node_weight(t.0, w);
            self.seeds.push(t.0);
        }

        let rt = mapping.resource(t);
        self.eid_scratch.clear();
        self.eid_scratch.extend(self.dag.out_edges(t.0));
        for i in 0..self.eid_scratch.len() {
            let (v, eid) = self.eid_scratch[i];
            let w = if same_device(rt, mapping.resource(TaskId(v))) {
                0.0
            } else {
                self.xfer[eid as usize]
            };
            let old = self.dag.edge_weight(eid);
            if old.to_bits() != w.to_bits() {
                self.log.edge_w.push((eid, old));
                self.dag.set_edge_weight(eid, w);
                self.seeds.push(v);
            }
        }
        self.eid_scratch.clear();
        self.eid_scratch.extend(self.dag.in_edges(t.0));
        for i in 0..self.eid_scratch.len() {
            let (u, eid) = self.eid_scratch[i];
            let w = if same_device(mapping.resource(TaskId(u)), rt) {
                0.0
            } else {
                self.xfer[eid as usize]
            };
            let old = self.dag.edge_weight(eid);
            if old.to_bits() != w.to_bits() {
                self.log.edge_w.push((eid, old));
                self.dag.set_edge_weight(eid, w);
                self.seeds.push(t.0);
            }
        }

        let (nk, nd) = match mapping.placement(t) {
            Placement::Software { .. } => (K_SW, NONE),
            Placement::Hardware { drlc, .. } => (K_HW, drlc as u32),
            Placement::Asic { .. } => (K_ASIC, NONE),
        };
        let ok = self.kind[ti];
        if ok != nk {
            self.log.kind.push((t.0, ok));
            self.kind[ti] = nk;
            if ok == K_HW {
                self.hw_count -= 1;
            }
            if nk == K_HW {
                self.hw_count += 1;
            }
        }
        let od = self.drlc_of[ti];
        if od != nd {
            self.log.drlc_of.push((t.0, od));
            self.drlc_of[ti] = nd;
        }
    }

    /// Rebuilds device `d`'s context mirror from `mapping` into the
    /// `alt` buffer (occupancy, reconfiguration latency, initials,
    /// terminals), recycling capacity.
    fn rebuild_drlc_into_alt(&mut self, mapping: &Mapping, d: usize) {
        let app = self.app;
        let arch = self.arch;
        let spec = &arch.drlcs()[d];
        let n_ctxs = mapping.contexts(d).len();
        let Self {
            dag,
            drlcs,
            membership,
            generation,
            ..
        } = self;
        let st = &mut drlcs[d];
        st.alt_len = n_ctxs;
        while st.alt.len() < n_ctxs {
            st.alt.push(CtxState::default());
        }
        for k in 0..n_ctxs {
            let ctx_tasks = mapping.contexts(d)[k].tasks();
            let used = mapping.context_clbs(app, d, k);
            let slot = &mut st.alt[k];
            slot.clbs = used.value();
            slot.reconfig = spec.reconfiguration_time(used).value();
            *generation += 1;
            let g = *generation;
            for &t in ctx_tasks {
                membership[t.index()] = g;
            }
            slot.initials.clear();
            slot.terminals.clear();
            for &t in ctx_tasks {
                if dag.in_edges(t.0).all(|(u, _)| membership[u as usize] != g) {
                    slot.initials.push(t.0);
                }
                if dag.out_edges(t.0).all(|(v, _)| membership[v as usize] != g) {
                    slot.terminals.push(t.0);
                }
            }
        }
    }

    /// Seeds every node whose virtual *Ehw* in-edges differ between
    /// device `d`'s old (`cur`) and new (`alt`) context mirror. Context
    /// `k`'s initials gain their in-edges from context `k-1`'s
    /// terminals (or the source, for `k == 0`) at the reconfiguration
    /// weight, so a context is "changed" when any of those moved.
    fn diff_seed_drlc(&mut self, d: usize) {
        let Self {
            drlcs,
            seeds,
            struct_seeds,
            ..
        } = self;
        let st = &drlcs[d];
        let kmax = st.cur_len.max(st.alt_len);
        for k in 0..kmax {
            let changed = if k >= st.cur_len || k >= st.alt_len {
                true
            } else {
                let o = &st.cur[k];
                let nw = &st.alt[k];
                o.reconfig.to_bits() != nw.reconfig.to_bits()
                    || o.initials != nw.initials
                    || (k > 0 && st.cur[k - 1].terminals != st.alt[k - 1].terminals)
            };
            if changed {
                if k < st.cur_len {
                    seeds.extend_from_slice(&st.cur[k].initials);
                    struct_seeds.extend_from_slice(&st.cur[k].initials);
                }
                if k < st.alt_len {
                    seeds.extend_from_slice(&st.alt[k].initials);
                    struct_seeds.extend_from_slice(&st.alt[k].initials);
                }
            }
        }
    }

    /// Clears the bundle markers of device `d`'s *old* (`cur`) mirror,
    /// logged (called before the `cur`/`alt` swap).
    fn clear_bundles_logged(&mut self, d: usize) {
        let Self {
            drlcs,
            in_bundle,
            out_bundle,
            log,
            ..
        } = self;
        let st = &drlcs[d];
        for k in 0..st.cur_len {
            for &t in &st.cur[k].initials {
                log_set_u32(&mut log.in_bundle, in_bundle, t, NONE);
            }
            if k + 1 < st.cur_len {
                for &t in &st.cur[k].terminals {
                    log_set_u32(&mut log.out_bundle, out_bundle, t, NONE);
                }
            }
        }
    }

    /// Sets the bundle markers of device `d`'s *new* (`cur`) mirror,
    /// logged (called after the `cur`/`alt` swap).
    fn set_bundles_logged(&mut self, d: usize) {
        let Self {
            drlcs,
            in_bundle,
            out_bundle,
            log,
            ..
        } = self;
        let st = &drlcs[d];
        for k in 0..st.cur_len {
            for &t in &st.cur[k].initials {
                log_set_u32(&mut log.in_bundle, in_bundle, t, enc_bundle(d, k));
            }
            if k + 1 < st.cur_len {
                for &t in &st.cur[k].terminals {
                    log_set_u32(&mut log.out_bundle, out_bundle, t, enc_bundle(d, k + 1));
                }
            }
        }
    }

    /// Diffs `cand` against `base` (the synchronized state) and applies
    /// every difference to the mirrors, logged and seeded. Used by the
    /// batch path, where a candidate may differ by many moves.
    fn apply_diff(&mut self, base: &Mapping, cand: &Mapping) {
        let app = self.app;
        let arch = self.arch;
        self.diff_tasks.clear();
        self.diff_procs.clear();
        self.diff_drlcs.clear();
        for t in app.task_ids() {
            if base.placement(t) != cand.placement(t) {
                self.diff_tasks.push(t.0);
                // A hardware placement that changed on either side can
                // alter its device's context areas and reconfiguration
                // weights even when the context *membership* lists
                // compare equal (a pure re-implementation), so those
                // devices must be rebuilt too.
                if let Placement::Hardware { drlc, .. } = base.placement(t) {
                    self.diff_drlcs.push(drlc as u32);
                }
                if let Placement::Hardware { drlc, .. } = cand.placement(t) {
                    self.diff_drlcs.push(drlc as u32);
                }
            }
        }
        for p in 0..arch.processors().len() {
            if base.proc_order(p) != cand.proc_order(p) {
                self.diff_procs.push(p as u32);
            }
        }
        for d in 0..arch.drlcs().len() {
            if base.contexts(d) != cand.contexts(d) {
                self.diff_drlcs.push(d as u32);
            }
        }
        self.diff_drlcs.sort_unstable();
        self.diff_drlcs.dedup();

        // Tasks that left software lose their chain links up front so
        // the per-processor walks below see a consistent membership.
        for i in 0..self.diff_tasks.len() {
            let t = self.diff_tasks[i];
            if self.kind[t as usize] == K_SW
                && !matches!(cand.placement(TaskId(t)), Placement::Software { .. })
            {
                self.unsplice_sw(t);
            }
        }
        for i in 0..self.diff_tasks.len() {
            let t = TaskId(self.diff_tasks[i]);
            self.update_task(cand, t);
        }
        // Walk each differing processor order and re-link it; every
        // changed predecessor seeds its task.
        for i in 0..self.diff_procs.len() {
            let p = self.diff_procs[i] as usize;
            let order = cand.proc_order(p);
            for pos in 0..order.len() {
                let t = order[pos].0;
                let want_prev = if pos > 0 { order[pos - 1].0 } else { NONE };
                let want_next = if pos + 1 < order.len() {
                    order[pos + 1].0
                } else {
                    NONE
                };
                let Self {
                    prev_sw,
                    next_sw,
                    log,
                    seeds,
                    struct_seeds,
                    ..
                } = self;
                if log_set_u32(&mut log.prev_sw, prev_sw, t, want_prev) {
                    seeds.push(t);
                    struct_seeds.push(t);
                }
                log_set_u32(&mut log.next_sw, next_sw, t, want_next);
            }
        }
        // Rebuild the differing devices: diff, clear old markers,
        // commit, set new markers (same order as the single-move path).
        for i in 0..self.diff_drlcs.len() {
            let d = self.diff_drlcs[i] as usize;
            self.rebuild_drlc_into_alt(cand, d);
        }
        for i in 0..self.diff_drlcs.len() {
            let d = self.diff_drlcs[i] as usize;
            self.diff_seed_drlc(d);
        }
        for i in 0..self.diff_drlcs.len() {
            let d = self.diff_drlcs[i] as usize;
            self.clear_bundles_logged(d);
        }
        for i in 0..self.diff_drlcs.len() {
            let d = self.diff_drlcs[i] as usize;
            let st = &mut self.drlcs[d];
            std::mem::swap(&mut st.cur, &mut st.alt);
            std::mem::swap(&mut st.cur_len, &mut st.alt_len);
            self.log.swapped.push(d as u32);
        }
        for i in 0..self.diff_drlcs.len() {
            let d = self.diff_drlcs[i] as usize;
            self.set_bundles_logged(d);
        }
    }

    /// Shared tail of every delta: capacity check from the mirrors (in
    /// `(device, context)` order, same error priority as the
    /// reference), bounded label repair, summary. Reverts the delta on
    /// error.
    ///
    fn finish_delta(&mut self) -> Result<EvalSummary, MappingError> {
        let mut clb_area = Clbs::new(0);
        for d in 0..self.drlcs.len() {
            let cap = self.arch.drlcs()[d].n_clbs();
            let st = &self.drlcs[d];
            for c in 0..st.cur_len {
                let used = Clbs::new(st.cur[c].clbs);
                if used > cap {
                    self.rollback_delta_state();
                    self.delta_active = false;
                    return Err(MappingError::CapacityExceeded {
                        drlc: d,
                        context: c,
                    });
                }
                clb_area = clb_area.max(used);
            }
        }
        let repaired = {
            let overlay = Overlay {
                dag: &self.dag,
                prev_sw: &self.prev_sw,
                next_sw: &self.next_sw,
                in_bundle: &self.in_bundle,
                out_bundle: &self.out_bundle,
                drlcs: &self.drlcs,
                n: self.n,
            };
            // Certify the recorded topological order, then relabel
            // with one plain relax sweep from the first seeded
            // position. Every edge the delta added or removed has its
            // head in `struct_seeds`, and rotations preserve the
            // mutual order of unmoved nodes, so the order stays valid
            // iff (a) each structural seed can be placed between its
            // neighbors and (b) after any placement actually moved a
            // node, every structural seed's in- and out-edges still
            // respect the positions. A valid order proves the graph
            // acyclic and makes the sweep exact (each node relaxes
            // after all predecessors — the unique label fixpoint, bit
            // for bit). Certification failure — including any cycle,
            // which no order can serialize — falls back to a full
            // pass, which rebuilds the order.
            let mut certified = true;
            let mut moved_any = false;
            // Up to three placement rounds: a seed can be unplaceable
            // only because another not-yet-moved seed blocks its slot,
            // so retrying the failures after the rest have moved
            // resolves chains (e.g. consecutive contexts reordering
            // together). No progress between rounds means a genuine
            // conflict.
            for _round in 0..3 {
                let mut failed = false;
                let mut progressed = false;
                for i in 0..self.struct_seeds.len() {
                    match self.lp.reposition(&overlay, self.struct_seeds[i]) {
                        None => failed = true,
                        Some(moved) => {
                            moved_any |= moved;
                            progressed |= moved;
                        }
                    }
                }
                if !failed {
                    certified = true;
                    break;
                }
                certified = false;
                if !progressed {
                    // A failed round that placed nothing leaves the
                    // order bit-identical, so the next round would fail
                    // the same way — a genuine conflict. Fall back now
                    // instead of burning two more identical rounds.
                    break;
                }
            }
            if certified && moved_any {
                let lp = &self.lp;
                'verify: for &v in &self.struct_seeds {
                    let pv = lp.order_pos(v);
                    let mut ok = true;
                    overlay.for_each_in(v, |u, _| ok &= lp.order_pos(u) < pv);
                    overlay.for_each_out(v, |t| ok &= pv < lp.order_pos(t));
                    if !ok {
                        certified = false;
                        break 'verify;
                    }
                }
            }
            if certified {
                let mut start = usize::MAX;
                for &v in &self.seeds {
                    start = start.min(self.lp.order_pos(v) as usize);
                }
                self.lp.sweep_certified(&overlay, start);
                Ok(())
            } else {
                self.lp.full_fallback(&overlay)
            }
        };
        if repaired.is_err() {
            self.rollback_delta_state();
            self.delta_active = false;
            return Err(MappingError::CyclicSchedule);
        }
        Ok(self.summarize(clb_area))
    }

    /// Replays the undo log in reverse and rolls back the label
    /// journal, restoring the pre-delta state bit-identically.
    fn rollback_delta_state(&mut self) {
        self.lp.rollback();
        let Self {
            dag,
            log,
            prev_sw,
            next_sw,
            in_bundle,
            out_bundle,
            kind,
            drlc_of,
            drlcs,
            ..
        } = self;
        for &(i, w) in log.node_w.iter().rev() {
            dag.set_node_weight(i, w);
        }
        for &(e, w) in log.edge_w.iter().rev() {
            dag.set_edge_weight(e, w);
        }
        for &(i, v) in log.prev_sw.iter().rev() {
            prev_sw[i as usize] = v;
        }
        for &(i, v) in log.next_sw.iter().rev() {
            next_sw[i as usize] = v;
        }
        for &(i, v) in log.in_bundle.iter().rev() {
            in_bundle[i as usize] = v;
        }
        for &(i, v) in log.out_bundle.iter().rev() {
            out_bundle[i as usize] = v;
        }
        for &(i, v) in log.kind.iter().rev() {
            kind[i as usize] = v;
        }
        for &(i, v) in log.drlc_of.iter().rev() {
            drlc_of[i as usize] = v;
        }
        for &d in log.swapped.iter().rev() {
            let st = &mut drlcs[d as usize];
            std::mem::swap(&mut st.cur, &mut st.alt);
            std::mem::swap(&mut st.cur_len, &mut st.alt_len);
        }
        self.hw_count = self.log.hw_count;
        self.log.clear();
    }

    /// Assembles the summary from the mirrors and the live labels.
    /// Value-identical to the reference: the breakdown sums the same
    /// `f64` reconfiguration latencies in the same `(device, context)`
    /// order, and the makespan is the label max (order-free).
    fn summarize(&self, clb_area: Clbs) -> EvalSummary {
        let makespan = self.lp.makespan();
        let mut initial_reconfig = Micros::ZERO;
        let mut dynamic_reconfig = Micros::ZERO;
        let mut n_contexts = 0usize;
        for st in &self.drlcs {
            n_contexts += st.cur_len;
            for k in 0..st.cur_len {
                let r = Micros::new(st.cur[k].reconfig);
                if k == 0 {
                    initial_reconfig += r;
                } else {
                    dynamic_reconfig += r;
                }
            }
        }
        let comp_comm =
            Micros::new((makespan - initial_reconfig.value() - dynamic_reconfig.value()).max(0.0));
        EvalSummary {
            makespan: Micros::new(makespan),
            n_contexts,
            n_hw_tasks: self.hw_count as usize,
            clb_area,
            breakdown: EvalBreakdown {
                initial_reconfig,
                dynamic_reconfig,
                computation_communication: comp_comm,
            },
        }
    }

    /// Total capacity across growable arenas, compared before/after an
    /// evaluation to detect allocator traffic.
    fn arena_capacity(&self) -> usize {
        let mut cap = self.seeds.capacity()
            + self.eid_scratch.capacity()
            + self.batch_out.capacity()
            + self.diff_tasks.capacity()
            + self.diff_procs.capacity()
            + self.diff_drlcs.capacity()
            + self.lp.scratch_capacity()
            + self.log.capacity();
        for st in &self.drlcs {
            cap += st.cur.capacity() + st.alt.capacity();
            for c in st.cur.iter().chain(&st.alt) {
                cap += c.initials.capacity() + c.terminals.capacity();
            }
        }
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_initial;
    use crate::moves::{propose_impl_move, propose_pair_move, MoveScratch};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rdse_model::units::{Bytes, Clbs};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("fx");
        let a = app
            .add_task(
                "a",
                "F",
                us(10.0),
                vec![HwImpl::new(Clbs::new(100), us(2.0))],
            )
            .unwrap();
        let b = app
            .add_task(
                "b",
                "G",
                us(20.0),
                vec![HwImpl::new(Clbs::new(150), us(3.0))],
            )
            .unwrap();
        let c = app.add_task("c", "H", us(5.0), vec![]).unwrap();
        app.add_data_edge(a, b, Bytes::new(1000)).unwrap();
        app.add_data_edge(b, c, Bytes::new(2000)).unwrap();
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(200), us(0.1), 1.0)
            .bus_rate(100.0)
            .build()
            .unwrap();
        (app, arch)
    }

    fn topo(app: &TaskGraph) -> Vec<TaskId> {
        rdse_graph::topo_sort(&app.precedence_graph())
            .unwrap()
            .into_iter()
            .map(TaskId::from)
            .collect()
    }

    #[test]
    fn matches_reference_on_random_mappings() {
        let (app, arch) = fixture();
        let mut evaluator = Evaluator::new(&app, &arch);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let m = random_initial(&app, &arch, &mut rng);
            let summary = evaluator.evaluate(&m).unwrap();
            let reference = evaluate(&app, &arch, &m).unwrap();
            assert_eq!(
                summary.makespan.value().to_bits(),
                reference.makespan.value().to_bits()
            );
            assert_eq!(summary, reference.summary());
        }
    }

    #[test]
    fn reports_same_errors_as_reference() {
        let (app, arch) = fixture();
        let mut evaluator = Evaluator::new(&app, &arch);
        // Capacity overflow.
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0);
        m.detach(TaskId(1));
        m.insert_hardware(TaskId(1), 0, 0, 0); // 250 > 200 CLBs
        assert_eq!(
            evaluator.evaluate(&m),
            Err(MappingError::CapacityExceeded {
                drlc: 0,
                context: 0
            })
        );
        // Cyclic order.
        let m = Mapping::all_software(&app, &arch, vec![TaskId(2), TaskId(0), TaskId(1)]);
        assert_eq!(evaluator.evaluate(&m), Err(MappingError::CyclicSchedule));
        // Backwards context order is cyclic too.
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 0, 0);
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 1, 0);
        assert_eq!(evaluator.evaluate(&m), Err(MappingError::CyclicSchedule));
    }

    #[test]
    fn arenas_stop_growing() {
        let (app, arch) = fixture();
        let mut evaluator = Evaluator::new(&app, &arch);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let m = random_initial(&app, &arch, &mut rng);
            let _ = evaluator.evaluate(&m).unwrap();
        }
        let stats = evaluator.stats();
        assert_eq!(stats.evaluations, 100);
        assert!(
            stats.arenas_warm(),
            "arenas still growing after 100 evals: {stats:?}"
        );
        // Growths can only happen early, while capacity warms up.
        assert!(stats.last_growth_eval < 50, "{stats:?}");
    }

    #[test]
    fn full_evaluation_agrees_with_summary() {
        let (app, arch) = fixture();
        let mut evaluator = Evaluator::new(&app, &arch);
        let m = Mapping::all_software(&app, &arch, topo(&app));
        let summary = evaluator.evaluate(&m).unwrap();
        let full = evaluator.evaluate_full(&m).unwrap();
        assert_eq!(full.summary(), summary);
        assert_eq!(full.makespan, us(35.0));
    }

    /// Drives the delta path with the real move proposals and checks
    /// every answer (and every revert) against the from-scratch
    /// reference, bit for bit.
    fn delta_walk(
        app: &TaskGraph,
        arch: &Architecture,
        seed: u64,
        steps: usize,
        threshold: Option<usize>,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mapping = random_initial(app, arch, &mut rng);
        let mut evaluator = Evaluator::new(app, arch);
        if let Some(t) = threshold {
            evaluator.set_repair_threshold(t);
        }
        // Feasible start (random_initial is all-feasible by design,
        // but keep the walk robust).
        if evaluator.evaluate(&mapping).is_err() {
            mapping = Mapping::all_software(app, arch, topo(app));
            evaluator.evaluate(&mapping).unwrap();
        }
        let mut scratch = MoveScratch::default();
        let mut applied = 0usize;
        for step in 0..steps {
            let outcome = if step % 3 == 0 {
                propose_impl_move(app, arch, &mut mapping, &mut rng, &mut scratch)
            } else {
                propose_pair_move(app, arch, &mut mapping, &mut rng, &mut scratch)
            };
            let Some(outcome) = outcome else { continue };
            applied += 1;
            let delta = evaluator.evaluate_delta(&mapping, outcome.delta.task());
            let reference = evaluate(app, arch, &mapping);
            match (&delta, &reference) {
                (Ok(s), Ok(r)) => {
                    assert_eq!(
                        s.makespan.value().to_bits(),
                        r.makespan.value().to_bits(),
                        "makespan bits diverged at step {step}"
                    );
                    assert_eq!(*s, r.summary(), "summary diverged at step {step}");
                }
                (Err(e), Err(re)) => assert_eq!(e, re, "error diverged at step {step}"),
                _ => panic!("feasibility diverged at step {step}: {delta:?} vs {reference:?}"),
            }
            match delta {
                Ok(_) => {
                    // Coin-flip rejection, like the annealer.
                    if rng.random::<bool>() {
                        evaluator.revert_delta();
                        outcome.delta.undo(&mut mapping);
                    }
                }
                Err(_) => {
                    // The evaluator reverted itself; undo the mapping.
                    outcome.delta.undo(&mut mapping);
                }
            }
        }
        assert!(applied > steps / 10, "walk exercised too few moves");
        // The mirrors must still be exact: one more fresh comparison.
        let summary = evaluator.evaluate(&mapping).unwrap();
        assert_eq!(summary, evaluate(app, arch, &mapping).unwrap().summary());
    }

    #[test]
    fn delta_walk_matches_reference() {
        let (app, arch) = fixture();
        for seed in [1, 17, 42] {
            delta_walk(&app, &arch, seed, 400, None);
        }
    }

    #[test]
    fn delta_walk_matches_reference_on_paper_workload() {
        let app = rdse_workloads::motion_detection_app();
        let arch = rdse_workloads::epicure_architecture(2000);
        for seed in [1, 17] {
            delta_walk(&app, &arch, seed, 300, None);
        }
    }

    #[test]
    fn delta_walk_matches_reference_at_threshold_extremes() {
        let (app, arch) = fixture();
        // Threshold 0: every repair falls back to a full pass.
        delta_walk(&app, &arch, 7, 200, Some(0));
        // Threshold n+1: no repair ever falls back.
        delta_walk(&app, &arch, 7, 200, Some(app.n_tasks() + 1));
    }

    #[test]
    fn delta_stats_count_repairs_and_fallbacks() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(11);
        let mapping = random_initial(&app, &arch, &mut rng);
        let mut evaluator = Evaluator::new(&app, &arch);
        evaluator.evaluate(&mapping).unwrap();
        let mut m = mapping.clone();
        let mut scratch = MoveScratch::default();
        for _ in 0..50 {
            if let Some(outcome) = propose_pair_move(&app, &arch, &mut m, &mut rng, &mut scratch) {
                match evaluator.evaluate_delta(&m, outcome.delta.task()) {
                    Ok(_) => {}
                    Err(_) => outcome.delta.undo(&mut m),
                }
            }
        }
        let stats = evaluator.stats();
        assert!(stats.repairs > 0, "{stats:?}");
        assert!(stats.full_passes >= 1, "{stats:?}"); // the initial sync
        assert!(stats.max_cone as usize <= app.n_tasks() + 1, "{stats:?}");
        // Force fall-backs and confirm they are counted.
        evaluator.set_repair_threshold(0);
        evaluator.evaluate(&m).unwrap();
        let before = evaluator.stats().fallbacks;
        let mut forced = 0;
        for _ in 0..20 {
            if let Some(outcome) = propose_pair_move(&app, &arch, &mut m, &mut rng, &mut scratch) {
                match evaluator.evaluate_delta(&m, outcome.delta.task()) {
                    Ok(_) => forced += 1,
                    Err(_) => outcome.delta.undo(&mut m),
                }
            }
        }
        if forced > 0 {
            assert!(
                evaluator.stats().fallbacks > before,
                "{:?}",
                evaluator.stats()
            );
        }
    }

    #[test]
    fn batch_matches_sequential_evaluation() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(23);
        let base = random_initial(&app, &arch, &mut rng);
        let mut scratch = MoveScratch::default();
        let mut candidates = Vec::new();
        for _ in 0..24 {
            let mut cand = base.clone();
            // Candidates may be several moves away from the base.
            let hops = 1 + (rng.random::<u32>() % 3) as usize;
            for h in 0..hops {
                let _ = if h % 2 == 0 {
                    propose_pair_move(&app, &arch, &mut cand, &mut rng, &mut scratch)
                } else {
                    propose_impl_move(&app, &arch, &mut cand, &mut rng, &mut scratch)
                };
            }
            candidates.push(cand);
        }
        let mut evaluator = Evaluator::new(&app, &arch);
        let results: Vec<_> = evaluator
            .evaluate_batch(&base, &candidates)
            .unwrap()
            .to_vec();
        assert_eq!(results.len(), candidates.len());
        for (cand, got) in candidates.iter().zip(&results) {
            let reference = evaluate(&app, &arch, cand);
            match (got, &reference) {
                (Ok(s), Ok(r)) => {
                    assert_eq!(s.makespan.value().to_bits(), r.makespan.value().to_bits());
                    assert_eq!(*s, r.summary());
                }
                (Err(e), Err(re)) => assert_eq!(e, re),
                _ => panic!("feasibility diverged: {got:?} vs {reference:?}"),
            }
        }
        // The evaluator is back on the base afterwards.
        assert!(evaluator.is_synced());
        let base_again = evaluator.evaluate(&base).unwrap();
        assert_eq!(base_again, evaluate(&app, &arch, &base).unwrap().summary());
    }

    #[test]
    fn batch_arenas_warm_across_calls() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(31);
        let mut evaluator = Evaluator::new(&app, &arch);
        let mut scratch = MoveScratch::default();
        for _ in 0..20 {
            let base = random_initial(&app, &arch, &mut rng);
            let mut candidates = Vec::new();
            for _ in 0..8 {
                let mut cand = base.clone();
                let _ = propose_pair_move(&app, &arch, &mut cand, &mut rng, &mut scratch);
                candidates.push(cand);
            }
            let _ = evaluator.evaluate_batch(&base, &candidates);
        }
        let stats = evaluator.stats();
        assert!(stats.arenas_warm(), "batch arenas still growing: {stats:?}");
    }
}
