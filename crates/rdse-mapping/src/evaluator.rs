//! The incremental evaluation engine: an arena-backed, allocation-free
//! re-implementation of [`evaluate`] for the annealing
//! hot path.
//!
//! Simulated annealing scores thousands of candidate mappings per run
//! (§4.3–4.4), and a portfolio run multiplies that by the chain count.
//! The from-scratch [`evaluate`] allocates a fresh
//! search graph, topological order and label vectors on every call;
//! [`Evaluator`] instead owns all of that state as reusable scratch
//! arenas (node weights, adjacency lists, in-degrees, the Kahn
//! frontier, completion labels, context-boundary buffers), so that in
//! steady state one evaluation touches no allocator at all.
//!
//! **Determinism contract.** `Evaluator::evaluate` returns *bit-
//! identical* makespans and breakdowns to the from-scratch
//! [`evaluate`]: the longest-path labels are maxima
//! over the same finite candidate sets and IEEE-754 `max` is
//! order-independent in value, so the forward-relaxation order used
//! here cannot diverge from the predecessor-scan order used there.
//! Property tests (`tests/proptests.rs`) and the golden-seed end-to-end
//! tests enforce this.

use crate::error::MappingError;
use crate::eval::{evaluate, EvalBreakdown, EvalSummary, Evaluation};
use crate::searchgraph::same_device;
use crate::solution::Mapping;
use rdse_model::units::{Clbs, Micros};
use rdse_model::{Architecture, TaskGraph, TaskId};

/// Counters describing an [`Evaluator`]'s arena behaviour, used by the
/// CLI's `--profile` report to confirm steady-state evaluations are
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvaluatorStats {
    /// Evaluations performed.
    pub evaluations: u64,
    /// Evaluations during which at least one scratch arena grew (i.e.
    /// went through the allocator).
    pub arena_growths: u64,
    /// 1-based index of the last evaluation that grew an arena (0 if
    /// none ever did). Once `evaluations` is well past this, every
    /// subsequent step runs entirely in the warm arenas.
    pub last_growth_eval: u64,
}

impl EvaluatorStats {
    /// `true` once the arenas have stopped growing: every evaluation
    /// after `last_growth_eval` ran without touching the allocator.
    pub fn arenas_warm(&self) -> bool {
        self.evaluations > self.last_growth_eval
    }
}

/// Reusable evaluation engine bound to one `app` × `arch` pair.
///
/// Construct once per search (or per chain) and call
/// [`evaluate`](Evaluator::evaluate) per candidate; the heavyweight
/// per-task trace is available on demand via
/// [`evaluate_full`](Evaluator::evaluate_full).
///
/// # Examples
///
/// ```
/// use rdse_mapping::{random_initial, evaluate, Evaluator};
/// use rdse_workloads::{epicure_architecture, motion_detection_app};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = motion_detection_app();
/// let arch = epicure_architecture(2000);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mapping = random_initial(&app, &arch, &mut rng);
///
/// let mut evaluator = Evaluator::new(&app, &arch);
/// let summary = evaluator.evaluate(&mapping)?;
/// // Bit-identical to the from-scratch reference evaluation.
/// let reference = evaluate(&app, &arch, &mapping)?;
/// assert_eq!(summary.makespan, reference.makespan);
/// assert_eq!(summary, reference.summary());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    app: &'a TaskGraph,
    arch: &'a Architecture,
    n: usize,
    /// Immediate predecessor tasks per task (application edges only),
    /// fixed for the lifetime of the evaluator.
    preds: Vec<Vec<TaskId>>,
    /// Immediate successor tasks per task.
    succs: Vec<Vec<TaskId>>,
    // --- scratch arenas, reused across evaluations ---
    /// Node weights (task execution times; index `n` = virtual source).
    weights: Vec<f64>,
    /// Successor adjacency of the search graph `(target, edge weight)`.
    adj: Vec<Vec<(u32, f64)>>,
    /// Residual in-degrees for Kahn's algorithm.
    indeg: Vec<u32>,
    /// Completion labels of the longest-path DP.
    comp: Vec<f64>,
    /// Kahn frontier (order-free: label values are order-independent).
    frontier: Vec<u32>,
    /// Initial nodes of the context under construction.
    initials: Vec<TaskId>,
    /// Terminal nodes of the preceding context.
    terminals: Vec<TaskId>,
    /// Generation-stamped context membership (avoids clearing).
    membership: Vec<u64>,
    generation: u64,
    stats: EvaluatorStats,
}

impl<'a> Evaluator<'a> {
    /// Prepares arenas for `app` × `arch`. All per-evaluation buffers
    /// are pre-sized to the task count; adjacency capacity warms up
    /// over the first few evaluations.
    pub fn new(app: &'a TaskGraph, arch: &'a Architecture) -> Self {
        let n = app.n_tasks();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for e in app.edges() {
            preds[e.to.index()].push(e.from);
            succs[e.from.index()].push(e.to);
        }
        Evaluator {
            app,
            arch,
            n,
            preds,
            succs,
            weights: vec![0.0; n + 1],
            adj: vec![Vec::new(); n + 1],
            indeg: vec![0; n + 1],
            comp: vec![0.0; n + 1],
            frontier: Vec::with_capacity(n + 1),
            initials: Vec::with_capacity(n),
            terminals: Vec::with_capacity(n),
            membership: vec![0; n],
            generation: 0,
            stats: EvaluatorStats::default(),
        }
    }

    /// The application this evaluator is bound to.
    pub fn app(&self) -> &'a TaskGraph {
        self.app
    }

    /// The architecture this evaluator is bound to.
    pub fn arch(&self) -> &'a Architecture {
        self.arch
    }

    /// Arena counters (see [`EvaluatorStats`]).
    pub fn stats(&self) -> EvaluatorStats {
        self.stats
    }

    /// Scores `mapping` without allocating (in steady state): checks
    /// capacity, rebuilds the search graph *G′* into the arenas and
    /// runs the longest-path DP.
    ///
    /// # Errors
    ///
    /// Exactly as [`evaluate`]:
    /// [`MappingError::CapacityExceeded`] when a context overflows its
    /// device, [`MappingError::CyclicSchedule`] when the imposed orders
    /// contradict the precedence graph.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not belong to this evaluator's `app` ×
    /// `arch` (index out of range).
    pub fn evaluate(&mut self, mapping: &Mapping) -> Result<EvalSummary, MappingError> {
        let (app, arch, n) = (self.app, self.arch, self.n);
        self.stats.evaluations += 1;

        // Capacity check first: a context overflow is infeasible
        // regardless of ordering (same order as `evaluate`). The same
        // pass records the peak context occupancy — the clb_area
        // objective, a `u32` max, so both engines agree exactly.
        let mut clb_area = Clbs::new(0);
        for (d, spec) in arch.drlcs().iter().enumerate() {
            for c in 0..mapping.contexts(d).len() {
                let used = mapping.context_clbs(app, d, c);
                if used > spec.n_clbs() {
                    return Err(MappingError::CapacityExceeded {
                        drlc: d,
                        context: c,
                    });
                }
                clb_area = clb_area.max(used);
            }
        }

        let capacity_before = self.arena_capacity();

        // Reset arenas (keeps capacity: no deallocation, no allocation
        // until a larger graph shape is seen).
        for out in &mut self.adj {
            out.clear();
        }
        self.indeg.fill(0);
        self.comp.fill(0.0);

        // Node weights under the mapping's placements/implementations.
        for t in app.task_ids() {
            self.weights[t.index()] = mapping.exec_time(app, t).value();
        }
        self.weights[n] = 0.0;

        // Base precedence edges with communication weights.
        let bus = arch.bus();
        for e in app.edges() {
            let w = if same_device(mapping.resource(e.from), mapping.resource(e.to)) {
                0.0
            } else {
                bus.transfer_time(e.bytes).value()
            };
            self.adj[e.from.index()].push((e.to.0, w));
            self.indeg[e.to.index()] += 1;
        }

        // Esw: processor total orders.
        for p in 0..arch.processors().len() {
            for pair in mapping.proc_order(p).windows(2) {
                self.adj[pair[0].index()].push((pair[1].0, 0.0));
                self.indeg[pair[1].index()] += 1;
            }
        }

        // Ehw: context sequentialization, accumulating the
        // reconfiguration breakdown in the same (device, context) order
        // as `evaluate` so the sums are bit-identical.
        let mut initial_reconfig = Micros::ZERO;
        let mut dynamic_reconfig = Micros::ZERO;
        for (d, spec) in arch.drlcs().iter().enumerate() {
            let n_ctxs = mapping.contexts(d).len();
            for k in 0..n_ctxs {
                let reconfig_time = spec.reconfiguration_time(mapping.context_clbs(app, d, k));
                if k == 0 {
                    initial_reconfig += reconfig_time;
                } else {
                    dynamic_reconfig += reconfig_time;
                }
                let reconfig = reconfig_time.value();
                if k > 0 {
                    self.collect_terminals(mapping.contexts(d)[k - 1].tasks());
                }
                self.collect_initials(mapping.contexts(d)[k].tasks());
                if k == 0 {
                    for i in 0..self.initials.len() {
                        let to = self.initials[i];
                        self.adj[n].push((to.0, reconfig));
                        self.indeg[to.index()] += 1;
                    }
                } else {
                    for i in 0..self.terminals.len() {
                        let from = self.terminals[i];
                        for j in 0..self.initials.len() {
                            let to = self.initials[j];
                            self.adj[from.index()].push((to.0, reconfig));
                            self.indeg[to.index()] += 1;
                        }
                    }
                }
            }
        }

        // Longest path by forward relaxation over a Kahn traversal.
        // `comp[v]` accumulates max(0, max incoming completion + w)
        // until v is popped, then becomes v's completion label. Label
        // values are independent of the pop order, so the frontier
        // needs no tie-breaking to stay bit-identical to the
        // reference's predecessor-scan DP.
        self.frontier.clear();
        for v in 0..=n {
            if self.indeg[v] == 0 {
                self.frontier.push(v as u32);
            }
        }
        let mut processed = 0usize;
        let mut makespan = 0.0f64;
        while let Some(v) = self.frontier.pop() {
            processed += 1;
            let v = v as usize;
            let completion = self.comp[v] + self.weights[v];
            self.comp[v] = completion;
            if completion > makespan {
                makespan = completion;
            }
            for i in 0..self.adj[v].len() {
                let (s, w) = self.adj[v][i];
                let s = s as usize;
                let candidate = completion + w;
                if candidate > self.comp[s] {
                    self.comp[s] = candidate;
                }
                self.indeg[s] -= 1;
                if self.indeg[s] == 0 {
                    self.frontier.push(s as u32);
                }
            }
        }
        if processed != n + 1 {
            return Err(MappingError::CyclicSchedule);
        }

        if self.arena_capacity() != capacity_before {
            self.stats.arena_growths += 1;
            self.stats.last_growth_eval = self.stats.evaluations;
        }

        let comp_comm =
            Micros::new((makespan - initial_reconfig.value() - dynamic_reconfig.value()).max(0.0));
        Ok(EvalSummary {
            makespan: Micros::new(makespan),
            n_contexts: mapping.n_contexts(),
            n_hw_tasks: mapping.hw_tasks().count(),
            clb_area,
            breakdown: EvalBreakdown {
                initial_reconfig,
                dynamic_reconfig,
                computation_communication: comp_comm,
            },
        })
    }

    /// Full evaluation with the per-task trace (starts, completions,
    /// critical path) — the report path. Allocates; use
    /// [`evaluate`](Evaluator::evaluate) on the hot path.
    ///
    /// # Errors
    ///
    /// As [`evaluate`].
    pub fn evaluate_full(&self, mapping: &Mapping) -> Result<Evaluation, MappingError> {
        evaluate(self.app, self.arch, mapping)
    }

    /// Initial nodes of `tasks` (all immediate predecessors outside the
    /// context), into `self.initials`, in context order.
    fn collect_initials(&mut self, tasks: &[TaskId]) {
        self.generation += 1;
        let generation = self.generation;
        for &t in tasks {
            self.membership[t.index()] = generation;
        }
        self.initials.clear();
        for &t in tasks {
            if self.preds[t.index()]
                .iter()
                .all(|p| self.membership[p.index()] != generation)
            {
                self.initials.push(t);
            }
        }
    }

    /// Terminal nodes of `tasks` (all immediate successors outside the
    /// context), into `self.terminals`, in context order.
    fn collect_terminals(&mut self, tasks: &[TaskId]) {
        self.generation += 1;
        let generation = self.generation;
        for &t in tasks {
            self.membership[t.index()] = generation;
        }
        self.terminals.clear();
        for &t in tasks {
            if self.succs[t.index()]
                .iter()
                .all(|s| self.membership[s.index()] != generation)
            {
                self.terminals.push(t);
            }
        }
    }

    /// Total capacity across growable arenas, compared before/after an
    /// evaluation to detect allocator traffic.
    fn arena_capacity(&self) -> usize {
        self.adj.iter().map(Vec::capacity).sum::<usize>()
            + self.frontier.capacity()
            + self.initials.capacity()
            + self.terminals.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_initial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdse_model::units::{Bytes, Clbs};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("fx");
        let a = app
            .add_task(
                "a",
                "F",
                us(10.0),
                vec![HwImpl::new(Clbs::new(100), us(2.0))],
            )
            .unwrap();
        let b = app
            .add_task(
                "b",
                "G",
                us(20.0),
                vec![HwImpl::new(Clbs::new(150), us(3.0))],
            )
            .unwrap();
        let c = app.add_task("c", "H", us(5.0), vec![]).unwrap();
        app.add_data_edge(a, b, Bytes::new(1000)).unwrap();
        app.add_data_edge(b, c, Bytes::new(2000)).unwrap();
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(200), us(0.1), 1.0)
            .bus_rate(100.0)
            .build()
            .unwrap();
        (app, arch)
    }

    fn topo(app: &TaskGraph) -> Vec<TaskId> {
        rdse_graph::topo_sort(&app.precedence_graph())
            .unwrap()
            .into_iter()
            .map(TaskId::from)
            .collect()
    }

    #[test]
    fn matches_reference_on_random_mappings() {
        let (app, arch) = fixture();
        let mut evaluator = Evaluator::new(&app, &arch);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let m = random_initial(&app, &arch, &mut rng);
            let summary = evaluator.evaluate(&m).unwrap();
            let reference = evaluate(&app, &arch, &m).unwrap();
            assert_eq!(
                summary.makespan.value().to_bits(),
                reference.makespan.value().to_bits()
            );
            assert_eq!(summary, reference.summary());
        }
    }

    #[test]
    fn reports_same_errors_as_reference() {
        let (app, arch) = fixture();
        let mut evaluator = Evaluator::new(&app, &arch);
        // Capacity overflow.
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 0);
        m.detach(TaskId(1));
        m.insert_hardware(TaskId(1), 0, 0, 0); // 250 > 200 CLBs
        assert_eq!(
            evaluator.evaluate(&m),
            Err(MappingError::CapacityExceeded {
                drlc: 0,
                context: 0
            })
        );
        // Cyclic order.
        let m = Mapping::all_software(&app, &arch, vec![TaskId(2), TaskId(0), TaskId(1)]);
        assert_eq!(evaluator.evaluate(&m), Err(MappingError::CyclicSchedule));
        // Backwards context order is cyclic too.
        let mut m = Mapping::all_software(&app, &arch, topo(&app));
        m.detach(TaskId(1));
        m.insert_new_context(TaskId(1), 0, 0, 0);
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 1, 0);
        assert_eq!(evaluator.evaluate(&m), Err(MappingError::CyclicSchedule));
    }

    #[test]
    fn arenas_stop_growing() {
        let (app, arch) = fixture();
        let mut evaluator = Evaluator::new(&app, &arch);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let m = random_initial(&app, &arch, &mut rng);
            let _ = evaluator.evaluate(&m).unwrap();
        }
        let stats = evaluator.stats();
        assert_eq!(stats.evaluations, 100);
        assert!(
            stats.arenas_warm(),
            "arenas still growing after 100 evals: {stats:?}"
        );
        // Growths can only happen early, while capacity warms up.
        assert!(stats.last_growth_eval < 50, "{stats:?}");
    }

    #[test]
    fn full_evaluation_agrees_with_summary() {
        let (app, arch) = fixture();
        let mut evaluator = Evaluator::new(&app, &arch);
        let m = Mapping::all_software(&app, &arch, topo(&app));
        let summary = evaluator.evaluate(&m).unwrap();
        let full = evaluator.evaluate_full(&m).unwrap();
        assert_eq!(full.summary(), summary);
        assert_eq!(full.makespan, us(35.0));
    }
}
