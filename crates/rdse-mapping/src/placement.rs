//! Task placements and resource references.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where one task executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// On a programmable processor (index into
    /// [`Architecture::processors`](rdse_model::Architecture::processors)).
    Software {
        /// Processor index.
        processor: usize,
    },
    /// In one run-time context of a reconfigurable device, with one of
    /// the task's hardware implementations selected.
    Hardware {
        /// DRLC index within the architecture.
        drlc: usize,
        /// Context index within the mapping's ordered context list.
        context: usize,
        /// Index into the task's Pareto implementation set.
        hw_impl: usize,
    },
    /// On a dedicated circuit (maximal parallelism, no reconfiguration).
    Asic {
        /// ASIC index within the architecture.
        asic: usize,
    },
}

impl Placement {
    /// `true` for [`Placement::Software`].
    pub fn is_software(&self) -> bool {
        matches!(self, Placement::Software { .. })
    }

    /// `true` for [`Placement::Hardware`].
    pub fn is_hardware(&self) -> bool {
        matches!(self, Placement::Hardware { .. })
    }

    /// The resource this placement lives on.
    pub fn resource(&self) -> ResourceRef {
        match *self {
            Placement::Software { processor } => ResourceRef::Processor(processor),
            Placement::Hardware { drlc, context, .. } => ResourceRef::Context { drlc, context },
            Placement::Asic { asic } => ResourceRef::Asic(asic),
        }
    }
}

/// A reference to a scheduling resource. Contexts are resources in
/// their own right (§3.3: "Considering a context as a resource in
/// itself").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceRef {
    /// A programmable processor.
    Processor(usize),
    /// One context of a reconfigurable device.
    Context {
        /// DRLC index.
        drlc: usize,
        /// Context index in execution order.
        context: usize,
    },
    /// A dedicated circuit.
    Asic(usize),
}

impl fmt::Display for ResourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceRef::Processor(p) => write!(f, "proc{p}"),
            ResourceRef::Context { drlc, context } => write!(f, "drlc{drlc}/ctx{context}"),
            ResourceRef::Asic(a) => write!(f, "asic{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_predicates() {
        let sw = Placement::Software { processor: 0 };
        let hw = Placement::Hardware {
            drlc: 0,
            context: 2,
            hw_impl: 1,
        };
        assert!(sw.is_software() && !sw.is_hardware());
        assert!(hw.is_hardware() && !hw.is_software());
        assert_eq!(sw.resource(), ResourceRef::Processor(0));
        assert_eq!(
            hw.resource(),
            ResourceRef::Context {
                drlc: 0,
                context: 2
            }
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(ResourceRef::Processor(1).to_string(), "proc1");
        assert_eq!(
            ResourceRef::Context {
                drlc: 0,
                context: 3
            }
            .to_string(),
            "drlc0/ctx3"
        );
        assert_eq!(ResourceRef::Asic(2).to_string(), "asic2");
    }
}
