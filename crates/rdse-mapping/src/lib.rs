//! Spatio-temporal mapping of task graphs onto dynamically
//! reconfigurable architectures — the core contribution of the DATE'05
//! paper (Miramond & Delosme).
//!
//! A [`Mapping`] simultaneously fixes the four coupled decisions of
//! §3.3:
//!
//! 1. **spatial partitioning** — every task is placed on a processor,
//!    in an FPGA context, or on an ASIC ([`Placement`]);
//! 2. **temporal partitioning** — hardware tasks are grouped into
//!    run-time [`Context`]s bounded by the device CLB capacity;
//! 3. **scheduling** — a total order per processor and a globally
//!    total, locally partial (GTLP) order on each reconfigurable
//!    device;
//! 4. **implementation selection** — each hardware task uses one of its
//!    area–time Pareto implementations.
//!
//! [`evaluate`] scores a mapping by building the search graph *G′* =
//! base precedence ∪ `Esw` ∪ `Ehw` (§3.3/§4.3) and taking its longest
//! path (§4.4); [`MappingProblem`] exposes the moves of §4.2 to the
//! adaptive simulated annealing engine of [`rdse_anneal`]; and
//! [`explore`] runs the whole tool: random initial solution, warm-up at
//! infinite temperature, adaptive cooling, best solution returned.
//!
//! The annealing hot path runs on the **incremental evaluation
//! engine**: the arena-backed [`Evaluator`] re-scores candidates
//! without allocating (returning the `Copy` scalar [`EvalSummary`];
//! the heavyweight per-task [`Evaluation`] trace is computed on demand
//! for reports), and each move carries a compact reverse
//! [`MoveDelta`] so rejection undoes only the touched assignment. The
//! engine is bit-identical to the from-scratch [`evaluate`] — same
//! makespans, same walks, same golden-seed mappings (see
//! [`evaluator`] for the determinism argument).
//!
//! Costs are **multi-objective**: every candidate's [`CostVector`]
//! (makespan, peak CLB area, reconfiguration overhead, context count)
//! is derived from the summary the evaluator already computes, the
//! [`Objective`] scalarizes it for acceptance (makespan-only by
//! default; weighted and lexicographic variants for trade-off
//! studies), and each chain archives its accepted vectors in the
//! shared [`ParetoFront`] — returned per chain and merged across the
//! portfolio by [`explore_parallel`]. See [`cost`] for the axis
//! definitions.
//!
//! # Examples
//!
//! ```
//! use rdse_mapping::{explore, ExploreOptions};
//! use rdse_model::{Architecture, TaskGraph, HwImpl};
//! use rdse_model::units::{Bytes, Clbs, Micros};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut app = TaskGraph::new("tiny");
//! let a = app.add_task("a", "FIR", Micros::new(800.0), vec![
//!     HwImpl::new(Clbs::new(100), Micros::new(40.0)),
//! ])?;
//! let b = app.add_task("b", "DCT", Micros::new(900.0), vec![
//!     HwImpl::new(Clbs::new(150), Micros::new(50.0)),
//! ])?;
//! app.add_data_edge(a, b, Bytes::new(1024))?;
//!
//! let arch = Architecture::builder("soc")
//!     .processor("cpu", 1.0)
//!     .drlc("fpga", Clbs::new(400), Micros::new(2.0), 1.0)
//!     .bus_rate(100.0)
//!     .build()?;
//!
//! let outcome = explore(&app, &arch, &ExploreOptions {
//!     max_iterations: 3_000,
//!     seed: 1,
//!     ..ExploreOptions::default()
//! })?;
//! assert!(outcome.evaluation.makespan.value() <= 1700.0);
//! # Ok(())
//! # }
//! ```

pub mod arch_explore;
pub mod cost;
pub mod error;
pub mod eval;
pub mod evaluator;
pub mod explorer;
pub mod init;
pub mod moves;
pub mod placement;
pub mod schedule;
pub mod searchgraph;
pub mod solution;

pub use arch_explore::{
    explore_architecture, ArchCost, ArchExploreOptions, ArchExploreOutcome, ArchProblem,
    ResourceCatalog,
};
pub use cost::{CostVector, ObjectiveKey};
pub use error::MappingError;
pub use eval::{evaluate, EvalBreakdown, EvalSummary, Evaluation};
pub use evaluator::{Evaluator, EvaluatorArenas, EvaluatorStats};
pub use explorer::{
    chain_seed, explore, explore_parallel, explore_parallel_observed, lexi_min, ChainStats,
    ExploreOptions, ExploreOutcome, Explorer, MappingMove, MappingProblem, Objective,
    ParallelOptions, ParallelOutcome, SegmentUpdate, WarmStart,
};
pub use init::random_initial;
pub use moves::{MoveDelta, MoveKind, MoveOutcome, MoveScratch, SpecCandidate};
pub use placement::{Placement, ResourceRef};
// The shared multi-objective vocabulary, re-exported so downstream
// layers (corpus, CLI, examples) speak one Pareto language.
pub use rdse_anneal::{
    crowding_distance, hypervolume, non_dominated_rank, Cost, Dominance, ParetoFront, Scalarizer,
};
// The persistent work-stealing pool every fan-out in the workspace
// runs on, re-exported so callers can share one pool across layers.
pub use rdse_pool::Pool;
pub use schedule::{BusTransfer, GanttChart, ReconfigSlot, TaskSlot};
pub use searchgraph::SearchGraph;
pub use solution::{Context, Mapping};
