//! Random initial solutions (§5).
//!
//! "The initial solution is generated with a random hardware/software
//! partition. A random number of tasks are moved, one by one, to the
//! reconfigurable circuit. A new context is created when the capacity
//! of the last context is exceeded."
//!
//! Feasibility by construction: a random *topological* order is drawn
//! first (randomized Kahn), the software order is that order restricted
//! to software tasks, and hardware tasks are packed into contexts in
//! the same order — every sequentialization edge then points forward in
//! one linear order, so the initial search graph is acyclic.

use crate::solution::Mapping;
use rand::{Rng, RngCore};
use rdse_model::{Architecture, TaskGraph, TaskId};

/// Draws a uniform random topological order via randomized Kahn.
pub fn random_topo_order(app: &TaskGraph, rng: &mut dyn RngCore) -> Vec<TaskId> {
    let g = app.precedence_graph();
    let n = g.n_nodes();
    let mut in_deg: Vec<usize> = (0..n)
        .map(|i| g.in_degree(rdse_graph::NodeId(i as u32)))
        .collect();
    let mut frontier: Vec<TaskId> = (0..n)
        .filter(|&i| in_deg[i] == 0)
        .map(|i| TaskId(i as u32))
        .collect();
    let mut order = Vec::with_capacity(n);
    while !frontier.is_empty() {
        let pick = rng.random_range(0..frontier.len());
        let v = frontier.swap_remove(pick);
        order.push(v);
        for (s, _) in g.successors(v.node()) {
            in_deg[s.index()] -= 1;
            if in_deg[s.index()] == 0 {
                frontier.push(TaskId::from(s));
            }
        }
    }
    assert_eq!(order.len(), n, "precedence graph must be acyclic");
    order
}

/// Generates the paper's random initial solution.
///
/// A random subset of the hardware-capable tasks (uniform size between
/// 0 and all of them) is moved to the first DRLC, packed greedily into
/// contexts; everything else runs on processor 0 in a random
/// topological order. Implementations are drawn uniformly among those
/// fitting the device.
///
/// # Panics
///
/// Panics if the architecture has no processor (the paper's target
/// always has one).
pub fn random_initial(app: &TaskGraph, arch: &Architecture, rng: &mut dyn RngCore) -> Mapping {
    let order = random_topo_order(app, rng);
    let mut mapping = Mapping::all_software(app, arch, order.clone());
    if arch.drlcs().is_empty() || app.n_tasks() == 0 {
        return mapping;
    }
    let drlc = 0;
    let capacity = arch.drlcs()[drlc].n_clbs();

    // Candidate tasks that can fit the device at all.
    let candidates: Vec<TaskId> = order
        .iter()
        .copied()
        .filter(|&t| {
            app.task(t)
                .expect("task id in range")
                .hw_impls()
                .iter()
                .any(|i| i.clbs() <= capacity)
        })
        .collect();
    if candidates.is_empty() {
        return mapping;
    }
    let n_hw = rng.random_range(0..=candidates.len());
    // Random subset of size n_hw, then processed in topological order
    // (candidates is already topologically sorted).
    let mut selected = candidates;
    for i in (1..selected.len()).rev() {
        let j = rng.random_range(0..=i);
        selected.swap(i, j);
    }
    selected.truncate(n_hw);
    selected.sort_by_key(|t| {
        order
            .iter()
            .position(|&o| o == *t)
            .expect("selected tasks come from the order")
    });

    for t in selected {
        let impls = app.task(t).expect("task id in range").hw_impls();
        let n_ctx = mapping.contexts(drlc).len();
        if n_ctx == 0 {
            let fitting: Vec<usize> = (0..impls.len())
                .filter(|&i| impls[i].clbs() <= capacity)
                .collect();
            let choice = fitting[rng.random_range(0..fitting.len())];
            mapping.detach(t);
            mapping.insert_new_context(t, drlc, 0, choice);
            continue;
        }
        let last = n_ctx - 1;
        let headroom = capacity.saturating_sub(mapping.context_clbs(app, drlc, last));
        let fitting: Vec<usize> = (0..impls.len())
            .filter(|&i| impls[i].clbs() <= headroom)
            .collect();
        mapping.detach(t);
        if fitting.is_empty() {
            // Capacity of the last context exceeded: open a new one.
            let alone: Vec<usize> = (0..impls.len())
                .filter(|&i| impls[i].clbs() <= capacity)
                .collect();
            let choice = alone[rng.random_range(0..alone.len())];
            let n_ctx = mapping.contexts(drlc).len();
            mapping.insert_new_context(t, drlc, n_ctx, choice);
        } else {
            let choice = fitting[rng.random_range(0..fitting.len())];
            // Contexts may have shifted if t's detach emptied one; the
            // last context index is re-read.
            let last = mapping.contexts(drlc).len() - 1;
            mapping.insert_hardware(t, drlc, last, choice);
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdse_model::units::{Bytes, Clbs, Micros};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("fx");
        let mut ids = Vec::new();
        for i in 0..10 {
            let hw = if i % 3 == 0 {
                vec![]
            } else {
                vec![
                    HwImpl::new(Clbs::new(40 + 10 * (i as u32 % 4)), us(1.0)),
                    HwImpl::new(Clbs::new(90), us(0.5)),
                ]
            };
            ids.push(app.add_task(format!("t{i}"), "F", us(10.0), hw).unwrap());
        }
        // Diamond-ish precedence.
        for i in 1..10 {
            app.add_data_edge(ids[(i - 1) / 2], ids[i], Bytes::new(64))
                .unwrap();
        }
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(120), us(1.0), 1.0)
            .build()
            .unwrap();
        (app, arch)
    }

    #[test]
    fn random_topo_order_is_topological() {
        let (app, _) = fixture();
        let g = app.precedence_graph();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let order = random_topo_order(&app, &mut rng);
            let mut pos = vec![0usize; order.len()];
            for (i, t) in order.iter().enumerate() {
                pos[t.index()] = i;
            }
            for e in g.edges() {
                assert!(pos[e.from.index()] < pos[e.to.index()]);
            }
        }
    }

    #[test]
    fn random_topo_orders_vary() {
        let (app, _) = fixture();
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_topo_order(&app, &mut rng);
        let b = random_topo_order(&app, &mut rng);
        let c = random_topo_order(&app, &mut rng);
        assert!(a != b || b != c, "three identical random topo orders");
    }

    #[test]
    fn initial_solutions_are_valid_and_feasible() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let m = random_initial(&app, &arch, &mut rng);
            m.validate(&app, &arch).unwrap();
            evaluate(&app, &arch, &m).expect("initial solution must be feasible");
        }
    }

    #[test]
    fn initial_solutions_explore_hw_fraction() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(12);
        let mut saw_zero = false;
        let mut saw_some = false;
        for _ in 0..100 {
            let m = random_initial(&app, &arch, &mut rng);
            let k = m.hw_tasks().count();
            if k == 0 {
                saw_zero = true;
            }
            if k >= 3 {
                saw_some = true;
            }
        }
        assert!(saw_zero && saw_some, "hw fraction not explored");
    }

    #[test]
    fn no_drlc_architecture_stays_software() {
        let (app, _) = fixture();
        let arch = Architecture::builder("cpu-only")
            .processor("cpu", 1.0)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let m = random_initial(&app, &arch, &mut rng);
        assert_eq!(m.hw_tasks().count(), 0);
        m.validate(&app, &arch).unwrap();
    }
}
