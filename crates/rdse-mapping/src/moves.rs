//! The annealing moves of §4.2.
//!
//! A move is defined by randomly selecting a source task `vs` and a
//! destination task `vd`:
//!
//! * **m1** — same resource, processor type: modify the total execution
//!   order (move `vs` immediately before `vd`). On an ASIC or a context
//!   no move is performed (their orders are partial, not total).
//! * **m2** — different resources: reassign `vs` to the resource of
//!   `vd`. When the destination is a context and the capacity `NCLB`
//!   would be exceeded, a new context is spawned right after it.
//! * **m3/m4** — resource removal/creation for architecture
//!   exploration, selected by drawing the sentinel index 0; the paper's
//!   experiments set the probability of 0 to zero (fixed architecture),
//!   and those moves live in [`crate::explorer`].
//! * **m5** — implementation selection: §5 notes that "during
//!   exploration, SA chooses for each node implemented in hardware one
//!   of its implementations"; this is exposed as a second move class.
//!
//! All functions mutate the mapping in place and return a description
//! of what changed — including a compact reverse [`MoveDelta`] that
//! undoes the move in O(touched) — or `None` (leaving the mapping
//! untouched) when the sampled move is structurally impossible.
//! Precedence feasibility of the result is judged afterwards by the
//! evaluator's cycle check, as in §4.3.

use crate::placement::{Placement, ResourceRef};
use crate::solution::Mapping;
use rand::{Rng, RngCore};
use rdse_model::{Architecture, TaskGraph, TaskId};

/// A record of an applied move (for statistics and debugging; undo is
/// delta-based via [`MoveOutcome::delta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// m1 — `task` re-inserted immediately before `before` in its
    /// processor's total order.
    ReorderSoftware {
        /// The moved task.
        task: TaskId,
        /// The task it was re-inserted before.
        before: TaskId,
    },
    /// m2 — `task` reassigned to `dest`.
    Reassign {
        /// The moved task.
        task: TaskId,
        /// The resource it now occupies.
        dest: ResourceRef,
        /// Whether a fresh context had to be spawned for it.
        spawned_context: bool,
    },
    /// m5 — hardware implementation of `task` switched.
    SelectImplementation {
        /// The re-implemented task.
        task: TaskId,
        /// Previous implementation index.
        from: usize,
        /// New implementation index.
        to: usize,
    },
}

/// Outcome of a proposal: what was done and how to reverse it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveOutcome {
    /// The applied move.
    pub kind: MoveKind,
    /// Compact reverse record; [`MoveDelta::undo`] restores the mapping
    /// bit-identically to its pre-move state in O(touched).
    pub delta: MoveDelta,
}

/// The compact reverse record of one applied move: only the touched
/// task→slot (or task→implementation) assignment, not a clone of the
/// whole [`Mapping`].
///
/// The contract mirrors the snapshot-based undo it replaces, exactly:
/// applying a proposal and then [`MoveDelta::undo`] leaves the mapping
/// **bit-identical** (including processor-order positions and the slot
/// of the task inside its context's task list) to a clone taken before
/// the proposal. Property tests in `tests/proptests.rs` enforce this
/// for random move sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveDelta(DeltaKind);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeltaKind {
    /// The task was detached from `prev` and re-inserted elsewhere
    /// (m1/m2 and the hardware-seed move).
    Relocate { task: TaskId, prev: PrevSlot },
    /// The task switched hardware implementation (m5).
    Reimplement { task: TaskId, prev_impl: usize },
}

impl MoveDelta {
    /// Reverses the move this delta was returned with. Cost is
    /// O(touched): one detach plus one positional re-insert (or one
    /// implementation write), never a full-mapping restore.
    ///
    /// Only valid on the mapping state the move produced — deltas do
    /// not compose out of order.
    pub fn undo(self, mapping: &mut Mapping) {
        match self.0 {
            DeltaKind::Relocate { task, prev } => {
                mapping.detach(task);
                prev.reinstate(mapping, task);
            }
            DeltaKind::Reimplement { task, prev_impl } => mapping.select_impl(task, prev_impl),
        }
    }

    /// The task the move touched.
    pub fn task(self) -> TaskId {
        match self.0 {
            DeltaKind::Relocate { task, .. } | DeltaKind::Reimplement { task, .. } => task,
        }
    }
}

/// Reusable scratch buffers for the proposal functions, so steady-state
/// move generation performs no heap allocation. One instance lives in
/// the explorer's problem state and is threaded through every proposal.
#[derive(Debug, Clone, Default)]
pub struct MoveScratch {
    /// Candidate task ids (hardware tasks, seedable tasks, ...).
    tasks: Vec<TaskId>,
    /// Candidate implementation indices.
    impls: Vec<usize>,
}

/// Draws `(vs, vd)` and applies the corresponding m1/m2 move.
///
/// Returns `None` (mapping unchanged) when the draw is a no-op: equal
/// tasks, same-context/ASIC pairs (m1 is processor-only), or a
/// hardware destination for a task with no hardware implementation.
pub fn propose_pair_move(
    app: &TaskGraph,
    arch: &Architecture,
    mapping: &mut Mapping,
    rng: &mut dyn RngCore,
    scratch: &mut MoveScratch,
) -> Option<MoveOutcome> {
    let n = app.n_tasks();
    if n < 2 {
        return None;
    }
    let vs = TaskId(rng.random_range(0..n as u32));
    let vd = TaskId(rng.random_range(0..n as u32));
    if vs == vd {
        return None;
    }
    let rs = mapping.resource(vs);
    let rd = mapping.resource(vd);

    if rs == rd {
        // m1: only processors have a total order to permute.
        let ResourceRef::Processor(p) = rs else {
            return None;
        };
        let prev = PrevSlot::capture(mapping, vs);
        mapping.detach(vs);
        let pos = mapping
            .proc_order(p)
            .iter()
            .position(|&t| t == vd)
            .expect("vd still on processor after detaching vs");
        mapping.insert_software(vs, p, pos);
        return Some(MoveOutcome {
            kind: MoveKind::ReorderSoftware {
                task: vs,
                before: vd,
            },
            delta: MoveDelta(DeltaKind::Relocate { task: vs, prev }),
        });
    }

    // m2: reassign vs to vd's resource. Detach first; vd's placement is
    // re-read afterwards because context indices may shift when vs's
    // old context becomes empty and disappears.
    match rd {
        ResourceRef::Processor(_) => {
            let prev = PrevSlot::capture(mapping, vs);
            mapping.detach(vs);
            let ResourceRef::Processor(p) = mapping.resource(vd) else {
                unreachable!("vd's resource kind cannot change on detach of vs")
            };
            let pos = mapping
                .proc_order(p)
                .iter()
                .position(|&t| t == vd)
                .expect("vd present in its processor order");
            // Insert before or after vd with equal probability; the
            // paper's examples insert before, the coin improves mixing.
            let pos = if rng.random::<bool>() { pos } else { pos + 1 };
            mapping.insert_software(vs, p, pos);
            Some(MoveOutcome {
                kind: MoveKind::Reassign {
                    task: vs,
                    dest: ResourceRef::Processor(p),
                    spawned_context: false,
                },
                delta: MoveDelta(DeltaKind::Relocate { task: vs, prev }),
            })
        }
        ResourceRef::Context { .. } => {
            let impls = app.task(vs).expect("task id in range").hw_impls();
            if impls.is_empty() {
                return None;
            }
            // Record vs's exact slot: the delta needs it, and the rare
            // bail-out path below restores it to honour the "None
            // leaves the mapping unchanged" contract.
            let prev = PrevSlot::capture(mapping, vs);
            mapping.detach(vs);
            let ResourceRef::Context { drlc, context } = mapping.resource(vd) else {
                unreachable!("vd's resource kind cannot change on detach of vs")
            };
            let capacity = arch.drlcs()[drlc].n_clbs();
            let used = mapping.context_clbs(app, drlc, context);
            let headroom = capacity.saturating_sub(used);
            // Join vd's context with an implementation that fits the
            // residual capacity; spawn a new context right after it on
            // overflow (§4.3's rule). A new context is also spawned
            // with probability 1/4 even when the task would fit —
            // contexts are resources (§3.3), and Fig. 2 shows the
            // context count *growing* during refinement at 2 000 CLBs,
            // which requires context creation without capacity
            // pressure (temporal partitioning exploration).
            let spawn_anyway = rng.random::<f64>() < 0.25;
            scratch.impls.clear();
            scratch
                .impls
                .extend((0..impls.len()).filter(|&i| impls[i].clbs() <= headroom));
            if !scratch.impls.is_empty() && !spawn_anyway {
                let choice = scratch.impls[rng.random_range(0..scratch.impls.len())];
                mapping.insert_hardware(vs, drlc, context, choice);
                Some(MoveOutcome {
                    kind: MoveKind::Reassign {
                        task: vs,
                        dest: ResourceRef::Context { drlc, context },
                        spawned_context: false,
                    },
                    delta: MoveDelta(DeltaKind::Relocate { task: vs, prev }),
                })
            } else {
                scratch.impls.clear();
                scratch
                    .impls
                    .extend((0..impls.len()).filter(|&i| impls[i].clbs() <= capacity));
                if scratch.impls.is_empty() {
                    // Task does not fit the device at all: restore.
                    prev.reinstate(mapping, vs);
                    return None;
                }
                let choice = scratch.impls[rng.random_range(0..scratch.impls.len())];
                mapping.insert_new_context(vs, drlc, context + 1, choice);
                Some(MoveOutcome {
                    kind: MoveKind::Reassign {
                        task: vs,
                        dest: ResourceRef::Context {
                            drlc,
                            context: context + 1,
                        },
                        spawned_context: true,
                    },
                    delta: MoveDelta(DeltaKind::Relocate { task: vs, prev }),
                })
            }
        }
        ResourceRef::Asic(a) => {
            if app
                .task(vs)
                .expect("task id in range")
                .hw_impls()
                .is_empty()
            {
                return None;
            }
            let prev = PrevSlot::capture(mapping, vs);
            mapping.detach(vs);
            mapping.insert_asic(vs, a);
            Some(MoveOutcome {
                kind: MoveKind::Reassign {
                    task: vs,
                    dest: ResourceRef::Asic(a),
                    spawned_context: false,
                },
                delta: MoveDelta(DeltaKind::Relocate { task: vs, prev }),
            })
        }
    }
}

/// Applies an m5 implementation-selection move to a random hardware
/// task.
///
/// When *no* task is in hardware the move class instead proposes
/// seeding the first DRLC with a random hardware-capable task in a
/// fresh context — without this, a solution that drifts to all-software
/// could never rediscover the FPGA, since m2 needs a destination task
/// that already occupies a context (the resource-creation role of the
/// paper's m4, restricted to contexts).
///
/// Returns `None` when no hardware task has an alternative
/// implementation that fits its context's residual capacity (or, in
/// the seeding case, when nothing fits the device).
pub fn propose_impl_move(
    app: &TaskGraph,
    arch: &Architecture,
    mapping: &mut Mapping,
    rng: &mut dyn RngCore,
    scratch: &mut MoveScratch,
) -> Option<MoveOutcome> {
    scratch.tasks.clear();
    scratch.tasks.extend(mapping.hw_tasks());
    if scratch.tasks.is_empty() {
        return propose_hw_seed(app, arch, mapping, rng, scratch);
    }
    let task = scratch.tasks[rng.random_range(0..scratch.tasks.len())];
    let Placement::Hardware {
        drlc,
        context,
        hw_impl,
    } = mapping.placement(task)
    else {
        unreachable!("hw_tasks yields hardware placements")
    };
    let impls = app.task(task).expect("task id in range").hw_impls();
    if impls.len() < 2 {
        return None;
    }
    let capacity = arch.drlcs()[drlc].n_clbs();
    let used_without = mapping
        .context_clbs(app, drlc, context)
        .saturating_sub(impls[hw_impl].clbs());
    scratch.impls.clear();
    scratch.impls.extend(
        (0..impls.len()).filter(|&i| i != hw_impl && used_without + impls[i].clbs() <= capacity),
    );
    if scratch.impls.is_empty() {
        return None;
    }
    let to = scratch.impls[rng.random_range(0..scratch.impls.len())];
    mapping.select_impl(task, to);
    Some(MoveOutcome {
        kind: MoveKind::SelectImplementation {
            task,
            from: hw_impl,
            to,
        },
        delta: MoveDelta(DeltaKind::Reimplement {
            task,
            prev_impl: hw_impl,
        }),
    })
}

/// Seeds the first DRLC with one random hardware-capable task (see
/// [`propose_impl_move`]).
fn propose_hw_seed(
    app: &TaskGraph,
    arch: &Architecture,
    mapping: &mut Mapping,
    rng: &mut dyn RngCore,
    scratch: &mut MoveScratch,
) -> Option<MoveOutcome> {
    let drlc = 0;
    let capacity = arch.drlcs().first()?.n_clbs();
    scratch.tasks.clear();
    scratch.tasks.extend(
        app.tasks()
            .filter(|(_, t)| t.hw_impls().iter().any(|i| i.clbs() <= capacity))
            .map(|(id, _)| id),
    );
    if scratch.tasks.is_empty() {
        return None;
    }
    let task = scratch.tasks[rng.random_range(0..scratch.tasks.len())];
    let impls = app.task(task).expect("task id in range").hw_impls();
    scratch.impls.clear();
    scratch
        .impls
        .extend((0..impls.len()).filter(|&i| impls[i].clbs() <= capacity));
    let choice = scratch.impls[rng.random_range(0..scratch.impls.len())];
    let prev = PrevSlot::capture(mapping, task);
    mapping.detach(task);
    mapping.insert_new_context(task, drlc, 0, choice);
    Some(MoveOutcome {
        kind: MoveKind::Reassign {
            task,
            dest: ResourceRef::Context { drlc, context: 0 },
            spawned_context: true,
        },
        delta: MoveDelta(DeltaKind::Relocate { task, prev }),
    })
}

/// The exact slot a task occupied before a detach, sufficient to put it
/// back verbatim — the payload of a [`MoveDelta`] relocation and the
/// restore record of a proposal that must bail out after detaching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PrevSlot {
    Software {
        processor: usize,
        position: usize,
    },
    /// The task shared its context with others; `slot` is its exact
    /// index in the context's task list, so re-insertion keeps the list
    /// bit-identical to the pre-move state.
    HardwareShared {
        drlc: usize,
        context: usize,
        hw_impl: usize,
        slot: usize,
    },
    /// The task was alone: detaching deleted the context, so undo
    /// re-creates it at the original index (renumbering is exactly
    /// inverse to the deletion's).
    HardwareAlone {
        drlc: usize,
        context: usize,
        hw_impl: usize,
    },
    Asic {
        asic: usize,
    },
}

impl PrevSlot {
    pub(crate) fn capture(mapping: &Mapping, task: TaskId) -> Self {
        match mapping.placement(task) {
            Placement::Software { processor } => PrevSlot::Software {
                processor,
                position: mapping
                    .proc_order(processor)
                    .iter()
                    .position(|&t| t == task)
                    .expect("software task present in its order"),
            },
            Placement::Hardware {
                drlc,
                context,
                hw_impl,
            } => {
                let ctx = &mapping.contexts(drlc)[context];
                if ctx.len() == 1 {
                    PrevSlot::HardwareAlone {
                        drlc,
                        context,
                        hw_impl,
                    }
                } else {
                    PrevSlot::HardwareShared {
                        drlc,
                        context,
                        hw_impl,
                        slot: ctx
                            .tasks()
                            .iter()
                            .position(|&t| t == task)
                            .expect("hardware task present in its context"),
                    }
                }
            }
            Placement::Asic { asic } => PrevSlot::Asic { asic },
        }
    }

    /// Puts `task` back where [`capture`](Self::capture) found it; only
    /// valid immediately after the corresponding `detach`.
    pub(crate) fn reinstate(self, mapping: &mut Mapping, task: TaskId) {
        match self {
            PrevSlot::Software {
                processor,
                position,
            } => mapping.insert_software(task, processor, position),
            PrevSlot::HardwareShared {
                drlc,
                context,
                hw_impl,
                slot,
            } => mapping.insert_hardware_at(task, drlc, context, hw_impl, slot),
            PrevSlot::HardwareAlone {
                drlc,
                context,
                hw_impl,
            } => mapping.insert_new_context(task, drlc, context, hw_impl),
            PrevSlot::Asic { asic } => mapping.insert_asic(task, asic),
        }
    }
}

/// A speculatively proposed move, encoded as its *destination*: the
/// exact slot `task` would occupy after the move, captured (with the
/// same crate-private slot snapshot that powers [`MoveDelta`]) on the
/// post-move state, then undone.
///
/// Replaying `detach(task)` + `slot.reinstate(task)` on any state that
/// agrees with the proposal's origin state everywhere except possibly
/// `task`'s own placement reproduces the proposed mapping bit-for-bit:
/// detach∘insert is the identity on the rest of the structure, so "the
/// state minus `task`" is the same object either way. This is what lets
/// per-worker replicas score candidates concurrently and lets a commit
/// be replayed on the resident mapping without re-running the proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecCandidate {
    pub(crate) task: TaskId,
    pub(crate) slot: PrevSlot,
}

impl SpecCandidate {
    /// The task the candidate moves.
    pub fn task(&self) -> TaskId {
        self.task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdse_model::units::{Bytes, Clbs, Micros};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("fx");
        let mut prev = None;
        for i in 0..6 {
            let t = app
                .add_task(
                    format!("t{i}"),
                    "F",
                    us(10.0 + i as f64),
                    vec![
                        HwImpl::new(Clbs::new(60), us(2.0)),
                        HwImpl::new(Clbs::new(120), us(1.0)),
                    ],
                )
                .unwrap();
            if let Some(p) = prev {
                app.add_data_edge(p, t, Bytes::new(100)).unwrap();
            }
            prev = Some(t);
        }
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(150), us(0.5), 1.0)
            .bus_rate(100.0)
            .build()
            .unwrap();
        (app, arch)
    }

    fn initial(app: &TaskGraph, arch: &Architecture) -> Mapping {
        let order: Vec<TaskId> = rdse_graph::topo_sort(&app.precedence_graph())
            .unwrap()
            .into_iter()
            .map(TaskId::from)
            .collect();
        Mapping::all_software(app, arch, order)
    }

    #[test]
    fn proposals_keep_mapping_structurally_valid() {
        let (app, arch) = fixture();
        let mut m = initial(&app, &arch);
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = MoveScratch::default();
        let mut applied = 0;
        for i in 0..3000 {
            let before = m.clone();
            let res = if i % 3 == 0 {
                propose_impl_move(&app, &arch, &mut m, &mut rng, &mut scratch)
            } else {
                propose_pair_move(&app, &arch, &mut m, &mut rng, &mut scratch)
            };
            match res {
                None => assert_eq!(m, before, "None must leave mapping unchanged"),
                Some(_) => {
                    applied += 1;
                    m.validate(&app, &arch).unwrap();
                    // Infeasible orders are allowed here (cycle check is
                    // the evaluator's job); roll back if cyclic so the
                    // walk continues from a feasible point.
                    if evaluate(&app, &arch, &m).is_err() {
                        m = before;
                    }
                }
            }
        }
        assert!(applied > 500, "only {applied} proposals applied");
    }

    #[test]
    fn capacity_overflow_spawns_new_context() {
        let (app, arch) = fixture();
        let mut m = initial(&app, &arch);
        // Fill a context with a 120-CLB implementation of t0.
        m.detach(TaskId(0));
        m.insert_new_context(TaskId(0), 0, 0, 1);
        // Force-move t1 onto t0's context resource: only the 60-CLB
        // implementation leaves headroom 150-120=30 -> nothing fits, a
        // new context must be spawned.
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = MoveScratch::default();
        let mut saw_spawn = false;
        for _ in 0..500 {
            let before = m.clone();
            if let Some(out) = propose_pair_move(&app, &arch, &mut m, &mut rng, &mut scratch) {
                if let MoveKind::Reassign {
                    spawned_context: true,
                    dest: ResourceRef::Context { .. },
                    ..
                } = out.kind
                {
                    saw_spawn = true;
                    m.validate(&app, &arch).unwrap();
                    break;
                }
            }
            m = before;
        }
        assert!(saw_spawn, "never observed a context spawn");
    }

    #[test]
    fn reorder_moves_task_before_destination() {
        let (app, arch) = fixture();
        let mut m = initial(&app, &arch);
        // Deterministically emulate m1: last task before first task.
        let last = TaskId(5);
        m.detach(last);
        m.insert_software(last, 0, 0);
        // t5 before t0 contradicts the chain precedence: must be cyclic.
        assert_eq!(
            evaluate(&app, &arch, &m),
            Err(crate::MappingError::CyclicSchedule)
        );
    }

    #[test]
    fn impl_move_seeds_hardware_when_empty() {
        let (app, arch) = fixture();
        let mut m = initial(&app, &arch);
        let mut rng = StdRng::seed_from_u64(3);
        let mut scratch = MoveScratch::default();
        // With no hardware task, the class bootstraps a context.
        let out = propose_impl_move(&app, &arch, &mut m, &mut rng, &mut scratch).unwrap();
        assert!(matches!(
            out.kind,
            MoveKind::Reassign {
                spawned_context: true,
                ..
            }
        ));
        m.validate(&app, &arch).unwrap();
        assert_eq!(m.hw_tasks().count(), 1);
        // Reset to a known single hardware task; impl moves now apply.
        let mut m = initial(&app, &arch);
        m.detach(TaskId(2));
        m.insert_new_context(TaskId(2), 0, 0, 0);
        let out = propose_impl_move(&app, &arch, &mut m, &mut rng, &mut scratch).unwrap();
        match out.kind {
            MoveKind::SelectImplementation { task, from, to } => {
                assert_eq!(task, TaskId(2));
                assert_ne!(from, to);
            }
            other => panic!("unexpected move {other:?}"),
        }
        m.validate(&app, &arch).unwrap();
    }

    #[test]
    fn sw_only_task_never_lands_in_hardware() {
        let mut app = TaskGraph::new("x");
        let a = app.add_task("a", "F", us(5.0), vec![]).unwrap();
        let b = app
            .add_task("b", "G", us(5.0), vec![HwImpl::new(Clbs::new(10), us(1.0))])
            .unwrap();
        app.add_data_edge(a, b, Bytes::new(10)).unwrap();
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(100), us(1.0), 1.0)
            .build()
            .unwrap();
        let mut m = Mapping::all_software(&app, &arch, vec![a, b]);
        m.detach(b);
        m.insert_new_context(b, 0, 0, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut scratch = MoveScratch::default();
        for _ in 0..2000 {
            let before = m.clone();
            if propose_pair_move(&app, &arch, &mut m, &mut rng, &mut scratch).is_some() {
                m.validate(&app, &arch).unwrap();
                assert!(
                    !m.placement(a).is_hardware(),
                    "software-only task placed in hardware"
                );
            } else {
                assert_eq!(m, before);
            }
        }
    }
}
