//! The design-space explorer: the paper's tool, end to end.
//!
//! [`MappingProblem`] adapts the mapping problem to the
//! [`rdse_anneal::Problem`] contract (move classes: the §4.2 pair moves
//! and the §5 implementation-selection moves); [`explore`] wires it to
//! the Lam adaptive schedule with the warm-up phase of Fig. 2 and
//! returns the best mapping found together with run statistics.
//!
//! Three granularities are exposed:
//!
//! * [`explore`] — one annealing chain, driven to completion;
//! * [`Explorer`] — the same chain as a resumable state machine
//!   ([`Explorer::new`] / [`Explorer::step`] /
//!   [`Explorer::run_segment`] / [`Explorer::best`]), pausable at any
//!   iteration boundary with bit-identical resumption;
//! * [`explore_parallel`] — a portfolio of K chains on independent
//!   per-chain RNG streams, run across threads in lock-step segments
//!   with periodic best-solution exchange. Results are a pure function
//!   of `(seed, chains)` — the worker-thread count only changes
//!   wall-clock time, never the answer.

use crate::cost::{CostVector, ObjectiveKey};
use crate::error::MappingError;
use crate::eval::{EvalSummary, Evaluation};
use crate::evaluator::{Evaluator, EvaluatorArenas, EvaluatorStats};
use crate::init::random_initial;
use crate::moves::{
    propose_impl_move, propose_pair_move, MoveDelta, MoveScratch, PrevSlot, SpecCandidate,
};
use crate::solution::Mapping;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rdse_anneal::{
    crowding_distance, Annealer, Dominance, LamSchedule, ParetoFront, Problem, RunOptions,
    RunResult, Scalarizer, SpeculativeProblem,
};
use rdse_model::units::Micros;
use rdse_model::{Architecture, TaskGraph};
use rdse_pool::Pool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the annealer minimizes — a [`Scalarizer`] over the mapping
/// [`CostVector`].
///
/// The problem itself always reports the full cost vector; the
/// objective only decides how acceptance projects it onto a scalar.
/// Whatever the objective, every run also records the Pareto archive
/// over all four axes, so the trade-off surface is never lost to the
/// scalarization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize the execution time (the paper's experiments: the
    /// architecture is fixed, "the criterion to be optimized becomes
    /// here the execution time").
    MinimizeMakespan,
    /// Penalized makespan: minimize
    /// `max(0, makespan − deadline) · penalty + makespan_weight · makespan`.
    /// With a large penalty this searches for any solution meeting the
    /// real-time constraint, then keeps improving below it.
    DeadlinePenalty {
        /// The real-time constraint (40 ms per image in the benchmark).
        deadline: Micros,
        /// Cost per microsecond of deadline violation.
        penalty: f64,
        /// Weight of the makespan below the deadline.
        makespan_weight: f64,
    },
    /// Weighted sum over (makespan, CLB area, reconfiguration
    /// overhead): minimize
    /// `w_makespan · makespan + w_area · clb_area + w_reconfig · reconfig`.
    /// Build with [`Objective::weighted`], which validates the weights.
    Weighted {
        /// Weight of the makespan (µs scale).
        w_makespan: f64,
        /// Weight of the peak context CLB occupancy.
        w_area: f64,
        /// Weight of the reconfiguration overhead (µs scale).
        w_reconfig: f64,
    },
    /// Lexicographic priority over up to four axes: acceptance and
    /// best-so-far tracking are driven by the first axis (in priority
    /// order) on which two solutions differ, at that axis's native
    /// scale, so the returned mapping is the tiered winner; scalar run
    /// statistics track the primary axis. The recorded Pareto front
    /// exposes the full trade-off surface (see [`lexi_min`]). Build
    /// with [`Objective::lexicographic`].
    Lexicographic {
        /// Priority order, highest first; `None` slots are unused.
        order: [Option<ObjectiveKey>; 4],
    },
}

impl Objective {
    /// Builds a weighted-sum objective.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite weights and the all-zero
    /// combination.
    pub fn weighted(w_makespan: f64, w_area: f64, w_reconfig: f64) -> Result<Self, String> {
        // One rule set: the anneal layer's WeightedSum owns the weight
        // validation; this constructor only fixes the axis order.
        rdse_anneal::WeightedSum::new(vec![w_makespan, w_area, w_reconfig])?;
        Ok(Objective::Weighted {
            w_makespan,
            w_area,
            w_reconfig,
        })
    }

    /// Builds a lexicographic objective minimizing the given axes in
    /// priority order (highest first).
    ///
    /// # Errors
    ///
    /// Rejects an empty order, more than four axes and duplicates.
    pub fn lexicographic(keys: &[ObjectiveKey]) -> Result<Self, String> {
        if keys.len() > 4 {
            return Err(format!(
                "lexicographic objective takes at most 4 axes, got {}",
                keys.len()
            ));
        }
        // One rule set: the anneal layer's Lexicographic owns the
        // empty/duplicate validation (on axis indices); this
        // constructor maps its index-level errors back to axis names.
        rdse_anneal::Lexicographic::new(keys.iter().map(|k| k.index()).collect()).map_err(|e| {
            match keys
                .iter()
                .find(|k| keys.iter().filter(|o| o == k).count() > 1)
            {
                Some(dup) => format!("axis '{}' listed twice", dup.name()),
                None => e,
            }
        })?;
        let mut order = [None; 4];
        for (i, key) in keys.iter().enumerate() {
            order[i] = Some(*key);
        }
        Ok(Objective::Lexicographic { order })
    }

    /// Scalar cost of a full evaluation summary under this objective —
    /// the convenience form of [`Scalarizer::scalarize`] for report
    /// paths that hold summaries.
    pub fn cost_of(&self, summary: &EvalSummary) -> f64 {
        self.scalarize(&CostVector::from_summary(summary))
    }

    /// Parses an objective spec string — the format shared by the
    /// CLI's `--objective` flag and the serving layer's job specs:
    ///
    /// * `makespan`,
    /// * `weighted:<w_makespan>,<w_area>,<w_reconfig>`,
    /// * `lexi:<axis>[,<axis>...]` with axes `makespan`, `area`,
    ///   `reconfig`, `contexts`.
    ///
    /// # Errors
    ///
    /// Names the offending part: unknown scheme, wrong weight arity,
    /// negative/non-finite weights, unknown or duplicate axes.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        if spec == "makespan" {
            return Ok(Objective::MinimizeMakespan);
        }
        if let Some(weights) = spec.strip_prefix("weighted:") {
            let parts: Vec<&str> = weights.split(',').collect();
            if parts.len() != 3 {
                return Err(format!(
                    "objective weighted takes exactly 3 weights \
                     (w_makespan,w_area,w_reconfig), got {}",
                    parts.len()
                ));
            }
            let mut w = [0.0f64; 3];
            for (slot, part) in w.iter_mut().zip(&parts) {
                *slot = part
                    .trim()
                    .parse()
                    .map_err(|_| format!("objective weighted: '{part}' is not a number"))?;
            }
            return Objective::weighted(w[0], w[1], w[2])
                .map_err(|e| format!("objective weighted: {e}"));
        }
        if let Some(order) = spec.strip_prefix("lexi:") {
            let keys: Result<Vec<ObjectiveKey>, String> = order
                .split(',')
                .map(|name| {
                    let name = name.trim();
                    ObjectiveKey::parse(name).ok_or_else(|| {
                        format!(
                            "objective lexi: unknown axis '{name}' \
                             (expected makespan, area, reconfig or contexts)"
                        )
                    })
                })
                .collect();
            return Objective::lexicographic(&keys?).map_err(|e| format!("objective lexi: {e}"));
        }
        Err(format!(
            "unknown objective scheme '{spec}' \
             (expected makespan, weighted:<w_mk>,<w_area>,<w_rc> or lexi:<order>)"
        ))
    }

    /// Human-readable description, used by report headers everywhere
    /// an objective is echoed back (CLI reports, serve results).
    pub fn describe(&self) -> String {
        match self {
            Objective::MinimizeMakespan => "minimize makespan".into(),
            Objective::DeadlinePenalty { deadline, .. } => {
                format!("deadline-penalized makespan (deadline {deadline})")
            }
            Objective::Weighted {
                w_makespan,
                w_area,
                w_reconfig,
            } => format!(
                "weighted sum {w_makespan}*makespan + {w_area}*area + {w_reconfig}*reconfig"
            ),
            Objective::Lexicographic { order } => {
                let names: Vec<&str> = order.iter().flatten().map(|k| k.name()).collect();
                format!("lexicographic {}", names.join(" > "))
            }
        }
    }
}

impl Scalarizer<CostVector> for Objective {
    fn scalarize(&self, v: &CostVector) -> f64 {
        match *self {
            Objective::MinimizeMakespan => v.makespan,
            Objective::DeadlinePenalty {
                deadline,
                penalty,
                makespan_weight,
            } => {
                let excess = (v.makespan - deadline.value()).max(0.0);
                excess * penalty + v.makespan * makespan_weight
            }
            Objective::Weighted {
                w_makespan,
                w_area,
                w_reconfig,
            } => w_makespan * v.makespan + w_area * v.clb_area + w_reconfig * v.reconfig_overhead,
            Objective::Lexicographic { order } => {
                let key = order[0].expect("lexicographic order is non-empty by construction");
                v.get(key)
            }
        }
    }

    fn delta(&self, new: &CostVector, cur: &CostVector, scalar_delta: f64) -> f64 {
        match self {
            Objective::Lexicographic { order } => {
                for key in order.iter().flatten() {
                    let (a, b) = (new.get(*key), cur.get(*key));
                    if a != b {
                        return a - b;
                    }
                }
                0.0
            }
            _ => scalar_delta,
        }
    }
}

/// The lexicographic minimum of a front under a priority order — how a
/// [`Objective::Lexicographic`] run selects its winner from the
/// recorded Pareto archive (lower tiers break ties the scalar
/// best-so-far cannot see).
pub fn lexi_min<'a>(
    front: &'a ParetoFront<CostVector>,
    order: &[Option<ObjectiveKey>; 4],
) -> Option<&'a CostVector> {
    front.iter().min_by(|a, b| {
        for key in order.iter().flatten() {
            let ord = a.get(*key).total_cmp(&b.get(*key));
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    })
}

/// The reversible move token of [`MappingProblem`]: the compact
/// [`MoveDelta`] plus the pre-move scalar summary. `Copy` — an
/// annealing step never clones the solution.
#[derive(Debug, Clone, Copy)]
pub struct MappingMove {
    /// Reverse record of the touched assignment.
    pub delta: MoveDelta,
    /// Summary of the solution before the move.
    pub prev: EvalSummary,
}

/// The mapping problem in [`rdse_anneal::Problem`] form.
///
/// Move class 0 draws the paper's `(vs, vd)` pair moves (m1/m2); class
/// 1 draws implementation-selection moves (m5).
///
/// This is the incremental engine: proposals mutate the one resident
/// [`Mapping`] in place, scoring reuses the arena-backed [`Evaluator`],
/// rejected moves are reversed by their [`MoveDelta`] in O(touched),
/// and the only remaining full-solution clones are best-so-far
/// snapshots (taken when the incumbent improves) and their restores.
#[derive(Debug, Clone)]
pub struct MappingProblem<'a> {
    app: &'a TaskGraph,
    arch: &'a Architecture,
    mapping: Mapping,
    evaluator: Evaluator<'a>,
    scratch: MoveScratch,
    current: EvalSummary,
    spec: SpecState<'a>,
}

/// One worker's scoring assignment for a round: its candidate chunk
/// and the matching output slots — or `None` for a sync-only round.
type SpecChunk<'c> = Option<(&'c [SpecCandidate], &'c mut [Option<EvalSummary>])>;

/// One speculative-scoring worker: a replica of the resident mapping
/// with its own arena-backed evaluator, kept warm across rounds so the
/// steady state scores each candidate by one repair-cone delta instead
/// of a full pass.
#[derive(Debug)]
struct SpecWorker<'a> {
    evaluator: Evaluator<'a>,
    base: Mapping,
    /// Number of committed patches already replayed into `base`.
    version: usize,
    /// Whether `evaluator`'s mirrors track `base`.
    synced: bool,
}

impl SpecWorker<'_> {
    /// Replays the committed patches `base` has not seen yet, then (if
    /// `work` is given) scores each candidate into its slot: detach +
    /// reinstate into the candidate's destination, one delta
    /// evaluation, revert. Summaries are bit-identical to what the
    /// resident evaluator would report — evaluation results are
    /// history-independent — so the worker-to-candidate assignment is
    /// invisible in the output.
    fn sync_and_score(&mut self, patches: &[SpecCandidate], work: SpecChunk<'_>) {
        for patch in &patches[self.version..] {
            self.base.detach(patch.task);
            patch.slot.reinstate(&mut self.base, patch.task);
            // Committed moves are feasible by invariant; on the
            // (defensive) error path the evaluator has already reverted
            // itself and the full resync below takes over.
            if self.synced
                && self
                    .evaluator
                    .evaluate_delta(&self.base, patch.task)
                    .is_err()
            {
                self.synced = false;
            }
        }
        self.version = patches.len();
        if !self.synced {
            self.evaluator
                .evaluate(&self.base)
                .expect("worker replica of a feasible mapping is feasible");
            self.synced = true;
        }
        let Some((cands, outs)) = work else { return };
        for (cand, out) in cands.iter().zip(outs.iter_mut()) {
            let own = PrevSlot::capture(&self.base, cand.task);
            self.base.detach(cand.task);
            cand.slot.reinstate(&mut self.base, cand.task);
            match self.evaluator.evaluate_delta(&self.base, cand.task) {
                Ok(summary) => {
                    self.evaluator.revert_delta();
                    *out = Some(summary);
                }
                // Infeasible candidate: the evaluator reverted itself.
                Err(_) => *out = None,
            }
            self.base.detach(cand.task);
            own.reinstate(&mut self.base, cand.task);
        }
    }
}

/// Speculative-scoring machinery of a [`MappingProblem`]: worker
/// replicas, the log of committed moves they still have to replay, and
/// the slate summaries of the last scored round. Dormant (and
/// allocation-free) unless the annealer drives the problem through
/// [`SpeculativeProblem`].
#[derive(Debug)]
struct SpecState<'a> {
    /// Scoring pool; `None` uses the process-wide [`Pool::global`].
    pool: Option<Arc<Pool>>,
    /// Worker replicas, created lazily on the first speculative round.
    workers: Vec<SpecWorker<'a>>,
    /// Moves committed to the resident mapping since the last round;
    /// every worker replays them (its `version` indexes this log)
    /// before scoring, after which the log is cleared.
    patches: Vec<SpecCandidate>,
    /// Set by a wholesale mapping replacement (snapshot restore):
    /// workers must re-clone the resident mapping instead of patching.
    stale: bool,
    /// Slate-aligned summaries of the last scored round; the commit
    /// reads its accepted entry from here.
    summaries: Vec<Option<EvalSummary>>,
    rounds: u64,
    speculated: u64,
    committed: u64,
    wasted: u64,
}

impl SpecState<'_> {
    fn new() -> Self {
        SpecState {
            pool: None,
            workers: Vec::new(),
            patches: Vec::new(),
            stale: false,
            summaries: Vec::new(),
            rounds: 0,
            speculated: 0,
            committed: 0,
            wasted: 0,
        }
    }
}

impl Clone for SpecState<'_> {
    fn clone(&self) -> Self {
        // Workers and pending patches are caches bound to the
        // original's resident mapping; a clone starts clean and
        // rebuilds them lazily. The counters travel so profiling
        // survives a clone.
        SpecState {
            pool: self.pool.clone(),
            workers: Vec::new(),
            patches: Vec::new(),
            stale: false,
            summaries: self.summaries.clone(),
            rounds: self.rounds,
            speculated: self.speculated,
            committed: self.committed,
            wasted: self.wasted,
        }
    }
}

impl<'a> MappingProblem<'a> {
    /// Wraps an existing feasible mapping.
    ///
    /// The problem is objective-free: it reports the full
    /// [`CostVector`] of every candidate, and the engine's
    /// [`Scalarizer`] (an [`Objective`]) decides what acceptance
    /// minimizes.
    ///
    /// # Errors
    ///
    /// Returns the evaluation error if `mapping` is infeasible.
    pub fn new(
        app: &'a TaskGraph,
        arch: &'a Architecture,
        mapping: Mapping,
    ) -> Result<Self, MappingError> {
        Self::with_arenas(app, arch, mapping, None)
    }

    /// Like [`MappingProblem::new`], but revives a cached
    /// [`EvaluatorArenas`] bundle instead of allocating fresh arenas.
    /// Revival is observationally invisible (see
    /// [`Evaluator::with_arenas`]): results are bit-identical either
    /// way; only the allocator traffic differs.
    ///
    /// # Errors
    ///
    /// Returns the evaluation error if `mapping` is infeasible.
    pub fn with_arenas(
        app: &'a TaskGraph,
        arch: &'a Architecture,
        mapping: Mapping,
        arenas: Option<EvaluatorArenas>,
    ) -> Result<Self, MappingError> {
        mapping.validate(app, arch)?;
        let mut evaluator = match arenas {
            Some(a) => Evaluator::with_arenas(app, arch, a),
            None => Evaluator::new(app, arch),
        };
        let current = evaluator.evaluate(&mapping)?;
        Ok(MappingProblem {
            app,
            arch,
            mapping,
            evaluator,
            scratch: MoveScratch::default(),
            current,
            spec: SpecState::new(),
        })
    }

    /// The current mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Scalar summary of the current solution.
    pub fn summary(&self) -> EvalSummary {
        self.current
    }

    /// Arena counters of the internal [`Evaluator`], with the
    /// problem's speculation counters merged in. Worker-replica
    /// evaluator counters are *not* merged: they vary with the pool's
    /// worker count, while everything reported here is a pure function
    /// of the walk.
    pub fn evaluator_stats(&self) -> EvaluatorStats {
        let mut stats = self.evaluator.stats();
        stats.speculated = self.spec.speculated;
        stats.spec_committed = self.spec.committed;
        stats.spec_wasted = self.spec.wasted;
        stats.spec_rounds = self.spec.rounds;
        stats
    }

    /// Routes speculative scoring through `pool` instead of the
    /// process-wide [`Pool::global`]. The pool's worker count changes
    /// wall-clock time only, never the walk.
    pub fn set_speculation_pool(&mut self, pool: Arc<Pool>) {
        self.spec.pool = Some(pool);
    }

    /// Re-synchronizes the incremental evaluator after the resident
    /// mapping was replaced wholesale (snapshot restore): one full
    /// evaluation, after which delta scoring resumes. The summary is
    /// taken from the snapshot (it is bit-identical by the evaluator's
    /// determinism contract).
    fn resync(&mut self, summary: EvalSummary) {
        self.evaluator
            .evaluate(&self.mapping)
            .expect("restored snapshot is feasible by invariant");
        self.current = summary;
        // Worker replicas can no longer catch up by patch replay.
        self.spec.stale = true;
    }

    /// Consumes the problem, returning the mapping and its full
    /// evaluation (per-task trace included), computed once on the cold
    /// path.
    pub fn into_parts(self) -> (Mapping, Evaluation) {
        let (mapping, evaluation, _) = self.into_parts_with_arenas();
        (mapping, evaluation)
    }

    /// [`MappingProblem::into_parts`], additionally detaching the
    /// evaluator's arenas for reuse by a later problem over the same
    /// `app` × `arch` pair.
    pub fn into_parts_with_arenas(self) -> (Mapping, Evaluation, EvaluatorArenas) {
        let evaluation = self
            .evaluator
            .evaluate_full(&self.mapping)
            .expect("resident mapping is feasible by invariant");
        (self.mapping, evaluation, self.evaluator.into_arenas())
    }
}

impl Problem for MappingProblem<'_> {
    type Move = MappingMove;
    type Snapshot = (Mapping, EvalSummary);
    type Cost = CostVector;

    fn cost(&self) -> CostVector {
        CostVector::from_summary(&self.current)
    }

    fn n_move_classes(&self) -> usize {
        2
    }

    fn try_move(
        &mut self,
        rng: &mut dyn RngCore,
        class: usize,
    ) -> Option<(Self::Move, CostVector)> {
        // Proposal functions leave the mapping unchanged on None, so
        // the rejection path allocates and clones nothing.
        let outcome = match class {
            0 => propose_pair_move(
                self.app,
                self.arch,
                &mut self.mapping,
                rng,
                &mut self.scratch,
            ),
            _ => propose_impl_move(
                self.app,
                self.arch,
                &mut self.mapping,
                rng,
                &mut self.scratch,
            ),
        }?;
        // Delta evaluation: only the move's repair cone is relabeled,
        // bit-identical to a full re-evaluation. The evaluator keeps
        // the pre-move state recoverable until the annealer decides.
        match self
            .evaluator
            .evaluate_delta(&self.mapping, outcome.delta.task())
        {
            Ok(summary) => {
                let prev = self.current;
                self.current = summary;
                Some((
                    MappingMove {
                        delta: outcome.delta,
                        prev,
                    },
                    CostVector::from_summary(&self.current),
                ))
            }
            Err(_) => {
                // Cycle or capacity: infeasible move, reverse the
                // touched assignment (§4.3). The evaluator has already
                // reverted itself.
                outcome.delta.undo(&mut self.mapping);
                None
            }
        }
    }

    fn undo(&mut self, mv: Self::Move) {
        self.evaluator.revert_delta();
        mv.delta.undo(&mut self.mapping);
        self.current = mv.prev;
    }

    fn snapshot(&self) -> Self::Snapshot {
        (self.mapping.clone(), self.current)
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        // The one remaining full-solution clone: the borrowed snapshot
        // must stay usable (it is the engine's retained best), so the
        // mapping is copied back into the resident buffers.
        self.mapping.clone_from(&snapshot.0);
        self.resync(snapshot.1);
    }

    fn restore_owned(&mut self, snapshot: Self::Snapshot) {
        self.mapping = snapshot.0;
        self.resync(snapshot.1);
    }

    fn observables(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("makespan_ms", self.current.makespan.as_millis()),
            ("clb_area", f64::from(self.current.clb_area.value())),
            ("n_contexts", self.current.n_contexts as f64),
            (
                "initial_reconfig_ms",
                self.current.breakdown.initial_reconfig.as_millis(),
            ),
            (
                "dynamic_reconfig_ms",
                self.current.breakdown.dynamic_reconfig.as_millis(),
            ),
            ("n_hw_tasks", self.current.n_hw_tasks as f64),
        ]
    }
}

/// Speculative scoring for the mapping problem (`--speculate W`):
/// candidates are destination slots replayed on per-worker replicas of
/// the resident mapping, scored concurrently on a persistent
/// work-stealing pool. Because evaluation results are
/// history-independent, the worker count and chunking are invisible in
/// the summaries — the walk is bit-identical to the sequential one.
impl SpeculativeProblem for MappingProblem<'_> {
    type Candidate = SpecCandidate;

    fn propose_candidate(&mut self, rng: &mut dyn RngCore, class: usize) -> Option<SpecCandidate> {
        let outcome = match class {
            0 => propose_pair_move(
                self.app,
                self.arch,
                &mut self.mapping,
                rng,
                &mut self.scratch,
            ),
            _ => propose_impl_move(
                self.app,
                self.arch,
                &mut self.mapping,
                rng,
                &mut self.scratch,
            ),
        }?;
        // Encode the proposal as its destination slot, then put the
        // resident mapping back: the draw consumed exactly the
        // randomness the sequential path would have, and the state is
        // net unchanged (the evaluator's mirrors stay valid).
        let task = outcome.delta.task();
        let slot = PrevSlot::capture(&self.mapping, task);
        outcome.delta.undo(&mut self.mapping);
        Some(SpecCandidate { task, slot })
    }

    fn score_candidates(
        &mut self,
        candidates: &[SpecCandidate],
        out: &mut Vec<Option<CostVector>>,
    ) {
        out.clear();
        let spec = &mut self.spec;
        spec.summaries.clear();
        spec.summaries.resize(candidates.len(), None);
        if candidates.is_empty() {
            return;
        }
        if spec.stale {
            // The resident mapping was replaced wholesale; patch
            // replay is meaningless, so the replicas restart from a
            // clone (their arenas stay warm — only the next scoring
            // pays one full evaluation each).
            spec.patches.clear();
            for worker in &mut spec.workers {
                worker.base.clone_from(&self.mapping);
                worker.version = 0;
                worker.synced = false;
            }
            spec.stale = false;
        }
        let pool: &Pool = match &spec.pool {
            Some(p) => p,
            None => Pool::global(),
        };
        let slots = pool.threads().min(candidates.len()).max(1);
        while spec.workers.len() < slots {
            spec.workers.push(SpecWorker {
                evaluator: Evaluator::new(self.app, self.arch),
                base: self.mapping.clone(),
                version: spec.patches.len(),
                synced: false,
            });
        }
        // Contiguous chunks per worker; every worker syncs each round
        // (even without a chunk) so the patch log can be cleared.
        let chunk = candidates.len().div_ceil(slots);
        let patches = &spec.patches;
        let mut work: Vec<SpecChunk<'_>> = candidates
            .chunks(chunk)
            .zip(spec.summaries.chunks_mut(chunk))
            .map(Some)
            .collect();
        work.resize_with(spec.workers.len(), || None);
        if pool.threads() == 1 {
            for (worker, w) in spec.workers.iter_mut().zip(work) {
                worker.sync_and_score(patches, w);
            }
        } else {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = spec
                .workers
                .iter_mut()
                .zip(work)
                .map(|(worker, w)| {
                    Box::new(move || worker.sync_and_score(patches, w))
                        as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }
        spec.patches.clear();
        for worker in &mut spec.workers {
            worker.version = 0;
        }
        out.extend(
            spec.summaries
                .iter()
                .map(|s| s.map(|summary| CostVector::from_summary(&summary))),
        );
    }

    fn commit_candidate(&mut self, candidate: &SpecCandidate, index: usize) {
        self.mapping.detach(candidate.task);
        candidate.slot.reinstate(&mut self.mapping, candidate.task);
        self.current = self.spec.summaries[index].expect("committed candidate was scored feasible");
        // The resident evaluator did not see this mutation; the next
        // sequential delta takes its full-evaluate fall-back.
        self.evaluator.invalidate_sync();
        self.spec.patches.push(*candidate);
    }

    fn note_round(&mut self, speculated: u64, committed: u64, wasted: u64) {
        self.spec.rounds += 1;
        self.spec.speculated += speculated;
        self.spec.committed += committed;
        self.spec.wasted += wasted;
    }
}

/// Options of a full exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Total iteration budget (the paper's Fig. 2 run uses 5 000).
    pub max_iterations: u64,
    /// Infinite-temperature warm-up iterations (1 200 in Fig. 2).
    pub warmup_iterations: u64,
    /// Lam quality factor λ (smaller = slower cooling = better result).
    pub lambda: f64,
    /// RNG seed (controls both the initial solution and the walk).
    pub seed: u64,
    /// Trace sampling period (0 = no trace).
    pub trace_every: u64,
    /// Objective to minimize.
    pub objective: Objective,
    /// Use the adaptive move-class controller.
    pub adaptive_moves: bool,
    /// Select move kinds with the deterministic UCB bandit credited by
    /// realized improvement instead of the acceptance-rate roulette
    /// (takes precedence over `adaptive_moves`). The bandit consumes
    /// no randomness, so runs stay deterministic per seed; `false`
    /// (the default) keeps the engine bit-identical to previous
    /// releases.
    pub bandit_moves: bool,
    /// Stop early at this makespan-cost (µs), if given.
    pub target_cost: Option<f64>,
    /// Speculative lookahead width `W`. With `W > 1` each post-warm-up
    /// round draws the next `W` moves from the unchanged RNG stream,
    /// scores them concurrently on the speculation pool, and replays
    /// accept/reject sequentially — bit-identical to the sequential
    /// walk at any width and any pool worker count (see
    /// [`rdse_anneal::SpeculativeProblem`]). `1` (the default) is the
    /// fully sequential engine, byte-identical to previous releases.
    pub speculate: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_iterations: 5_000,
            warmup_iterations: 1_200,
            lambda: 0.5,
            seed: 0,
            trace_every: 0,
            objective: Objective::MinimizeMakespan,
            adaptive_moves: true,
            bandit_moves: false,
            target_cost: None,
            speculate: 1,
        }
    }
}

/// Result of [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Annealer statistics and trace; carries the best cost vector and
    /// the chain's Pareto archive ([`RunResult::front`]).
    pub run: RunResult<CostVector>,
    /// Arena counters of the chain's incremental evaluator.
    pub eval_stats: EvaluatorStats,
}

impl ExploreOutcome {
    /// The chain's Pareto archive over every accepted solution.
    pub fn front(&self) -> &ParetoFront<CostVector> {
        self.run
            .front
            .as_ref()
            .expect("explorer chains always track their front")
    }
}

/// Runs the complete tool of the paper on `app` × `arch`: random
/// initial solution, warm-up, Lam-adaptive annealing over the m1/m2/m5
/// moves, best solution returned.
///
/// # Errors
///
/// Returns [`MappingError`] if no feasible initial solution can be
/// constructed (e.g. the models are inconsistent).
///
/// See the [crate-level example](crate) for usage.
pub fn explore(
    app: &TaskGraph,
    arch: &Architecture,
    opts: &ExploreOptions,
) -> Result<ExploreOutcome, MappingError> {
    let mut explorer = Explorer::new(app, arch, opts)?;
    explorer.run_segment(u64::MAX);
    Ok(explorer.into_outcome())
}

/// A single annealing chain as a resumable state machine.
///
/// Construction performs the full setup of [`explore`] (random initial
/// solution, warm-up configuration, Lam schedule); the chain then
/// advances one iteration at a time ([`step`]) or in segments
/// ([`run_segment`]). Pausing at a segment boundary is invisible to the
/// walk: driving an `Explorer` to completion is bit-identical to
/// [`explore`] with equal options. Between segments the incumbent best
/// is readable via [`best`] and replaceable via [`adopt_best`] — the
/// exchange primitive used by [`explore_parallel`].
///
/// [`step`]: Explorer::step
/// [`run_segment`]: Explorer::run_segment
/// [`best`]: Explorer::best
/// [`adopt_best`]: Explorer::adopt_best
///
/// # Examples
///
/// ```
/// use rdse_mapping::{Explorer, ExploreOptions};
/// use rdse_workloads::{epicure_architecture, motion_detection_app};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = motion_detection_app();
/// let arch = epicure_architecture(2000);
/// let mut chain = Explorer::new(&app, &arch, &ExploreOptions {
///     max_iterations: 2_000,
///     warmup_iterations: 400,
///     seed: 1,
///     ..ExploreOptions::default()
/// })?;
/// while chain.run_segment(500) {
///     // exchange point: inspect chain.best(), adopt an incumbent, ...
/// }
/// let outcome = chain.into_outcome();
/// assert!(outcome.evaluation.makespan.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Explorer<'a> {
    annealer: Annealer<MappingProblem<'a>, LamSchedule, Objective>,
    objective: Objective,
    seed: u64,
    speculate: usize,
}

impl<'a> Explorer<'a> {
    /// Sets up a chain: draws the random initial solution from
    /// `opts.seed` and prepares the annealer exactly as [`explore`]
    /// does.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError`] if no feasible initial solution can be
    /// constructed (e.g. the models are inconsistent).
    pub fn new(
        app: &'a TaskGraph,
        arch: &'a Architecture,
        opts: &ExploreOptions,
    ) -> Result<Self, MappingError> {
        Self::with_arenas(app, arch, opts, None)
    }

    /// Like [`Explorer::new`], but revives a cached
    /// [`EvaluatorArenas`] bundle (see
    /// [`MappingProblem::with_arenas`]); recover it afterwards with
    /// [`Explorer::into_outcome_with_arenas`]. The walk is
    /// bit-identical to a cold-started chain.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError`] if no feasible initial solution can be
    /// constructed (e.g. the models are inconsistent).
    pub fn with_arenas(
        app: &'a TaskGraph,
        arch: &'a Architecture,
        opts: &ExploreOptions,
        arenas: Option<EvaluatorArenas>,
    ) -> Result<Self, MappingError> {
        Self::with_initial(app, arch, opts, arenas, None)
    }

    /// Like [`Explorer::with_arenas`], but an explicit `initial`
    /// mapping replaces the seed-drawn random initial solution — the
    /// warm-start primitive used by [`explore_parallel`] (see
    /// [`WarmStart`]).
    ///
    /// Only the starting point changes: with `initial: None` this *is*
    /// [`Explorer::with_arenas`], and with `Some(_)` the annealer's
    /// walk RNG stream (seeded independently of the initial-solution
    /// draw) is identical to the cold chain's, so a warm chain is a
    /// pure function of `(options, initial)`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError`] if the initial solution (provided or
    /// drawn) is infeasible for `app` × `arch`.
    pub fn with_initial(
        app: &'a TaskGraph,
        arch: &'a Architecture,
        opts: &ExploreOptions,
        arenas: Option<EvaluatorArenas>,
        initial: Option<Mapping>,
    ) -> Result<Self, MappingError> {
        let initial = match initial {
            Some(mapping) => {
                mapping.validate(app, arch)?;
                mapping
            }
            None => {
                let mut rng = StdRng::seed_from_u64(opts.seed);
                random_initial(app, arch, &mut rng)
            }
        };
        let problem = MappingProblem::with_arenas(app, arch, initial, arenas)?;
        let schedule = LamSchedule::new(opts.lambda);
        let mut annealer = Annealer::with_scalarizer(
            problem,
            schedule,
            RunOptions {
                max_iterations: opts.max_iterations,
                warmup_iterations: opts.warmup_iterations,
                seed: opts.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
                trace_every: opts.trace_every,
                adaptive_moves: opts.adaptive_moves,
                bandit_moves: opts.bandit_moves,
                target_cost: opts.target_cost,
                ..RunOptions::default()
            },
            opts.objective,
        );
        // Every chain archives its trade-off front; recording is
        // observational, so the walk is unchanged.
        annealer.track_front();
        Ok(Explorer {
            annealer,
            objective: opts.objective,
            seed: opts.seed,
            speculate: opts.speculate.max(1),
        })
    }

    /// Runs one annealing iteration; returns `true` while the chain can
    /// continue.
    pub fn step(&mut self) -> bool {
        self.annealer.step()
    }

    /// Runs up to `steps` iterations (fewer if the chain ends first);
    /// returns `true` while the chain can continue. With
    /// [`ExploreOptions::speculate`] > 1 the segment runs on the
    /// speculative engine — same walk, scored in parallel.
    pub fn run_segment(&mut self, steps: u64) -> bool {
        if self.speculate > 1 {
            self.annealer.run_segment_speculative(steps, self.speculate)
        } else {
            self.annealer.run_segment(steps)
        }
    }

    /// Routes this chain's speculative scoring through `pool` instead
    /// of the process-wide [`Pool::global`]. Worker count affects
    /// wall-clock time only, never the walk.
    pub fn set_speculation_pool(&mut self, pool: Arc<Pool>) {
        self.annealer.problem_mut().set_speculation_pool(pool);
    }

    /// Whether the chain has exhausted its budget or hit a stop
    /// condition.
    pub fn is_finished(&self) -> bool {
        self.annealer.is_finished()
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.annealer.iterations()
    }

    /// Scalarized objective cost of the best solution seen so far.
    pub fn best_cost(&self) -> f64 {
        self.annealer.best_cost()
    }

    /// Full cost vector of the best solution seen so far.
    pub fn best_objectives(&self) -> &CostVector {
        self.annealer.best_objectives()
    }

    /// The chain's Pareto archive over accepted solutions so far.
    pub fn front(&self) -> &ParetoFront<CostVector> {
        self.annealer
            .front()
            .expect("explorer chains always track their front")
    }

    /// The best mapping and its scalar summary seen so far.
    pub fn best(&self) -> (&Mapping, EvalSummary) {
        let snapshot = self.annealer.best_snapshot();
        (&snapshot.0, snapshot.1)
    }

    /// Arena counters of the chain's incremental evaluator.
    pub fn eval_stats(&self) -> EvaluatorStats {
        self.annealer.problem().evaluator_stats()
    }

    /// The RNG seed this chain was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The objective this chain minimizes.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Replaces the chain's current solution with an external incumbent
    /// (portfolio exchange). The chain's RNG stream and schedule state
    /// are untouched, so determinism is preserved.
    pub fn adopt_best(&mut self, mapping: Mapping, summary: EvalSummary) {
        let cost = CostVector::from_summary(&summary);
        self.annealer.adopt((mapping, summary), cost);
    }

    /// Ends the chain: the problem is restored to the best solution and
    /// packed into an [`ExploreOutcome`] (the full per-task evaluation
    /// is computed once here, on the cold path).
    pub fn into_outcome(self) -> ExploreOutcome {
        self.into_outcome_with_arenas().0
    }

    /// [`Explorer::into_outcome`], additionally detaching the chain's
    /// evaluator arenas for reuse by a later chain over the same
    /// `app` × `arch` pair.
    pub fn into_outcome_with_arenas(self) -> (ExploreOutcome, EvaluatorArenas) {
        let (problem, _schedule, run) = self.annealer.finish();
        let eval_stats = problem.evaluator_stats();
        let (mapping, evaluation, arenas) = problem.into_parts_with_arenas();
        (
            ExploreOutcome {
                mapping,
                evaluation,
                run,
                eval_stats,
            },
            arenas,
        )
    }
}

/// SplitMix64 finalizer — decorrelates per-chain RNG streams derived
/// from one master seed (Steele, Lea & Flood, OOPSLA'14).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of chain `chain` in a portfolio run with master seed
/// `seed`. Chain 0 uses the master seed unchanged, so a 1-chain
/// portfolio reproduces [`explore`] exactly; later chains draw
/// decorrelated streams via SplitMix64 on `seed ^ chain`.
pub fn chain_seed(seed: u64, chain: usize) -> u64 {
    if chain == 0 {
        seed
    } else {
        splitmix64(seed ^ chain as u64)
    }
}

/// Opt-in warm-start seeding for [`explore_parallel`]: chain 0 starts
/// from this mapping instead of its seed-drawn random initial
/// solution.
///
/// # Determinism
///
/// Warm-starting changes **only** chain 0's starting point. The
/// initial-solution RNG and the annealing-walk RNG are independently
/// seeded streams, and the warm path simply skips the former — every
/// chain's walk stream, the exchange schedule and the other chains'
/// initial draws are untouched. A warm-started run is therefore a pure
/// function of `(options, warm mapping)`: reproducible given the
/// archive state that supplied the mapping, and with `warm_start:
/// None` (the default) the engine is bit-identical to previous
/// releases.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Chain 0's initial mapping. Must be feasible for the run's
    /// `app` × `arch` (checked at chain construction).
    pub mapping: Mapping,
}

/// Options of a parallel portfolio exploration.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Per-chain options. `base.max_iterations` is the **total**
    /// iteration budget of the portfolio — it is divided evenly across
    /// chains (remainder to the lowest chain ids) so that
    /// [`explore_parallel`] and [`explore`] are comparable at equal
    /// budget; `base.warmup_iterations` scales down proportionally.
    /// `base.seed` is the master seed — see [`chain_seed`].
    pub base: ExploreOptions,
    /// Number of annealing chains (≥ 1). Results depend on this value.
    pub chains: usize,
    /// Worker threads; `0` uses the machine's available parallelism.
    /// Never affects results, only wall-clock time.
    pub threads: usize,
    /// Per-chain iterations between best-solution exchanges (`0` = the
    /// chains run fully independently).
    pub exchange_every: u64,
    /// Opt-in warm start: chain 0 begins from this mapping instead of
    /// its random initial solution. `None` (the default) keeps the
    /// engine bit-identical to a cold run — see [`WarmStart`].
    pub warm_start: Option<WarmStart>,
    /// Opt-in front-aware exchange: at each barrier the chains adopt
    /// *distinct members of the portfolio front* (ordered by crowding
    /// distance, least crowded first) instead of all converging on the
    /// single scalar incumbent — diversity injection across the
    /// trade-off surface. The assignment is a deterministic function
    /// of the chain states (ties broken by objective axes, then by
    /// lowest contributing chain id), so the run stays bit-identical
    /// at any thread count. `false` (the default) keeps the historical
    /// incumbent-only exchange bit for bit.
    pub front_exchange: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            base: ExploreOptions::default(),
            chains: 8,
            threads: 0,
            exchange_every: 500,
            warm_start: None,
            front_exchange: false,
        }
    }
}

/// Per-chain statistics of a portfolio run.
#[derive(Debug, Clone)]
pub struct ChainStats {
    /// Chain index (0-based).
    pub chain: usize,
    /// The chain's RNG seed (see [`chain_seed`]).
    pub seed: u64,
    /// Evaluation of the chain's best solution.
    pub evaluation: Evaluation,
    /// The chain's annealer statistics, including its own Pareto
    /// archive ([`RunResult::front`]).
    pub run: RunResult<CostVector>,
    /// Arena counters of the chain's incremental evaluator.
    pub eval_stats: EvaluatorStats,
}

/// Result of [`explore_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Best mapping across all chains.
    pub mapping: Mapping,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Index of the winning chain.
    pub winner: usize,
    /// Per-chain statistics, indexed by chain id.
    pub chains: Vec<ChainStats>,
    /// The portfolio Pareto front: the per-chain archives merged in
    /// chain order — deterministic for a given `(seed, chains)`
    /// regardless of thread count, like everything else here.
    pub front: ParetoFront<CostVector>,
    /// Wall-clock duration of the whole portfolio run.
    pub elapsed: Duration,
}

/// Runs a portfolio of `opts.chains` annealing chains over `app` ×
/// `arch`, splitting `opts.base.max_iterations` evenly across chains
/// and exchanging the incumbent best every `opts.exchange_every`
/// per-chain iterations.
///
/// Chains advance in lock-step segments: all chains complete a segment
/// (in parallel across up to `opts.threads` workers), then the
/// portfolio winner — lowest objective cost, ties broken by lowest
/// chain id — is adopted by every strictly worse chain, and the next
/// segment starts. Because each chain walks its own RNG stream and
/// exchanges happen only at these deterministic barriers, the outcome
/// is **bit-identical for a given `(seed, chains)` regardless of the
/// thread count**.
///
/// # Errors
///
/// Returns [`MappingError`] if any chain fails to construct a feasible
/// initial solution.
///
/// # Examples
///
/// ```
/// use rdse_mapping::{explore, explore_parallel, ExploreOptions, ParallelOptions};
/// use rdse_workloads::{epicure_architecture, motion_detection_app};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = motion_detection_app();
/// let arch = epicure_architecture(2000);
/// let opts = ParallelOptions {
///     base: ExploreOptions { max_iterations: 2_000, warmup_iterations: 400, seed: 1,
///                            ..ExploreOptions::default() },
///     chains: 4,
///     threads: 2,
///     exchange_every: 250,
///     warm_start: None,
///     front_exchange: false,
/// };
/// let portfolio = explore_parallel(&app, &arch, &opts)?;
/// assert_eq!(portfolio.chains.len(), 4);
/// // The winner is the best of all chains.
/// assert!(portfolio.chains.iter().all(|c| portfolio.evaluation.makespan.value()
///     <= c.evaluation.makespan.value() + 1e-9));
/// # Ok(())
/// # }
/// ```
pub fn explore_parallel(
    app: &TaskGraph,
    arch: &Architecture,
    opts: &ParallelOptions,
) -> Result<ParallelOutcome, MappingError> {
    explore_parallel_observed(app, arch, opts, &mut Vec::new(), |_| true)
}

/// A progress snapshot delivered to the observer of
/// [`explore_parallel_observed`] at each lock-step segment barrier
/// (and once more when the portfolio finishes).
#[derive(Debug)]
pub struct SegmentUpdate<'u> {
    /// Lock-step segments completed so far (1-based).
    pub segment: u64,
    /// Iterations executed so far, summed across all chains.
    pub iterations: u64,
    /// Scalarized objective cost of the current portfolio incumbent.
    pub best_cost: f64,
    /// Full cost vector of the current portfolio incumbent.
    pub best: CostVector,
    /// The portfolio Pareto front so far (per-chain archives merged in
    /// chain order).
    pub front: &'u ParetoFront<CostVector>,
    /// `true` on the final update (budget exhausted or target hit).
    pub finished: bool,
}

/// [`explore_parallel`] with two additions for long-lived callers (the
/// serving layer): cached [`EvaluatorArenas`] are revived into the
/// chains (`arenas` is drained on entry and refilled with the chains'
/// arenas on exit, ready for the next job over the same pair), and an
/// `observer` is called at every exchange barrier with a
/// [`SegmentUpdate`] so progress can be streamed while the portfolio
/// converges.
///
/// Observation is read-only and arena revival is observationally
/// invisible, so for any observer that keeps returning `true` the
/// outcome is **bit-identical to [`explore_parallel`]** with equal
/// options. An observer returning `false` aborts the portfolio at the
/// barrier: the outcome then reflects the best solutions found so far
/// (and is naturally *not* comparable to a full run).
///
/// # Errors
///
/// Returns [`MappingError`] if any chain fails to construct a feasible
/// initial solution.
pub fn explore_parallel_observed(
    app: &TaskGraph,
    arch: &Architecture,
    opts: &ParallelOptions,
    arenas: &mut Vec<EvaluatorArenas>,
    mut observer: impl FnMut(&SegmentUpdate<'_>) -> bool,
) -> Result<ParallelOutcome, MappingError> {
    let start = Instant::now();
    let chains = opts.chains.max(1);
    let total = opts.base.max_iterations;

    let mut explorers = Vec::with_capacity(chains);
    for c in 0..chains {
        let per_chain = total / chains as u64 + u64::from((c as u64) < total % chains as u64);
        // Scale the warm-up with the chain's share of the budget (u128
        // so huge budgets cannot overflow the product).
        let warmup = if total == 0 {
            0
        } else {
            ((opts.base.warmup_iterations as u128 * per_chain as u128) / total as u128) as u64
        };
        let chain_opts = ExploreOptions {
            max_iterations: per_chain,
            warmup_iterations: warmup,
            seed: chain_seed(opts.base.seed, c),
            ..opts.base.clone()
        };
        // Warm start replaces chain 0's random initial; other chains
        // always draw their own.
        let initial = if c == 0 {
            opts.warm_start.as_ref().map(|w| w.mapping.clone())
        } else {
            None
        };
        explorers.push(Explorer::with_initial(
            app,
            arch,
            &chain_opts,
            arenas.pop(),
            initial,
        )?);
    }

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    }
    .clamp(1, chains);
    let segment = if opts.exchange_every == 0 {
        u64::MAX
    } else {
        opts.exchange_every
    };

    let mut segments = 0u64;
    loop {
        // One lock-step segment. Chains are data-parallel within a
        // segment; splitting them into contiguous per-worker chunks
        // keeps the result independent of the thread count.
        if threads == 1 {
            for chain in &mut explorers {
                chain.run_segment(segment);
            }
        } else {
            // Fan out on the persistent process-wide pool (no
            // per-segment thread spawning). The chunking is a pure
            // function of (chains, threads), so the result is
            // independent of the pool's actual worker count.
            let chunk = explorers.len().div_ceil(threads);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = explorers
                .chunks_mut(chunk)
                .map(|part| {
                    Box::new(move || {
                        for chain in part {
                            chain.run_segment(segment);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            Pool::global().run(tasks);
        }
        segments += 1;

        let target_hit = opts
            .base
            .target_cost
            .is_some_and(|t| explorers.iter().any(|c| c.best_cost() <= t));
        let done = target_hit || explorers.iter().all(Explorer::is_finished);

        // Observe at the barrier: a read-only snapshot of the
        // portfolio state, never part of the walk.
        let keep_going = {
            let incumbent = portfolio_winner(&explorers);
            let mut snapshot = ParetoFront::new();
            for chain in &explorers {
                snapshot.merge(chain.front());
            }
            observer(&SegmentUpdate {
                segment: segments,
                iterations: explorers.iter().map(Explorer::iterations).sum(),
                best_cost: explorers[incumbent].best_cost(),
                best: *explorers[incumbent].best_objectives(),
                front: &snapshot,
                finished: done,
            })
        };
        if done || !keep_going {
            break;
        }

        if opts.front_exchange {
            exchange_front_members(&mut explorers);
        } else {
            // Exchange at the barrier: strictly worse chains adopt the
            // portfolio winner (ties keep their own solution — and the
            // winner is picked by lowest chain id, so the exchange is a
            // deterministic function of the chain states).
            let winner = portfolio_winner(&explorers);
            let winner_cost = explorers[winner].best_cost();
            let (best_mapping, best_summary) = {
                let (m, s) = explorers[winner].best();
                (m.clone(), s)
            };
            for (i, chain) in explorers.iter_mut().enumerate() {
                if i != winner && chain.best_cost() > winner_cost && !chain.is_finished() {
                    chain.adopt_best(best_mapping.clone(), best_summary);
                }
            }
        }
    }

    let winner = portfolio_winner(&explorers);
    let mut chain_stats = Vec::with_capacity(chains);
    let mut winner_solution = None;
    let mut front = ParetoFront::new();
    for (i, chain) in explorers.into_iter().enumerate() {
        let seed = chain.seed();
        let (outcome, chain_arenas) = chain.into_outcome_with_arenas();
        arenas.push(chain_arenas);
        if i == winner {
            winner_solution = Some((outcome.mapping.clone(), outcome.evaluation.clone()));
        }
        // Merging the final archives in chain order is equivalent to
        // merging at every exchange barrier: archives only ever evict a
        // member for a dominating one, so the union front is the same.
        front.merge(outcome.front());
        chain_stats.push(ChainStats {
            chain: i,
            seed,
            evaluation: outcome.evaluation,
            run: outcome.run,
            eval_stats: outcome.eval_stats,
        });
    }
    let (mapping, evaluation) = winner_solution.expect("portfolio has at least one chain");
    Ok(ParallelOutcome {
        mapping,
        evaluation,
        winner,
        chains: chain_stats,
        front,
        elapsed: start.elapsed(),
    })
}

/// A retrievable solution in the front-exchange pool: the cost vector
/// the front reasons about plus the mapping and summary a chain needs
/// to adopt it. Equality and dominance delegate to the cost vector
/// alone, so two chains whose bests coincide on every axis dedupe to
/// one pool entry — and insertion in chain order makes the *lowest
/// contributing chain id* the survivor of such ties.
#[derive(Debug, Clone)]
struct FrontSolution {
    cost: CostVector,
    mapping: Mapping,
    summary: EvalSummary,
}

impl PartialEq for FrontSolution {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}

impl Dominance for FrontSolution {
    fn dominates(&self, other: &Self) -> bool {
        self.cost.dominates(&other.cost)
    }
}

/// Exact per-axis lexicographic order on cost vectors — the
/// deterministic tie-break of the front-exchange assignment.
fn cmp_axes(a: &CostVector, b: &CostVector) -> std::cmp::Ordering {
    a.makespan
        .total_cmp(&b.makespan)
        .then(a.clb_area.total_cmp(&b.clb_area))
        .then(a.reconfig_overhead.total_cmp(&b.reconfig_overhead))
        .then(a.contexts.total_cmp(&b.contexts))
}

/// Front-aware exchange: pools the chains' best solutions, reduces
/// them to the non-dominated set, orders the members by crowding
/// distance (descending — boundary and sparse members first, the
/// diversity NSGA-II's crowded comparison protects) and hands member
/// `order[i mod len]` to chain `i`. Chains whose best vector already
/// equals their assigned member keep their position.
///
/// Runs entirely at the lock-step barrier and consumes no randomness,
/// so the portfolio stays bit-identical at any thread count.
fn exchange_front_members(explorers: &mut [Explorer<'_>]) {
    let mut pool: ParetoFront<FrontSolution> = ParetoFront::new();
    for chain in explorers.iter() {
        let (mapping, summary) = chain.best();
        pool.insert(FrontSolution {
            cost: CostVector::from_summary(&summary),
            mapping: mapping.clone(),
            summary,
        });
    }
    let members = pool.members();
    let costs: Vec<CostVector> = members.iter().map(|m| m.cost).collect();
    let crowding = crowding_distance(&costs);
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by(|&a, &b| {
        crowding[b]
            .total_cmp(&crowding[a])
            .then_with(|| cmp_axes(&costs[a], &costs[b]))
            .then(a.cmp(&b))
    });
    for (i, chain) in explorers.iter_mut().enumerate() {
        if chain.is_finished() {
            continue;
        }
        let member = &members[order[i % order.len()]];
        if *chain.best_objectives() != member.cost {
            chain.adopt_best(member.mapping.clone(), member.summary);
        }
    }
}

/// Index of the chain with the lowest best cost, ties to the lowest id.
fn portfolio_winner(explorers: &[Explorer<'_>]) -> usize {
    explorers
        .iter()
        .enumerate()
        // The explicit id tie-break makes "lowest chain id wins" part
        // of the comparison itself rather than a side effect of
        // min_by's first-of-equals behavior.
        .min_by(|(ia, a), (ib, b)| a.best_cost().total_cmp(&b.best_cost()).then(ia.cmp(ib)))
        .map(|(i, _)| i)
        .expect("portfolio has at least one chain")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use rand::Rng;
    use rdse_anneal::Dominance;
    use rdse_model::units::{Bytes, Clbs};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    /// A pipeline where hardware acceleration pays off massively.
    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("pipe");
        let mut prev = None;
        for i in 0..8 {
            let t = app
                .add_task(
                    format!("t{i}"),
                    "F",
                    us(1000.0),
                    vec![
                        HwImpl::new(Clbs::new(80), us(50.0)),
                        HwImpl::new(Clbs::new(160), us(25.0)),
                    ],
                )
                .unwrap();
            if let Some(p) = prev {
                app.add_data_edge(p, t, Bytes::new(500)).unwrap();
            }
            prev = Some(t);
        }
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(400), us(0.5), 1.0)
            .bus_rate(100.0)
            .build()
            .unwrap();
        (app, arch)
    }

    #[test]
    fn explore_beats_all_software() {
        let (app, arch) = fixture();
        let all_sw = app.total_sw_time();
        let out = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 6_000,
                warmup_iterations: 1_000,
                seed: 42,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(
            out.evaluation.makespan < all_sw * 0.5,
            "no speedup: {} vs {}",
            out.evaluation.makespan,
            all_sw
        );
        out.mapping.validate(&app, &arch).unwrap();
        // Returned evaluation matches a fresh evaluation of the mapping.
        let fresh = evaluate(&app, &arch, &out.mapping).unwrap();
        assert_eq!(fresh.makespan, out.evaluation.makespan);
    }

    #[test]
    fn explore_is_deterministic_per_seed() {
        let (app, arch) = fixture();
        let opts = ExploreOptions {
            max_iterations: 2_000,
            warmup_iterations: 400,
            seed: 7,
            ..ExploreOptions::default()
        };
        let a = explore(&app, &arch, &opts).unwrap();
        let b = explore(&app, &arch, &opts).unwrap();
        assert_eq!(a.evaluation.makespan, b.evaluation.makespan);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn trace_records_observables() {
        let (app, arch) = fixture();
        let out = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 1_000,
                warmup_iterations: 200,
                trace_every: 100,
                seed: 3,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.run.trace.len(), 10);
        let names: Vec<&str> = out.run.trace[0]
            .observables
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert!(names.contains(&"makespan_ms"));
        assert!(names.contains(&"n_contexts"));
    }

    #[test]
    fn undo_restores_cost_exactly() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(5);
        let initial = random_initial(&app, &arch, &mut rng);
        let mut p = MappingProblem::new(&app, &arch, initial).unwrap();
        for _ in 0..300 {
            let before_cost = p.cost();
            let before_map = p.mapping().clone();
            let class = rng.random_range(0..2);
            if let Some((mv, _)) = p.try_move(&mut rng, class) {
                p.undo(mv);
                assert_eq!(p.cost(), before_cost);
                assert_eq!(p.mapping(), &before_map);
            }
        }
    }

    #[test]
    fn explorer_segments_match_one_shot_explore() {
        let (app, arch) = fixture();
        let opts = ExploreOptions {
            max_iterations: 2_000,
            warmup_iterations: 400,
            seed: 11,
            ..ExploreOptions::default()
        };
        let whole = explore(&app, &arch, &opts).unwrap();
        let mut chain = Explorer::new(&app, &arch, &opts).unwrap();
        for seg in [1u64, 13, 200, 700, 5_000] {
            if !chain.run_segment(seg) {
                break;
            }
        }
        let segmented = chain.into_outcome();
        assert_eq!(
            whole.evaluation.makespan.value().to_bits(),
            segmented.evaluation.makespan.value().to_bits()
        );
        assert_eq!(whole.mapping, segmented.mapping);
        assert_eq!(whole.run.accepted, segmented.run.accepted);
    }

    #[test]
    fn single_chain_portfolio_reproduces_explore() {
        let (app, arch) = fixture();
        let base = ExploreOptions {
            max_iterations: 2_000,
            warmup_iterations: 400,
            seed: 21,
            ..ExploreOptions::default()
        };
        let single = explore(&app, &arch, &base).unwrap();
        let portfolio = explore_parallel(
            &app,
            &arch,
            &ParallelOptions {
                base,
                chains: 1,
                threads: 4,
                exchange_every: 300,
                warm_start: None,
                front_exchange: false,
            },
        )
        .unwrap();
        assert_eq!(portfolio.winner, 0);
        assert_eq!(portfolio.mapping, single.mapping);
        assert_eq!(
            portfolio.evaluation.makespan.value().to_bits(),
            single.evaluation.makespan.value().to_bits()
        );
        assert_eq!(portfolio.chains[0].seed, 21);
    }

    #[test]
    fn portfolio_is_thread_count_invariant() {
        let (app, arch) = fixture();
        let run = |threads: usize| {
            explore_parallel(
                &app,
                &arch,
                &ParallelOptions {
                    base: ExploreOptions {
                        max_iterations: 3_000,
                        warmup_iterations: 600,
                        seed: 5,
                        ..ExploreOptions::default()
                    },
                    chains: 5,
                    threads,
                    exchange_every: 200,
                    warm_start: None,
                    front_exchange: false,
                },
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(2);
        let c = run(8);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(b.mapping, c.mapping);
        assert_eq!(a.winner, c.winner);
        assert_eq!(
            a.evaluation.makespan.value().to_bits(),
            c.evaluation.makespan.value().to_bits()
        );
        for (x, y) in a.chains.iter().zip(&c.chains) {
            assert_eq!(x.run.best_cost.to_bits(), y.run.best_cost.to_bits());
            assert_eq!(x.run.accepted, y.run.accepted);
        }
    }

    #[test]
    fn front_exchange_is_thread_count_invariant() {
        let (app, arch) = fixture();
        let run = |threads: usize| {
            explore_parallel(
                &app,
                &arch,
                &ParallelOptions {
                    base: ExploreOptions {
                        max_iterations: 3_000,
                        warmup_iterations: 600,
                        seed: 5,
                        ..ExploreOptions::default()
                    },
                    chains: 5,
                    threads,
                    exchange_every: 200,
                    warm_start: None,
                    front_exchange: true,
                },
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(2);
        let c = run(8);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(b.mapping, c.mapping);
        assert_eq!(a.winner, c.winner);
        assert_eq!(
            a.evaluation.makespan.value().to_bits(),
            c.evaluation.makespan.value().to_bits()
        );
        assert_eq!(a.front.len(), c.front.len());
        for (x, y) in a.chains.iter().zip(&c.chains) {
            assert_eq!(x.run.best_cost.to_bits(), y.run.best_cost.to_bits());
            assert_eq!(x.run.accepted, y.run.accepted);
        }
    }

    #[test]
    fn front_exchange_off_is_bit_identical_to_the_default_path() {
        // The flag must be a pure opt-in: an explicit `false` and the
        // historical engine walk the same walk.
        let (app, arch) = fixture();
        let opts = |front_exchange: bool| ParallelOptions {
            base: ExploreOptions {
                max_iterations: 2_000,
                warmup_iterations: 400,
                seed: 9,
                ..ExploreOptions::default()
            },
            chains: 4,
            threads: 2,
            exchange_every: 250,
            warm_start: None,
            front_exchange,
        };
        let off = explore_parallel(&app, &arch, &opts(false)).unwrap();
        let on = explore_parallel(&app, &arch, &opts(true)).unwrap();
        // Off matches itself across repeats (sanity), and the on-path
        // at least converges to a valid solution.
        let off2 = explore_parallel(&app, &arch, &opts(false)).unwrap();
        assert_eq!(off.mapping, off2.mapping);
        assert_eq!(
            off.evaluation.makespan.value().to_bits(),
            off2.evaluation.makespan.value().to_bits()
        );
        on.mapping.validate(&app, &arch).unwrap();
        // The front-aware portfolio never loses the scalar race to a
        // degenerate degree: its winner is still a finite solution at
        // most as bad as any single chain's own best.
        assert!(on
            .chains
            .iter()
            .all(|c| on.evaluation.makespan.value() <= c.evaluation.makespan.value()));
    }

    #[test]
    fn front_exchange_spreads_distinct_members() {
        // With diverse chain bests the assignment hands out *different*
        // front members, not one incumbent: after one exchange the
        // chains' current positions should not all coincide.
        let (app, arch) = fixture();
        let portfolio = explore_parallel(
            &app,
            &arch,
            &ParallelOptions {
                base: ExploreOptions {
                    max_iterations: 4_000,
                    warmup_iterations: 800,
                    seed: 3,
                    ..ExploreOptions::default()
                },
                chains: 4,
                threads: 1,
                exchange_every: 250,
                warm_start: None,
                front_exchange: true,
            },
        )
        .unwrap();
        // The portfolio front survives the member hand-outs and stays
        // mutually non-dominated (ParetoFront invariant), with the
        // winner's vector covered by it.
        let best = CostVector::from_summary(&portfolio.evaluation.summary());
        assert!(portfolio
            .front
            .iter()
            .any(|m| *m == best || m.dominates(&best)));
    }

    #[test]
    fn portfolio_budget_is_split_across_chains() {
        let (app, arch) = fixture();
        let portfolio = explore_parallel(
            &app,
            &arch,
            &ParallelOptions {
                base: ExploreOptions {
                    max_iterations: 1_001,
                    warmup_iterations: 200,
                    seed: 2,
                    ..ExploreOptions::default()
                },
                chains: 4,
                threads: 2,
                exchange_every: 0,
                warm_start: None,
                front_exchange: false,
            },
        )
        .unwrap();
        let iters: u64 = portfolio.chains.iter().map(|c| c.run.iterations).sum();
        assert_eq!(iters, 1_001); // 251 + 250 + 250 + 250
        assert_eq!(portfolio.chains[0].run.iterations, 251);
    }

    #[test]
    fn exchange_spreads_the_incumbent() {
        // With an aggressive exchange period every chain should end at
        // least as good as the worst independent chain would.
        let (app, arch) = fixture();
        let base = ExploreOptions {
            max_iterations: 4_000,
            warmup_iterations: 400,
            seed: 33,
            ..ExploreOptions::default()
        };
        let exchanged = explore_parallel(
            &app,
            &arch,
            &ParallelOptions {
                base: base.clone(),
                chains: 4,
                threads: 2,
                exchange_every: 100,
                warm_start: None,
                front_exchange: false,
            },
        )
        .unwrap();
        let independent = explore_parallel(
            &app,
            &arch,
            &ParallelOptions {
                base,
                chains: 4,
                threads: 2,
                exchange_every: 0,
                warm_start: None,
                front_exchange: false,
            },
        )
        .unwrap();
        exchanged.mapping.validate(&app, &arch).unwrap();
        independent.mapping.validate(&app, &arch).unwrap();
        // Adoption pulls every laggard to the incumbent: no exchanged
        // chain may end worse than the worst independent chain, and at
        // least one must end strictly better (the chain that would
        // have stayed stuck on its own stream).
        let worst = |p: &ParallelOutcome| {
            p.chains
                .iter()
                .map(|c| c.run.best_cost)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(worst(&exchanged) <= worst(&independent));
        assert!(
            exchanged
                .chains
                .iter()
                .zip(&independent.chains)
                .any(|(e, i)| e.run.best_cost < i.run.best_cost),
            "exchange never improved any chain: {:?} vs {:?}",
            exchanged
                .chains
                .iter()
                .map(|c| c.run.best_cost)
                .collect::<Vec<_>>(),
            independent
                .chains
                .iter()
                .map(|c| c.run.best_cost)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn warm_start_is_deterministic_and_thread_invariant() {
        let (app, arch) = fixture();
        // Any feasible mapping works as a warm seed; use a short cold
        // run's winner like the store's warm path does.
        let donor = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 500,
                warmup_iterations: 100,
                seed: 7,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let run = |threads: usize| {
            explore_parallel(
                &app,
                &arch,
                &ParallelOptions {
                    base: ExploreOptions {
                        max_iterations: 2_000,
                        warmup_iterations: 400,
                        seed: 42,
                        ..ExploreOptions::default()
                    },
                    chains: 4,
                    threads,
                    exchange_every: 200,
                    warm_start: Some(WarmStart {
                        mapping: donor.mapping.clone(),
                    }),
                    front_exchange: false,
                },
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.winner, b.winner);
        assert_eq!(
            a.evaluation.makespan.value().to_bits(),
            b.evaluation.makespan.value().to_bits()
        );
        a.mapping.validate(&app, &arch).unwrap();
    }

    #[test]
    fn warm_start_seeds_only_chain_zero() {
        let (app, arch) = fixture();
        let donor = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 500,
                warmup_iterations: 100,
                seed: 7,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let run = |warm: Option<WarmStart>| {
            explore_parallel(
                &app,
                &arch,
                &ParallelOptions {
                    base: ExploreOptions {
                        max_iterations: 2_000,
                        warmup_iterations: 400,
                        seed: 42,
                        ..ExploreOptions::default()
                    },
                    chains: 3,
                    threads: 2,
                    // Independent chains: the warm seed must not leak
                    // past chain 0 through exchanges.
                    exchange_every: 0,
                    warm_start: warm,
                    front_exchange: false,
                },
            )
            .unwrap()
        };
        let cold = run(None);
        let warm = run(Some(WarmStart {
            mapping: donor.mapping.clone(),
        }));
        // Chains 1.. are bit-identical to the cold run; only chain 0's
        // trajectory may move.
        for (c, w) in cold.chains.iter().zip(&warm.chains).skip(1) {
            assert_eq!(c.run.best_cost.to_bits(), w.run.best_cost.to_bits());
            assert_eq!(c.run.accepted, w.run.accepted);
            assert_eq!(
                c.evaluation.makespan.value().to_bits(),
                w.evaluation.makespan.value().to_bits()
            );
        }
        warm.mapping.validate(&app, &arch).unwrap();
    }

    #[test]
    fn warm_start_rejects_an_infeasible_mapping() {
        let (app, arch) = fixture();
        let donor = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 200,
                warmup_iterations: 50,
                seed: 1,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        // A mapping for a *different* application shape must be turned
        // away at chain construction, not crash mid-search.
        let mut small = TaskGraph::new("tiny");
        small
            .add_task(
                "only",
                "F",
                us(100.0),
                vec![HwImpl::new(Clbs::new(40), us(10.0))],
            )
            .unwrap();
        let err = explore_parallel(
            &small,
            &arch,
            &ParallelOptions {
                base: ExploreOptions::default(),
                chains: 2,
                threads: 1,
                exchange_every: 0,
                warm_start: Some(WarmStart {
                    mapping: donor.mapping,
                }),
                front_exchange: false,
            },
        );
        assert!(err.is_err(), "8-task mapping accepted for a 1-task app");
    }

    #[test]
    fn chain_seed_is_master_for_chain_zero_and_decorrelated_after() {
        assert_eq!(chain_seed(99, 0), 99);
        assert_ne!(chain_seed(99, 1), chain_seed(99, 2));
        assert_ne!(chain_seed(99, 1), 99);
        // Different masters give different streams for the same chain.
        assert_ne!(chain_seed(1, 3), chain_seed(2, 3));
    }

    #[test]
    fn deadline_penalty_objective_orders_solutions() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(9);
        let m = random_initial(&app, &arch, &mut rng);
        let eval = evaluate(&app, &arch, &m).unwrap();
        let obj = Objective::DeadlinePenalty {
            deadline: Micros::new(1.0), // everything violates
            penalty: 100.0,
            makespan_weight: 1.0,
        };
        let strict = obj.cost_of(&eval.summary());
        let plain = Objective::MinimizeMakespan.cost_of(&eval.summary());
        assert!(strict > plain);
    }

    #[test]
    fn weighted_and_lexicographic_objectives_validate() {
        assert!(Objective::weighted(1.0, 0.0, 0.0).is_ok());
        assert!(Objective::weighted(0.0, 0.0, 0.0).is_err());
        assert!(Objective::weighted(-1.0, 1.0, 0.0).is_err());
        assert!(Objective::weighted(f64::NAN, 1.0, 0.0).is_err());
        assert!(Objective::lexicographic(&[ObjectiveKey::Makespan]).is_ok());
        assert!(Objective::lexicographic(&[]).is_err());
        assert!(Objective::lexicographic(&[ObjectiveKey::ClbArea, ObjectiveKey::ClbArea]).is_err());
    }

    #[test]
    fn explorer_records_a_front_and_its_best_is_represented() {
        let (app, arch) = fixture();
        let out = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 2_000,
                warmup_iterations: 400,
                seed: 7,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let front = out.front();
        assert!(!front.is_empty());
        // No member dominates another.
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "front member {a:?} dominates {b:?}");
                }
            }
        }
        // The best (minimum-makespan) solution is on the front.
        let best_mk = out.run.best_objectives.makespan;
        let front_min = front
            .iter()
            .map(|v| v.makespan)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(front_min.to_bits(), best_mk.to_bits());
    }

    #[test]
    fn weighted_objective_changes_the_walk_but_keeps_the_front_valid() {
        let (app, arch) = fixture();
        let base = ExploreOptions {
            max_iterations: 2_000,
            warmup_iterations: 400,
            seed: 13,
            ..ExploreOptions::default()
        };
        let area_heavy = ExploreOptions {
            objective: Objective::weighted(1.0, 50.0, 1.0).unwrap(),
            ..base.clone()
        };
        let plain = explore(&app, &arch, &base).unwrap();
        let weighted = explore(&app, &arch, &area_heavy).unwrap();
        // The weighted run minimizes its own scalarization at least as
        // well as the makespan-only run's solution scores on it.
        let z = area_heavy.objective;
        let weighted_score = z.cost_of(&weighted.evaluation.summary());
        assert!(weighted_score.is_finite());
        // Both runs produce valid mappings.
        plain.mapping.validate(&app, &arch).unwrap();
        weighted.mapping.validate(&app, &arch).unwrap();
    }

    #[test]
    fn lexicographic_objective_walks_on_the_primary_axis() {
        let (app, arch) = fixture();
        let opts = ExploreOptions {
            max_iterations: 1_500,
            warmup_iterations: 300,
            seed: 5,
            objective: Objective::lexicographic(&[ObjectiveKey::Makespan, ObjectiveKey::ClbArea])
                .unwrap(),
            ..ExploreOptions::default()
        };
        let out = explore(&app, &arch, &opts).unwrap();
        out.mapping.validate(&app, &arch).unwrap();
        // The scalar statistics track the primary axis (makespan).
        assert_eq!(
            out.run.best_cost.to_bits(),
            out.run.best_objectives.makespan.to_bits()
        );
        // The front's lexicographic minimum is well-defined.
        let Objective::Lexicographic { order } = opts.objective else {
            unreachable!()
        };
        let min = lexi_min(out.front(), &order).expect("non-empty front");
        assert!(min.makespan <= out.run.best_objectives.makespan);
    }
}
