//! The design-space explorer: the paper's tool, end to end.
//!
//! [`MappingProblem`] adapts the mapping problem to the
//! [`rdse_anneal::Problem`] contract (move classes: the §4.2 pair moves
//! and the §5 implementation-selection moves); [`explore`] wires it to
//! the Lam adaptive schedule with the warm-up phase of Fig. 2 and
//! returns the best mapping found together with run statistics.

use crate::error::MappingError;
use crate::eval::{evaluate, Evaluation};
use crate::init::random_initial;
use crate::moves::{propose_impl_move, propose_pair_move};
use crate::solution::Mapping;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rdse_anneal::{anneal, LamSchedule, Problem, RunOptions, RunResult};
use rdse_model::units::Micros;
use rdse_model::{Architecture, TaskGraph};

/// What the annealer minimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize the execution time (the paper's experiments: the
    /// architecture is fixed, "the criterion to be optimized becomes
    /// here the execution time").
    MinimizeMakespan,
    /// Penalized makespan: minimize
    /// `max(0, makespan − deadline) · penalty + makespan_weight · makespan`.
    /// With a large penalty this searches for any solution meeting the
    /// real-time constraint, then keeps improving below it.
    DeadlinePenalty {
        /// The real-time constraint (40 ms per image in the benchmark).
        deadline: Micros,
        /// Cost per microsecond of deadline violation.
        penalty: f64,
        /// Weight of the makespan below the deadline.
        makespan_weight: f64,
    },
}

impl Objective {
    /// Scalar cost of an evaluation under this objective (µs scale).
    pub fn cost(&self, eval: &Evaluation) -> f64 {
        match *self {
            Objective::MinimizeMakespan => eval.makespan.value(),
            Objective::DeadlinePenalty {
                deadline,
                penalty,
                makespan_weight,
            } => {
                let excess = (eval.makespan.value() - deadline.value()).max(0.0);
                excess * penalty + eval.makespan.value() * makespan_weight
            }
        }
    }
}

/// The mapping problem in [`rdse_anneal::Problem`] form.
///
/// Move class 0 draws the paper's `(vs, vd)` pair moves (m1/m2); class
/// 1 draws implementation-selection moves (m5).
#[derive(Debug, Clone)]
pub struct MappingProblem<'a> {
    app: &'a TaskGraph,
    arch: &'a Architecture,
    mapping: Mapping,
    current: Evaluation,
    objective: Objective,
}

impl<'a> MappingProblem<'a> {
    /// Wraps an existing feasible mapping.
    ///
    /// # Errors
    ///
    /// Returns the evaluation error if `mapping` is infeasible.
    pub fn new(
        app: &'a TaskGraph,
        arch: &'a Architecture,
        mapping: Mapping,
        objective: Objective,
    ) -> Result<Self, MappingError> {
        mapping.validate(app, arch)?;
        let current = evaluate(app, arch, &mapping)?;
        Ok(MappingProblem {
            app,
            arch,
            mapping,
            current,
            objective,
        })
    }

    /// The current mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The current evaluation.
    pub fn evaluation(&self) -> &Evaluation {
        &self.current
    }

    /// Consumes the problem, returning mapping and evaluation.
    pub fn into_parts(self) -> (Mapping, Evaluation) {
        (self.mapping, self.current)
    }
}

impl Problem for MappingProblem<'_> {
    type Move = (Mapping, Evaluation);
    type Snapshot = (Mapping, Evaluation);

    fn cost(&self) -> f64 {
        self.objective.cost(&self.current)
    }

    fn n_move_classes(&self) -> usize {
        2
    }

    fn try_move(&mut self, rng: &mut dyn RngCore, class: usize) -> Option<(Self::Move, f64)> {
        let prev = (self.mapping.clone(), self.current.clone());
        let outcome = match class {
            0 => propose_pair_move(self.app, self.arch, &mut self.mapping, rng),
            _ => propose_impl_move(self.app, self.arch, &mut self.mapping, rng),
        };
        if outcome.is_none() {
            // Proposal functions leave the mapping unchanged on None;
            // restoring from the snapshot is belt-and-braces in case a
            // future move kind weakens that contract.
            self.mapping = prev.0;
            self.current = prev.1;
            return None;
        }
        match evaluate(self.app, self.arch, &self.mapping) {
            Ok(eval) => {
                self.current = eval;
                let cost = self.cost();
                Some((prev, cost))
            }
            Err(_) => {
                // Cycle or capacity: infeasible move, roll back (§4.3).
                self.mapping = prev.0;
                self.current = prev.1;
                None
            }
        }
    }

    fn undo(&mut self, mv: Self::Move) {
        self.mapping = mv.0;
        self.current = mv.1;
    }

    fn snapshot(&self) -> Self::Snapshot {
        (self.mapping.clone(), self.current.clone())
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) {
        self.mapping = snapshot.0.clone();
        self.current = snapshot.1.clone();
    }

    fn observables(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("makespan_ms", self.current.makespan.as_millis()),
            ("n_contexts", self.current.n_contexts as f64),
            (
                "initial_reconfig_ms",
                self.current.breakdown.initial_reconfig.as_millis(),
            ),
            (
                "dynamic_reconfig_ms",
                self.current.breakdown.dynamic_reconfig.as_millis(),
            ),
            ("n_hw_tasks", self.current.n_hw_tasks as f64),
        ]
    }
}

/// Options of a full exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Total iteration budget (the paper's Fig. 2 run uses 5 000).
    pub max_iterations: u64,
    /// Infinite-temperature warm-up iterations (1 200 in Fig. 2).
    pub warmup_iterations: u64,
    /// Lam quality factor λ (smaller = slower cooling = better result).
    pub lambda: f64,
    /// RNG seed (controls both the initial solution and the walk).
    pub seed: u64,
    /// Trace sampling period (0 = no trace).
    pub trace_every: u64,
    /// Objective to minimize.
    pub objective: Objective,
    /// Use the adaptive move-class controller.
    pub adaptive_moves: bool,
    /// Stop early at this makespan-cost (µs), if given.
    pub target_cost: Option<f64>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_iterations: 5_000,
            warmup_iterations: 1_200,
            lambda: 0.5,
            seed: 0,
            trace_every: 0,
            objective: Objective::MinimizeMakespan,
            adaptive_moves: true,
            target_cost: None,
        }
    }
}

/// Result of [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Its evaluation.
    pub evaluation: Evaluation,
    /// Annealer statistics and trace.
    pub run: RunResult,
}

/// Runs the complete tool of the paper on `app` × `arch`: random
/// initial solution, warm-up, Lam-adaptive annealing over the m1/m2/m5
/// moves, best solution returned.
///
/// # Errors
///
/// Returns [`MappingError`] if no feasible initial solution can be
/// constructed (e.g. the models are inconsistent).
///
/// See the [crate-level example](crate) for usage.
pub fn explore(
    app: &TaskGraph,
    arch: &Architecture,
    opts: &ExploreOptions,
) -> Result<ExploreOutcome, MappingError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let initial = random_initial(app, arch, &mut rng);
    let mut problem = MappingProblem::new(app, arch, initial, opts.objective)?;
    let mut schedule = LamSchedule::new(opts.lambda);
    let run = anneal(
        &mut problem,
        &mut schedule,
        &RunOptions {
            max_iterations: opts.max_iterations,
            warmup_iterations: opts.warmup_iterations,
            seed: opts.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            trace_every: opts.trace_every,
            adaptive_moves: opts.adaptive_moves,
            target_cost: opts.target_cost,
            ..RunOptions::default()
        },
    );
    let (mapping, evaluation) = problem.into_parts();
    Ok(ExploreOutcome {
        mapping,
        evaluation,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rdse_model::units::{Bytes, Clbs};
    use rdse_model::HwImpl;

    fn us(v: f64) -> Micros {
        Micros::new(v)
    }

    /// A pipeline where hardware acceleration pays off massively.
    fn fixture() -> (TaskGraph, Architecture) {
        let mut app = TaskGraph::new("pipe");
        let mut prev = None;
        for i in 0..8 {
            let t = app
                .add_task(
                    format!("t{i}"),
                    "F",
                    us(1000.0),
                    vec![
                        HwImpl::new(Clbs::new(80), us(50.0)),
                        HwImpl::new(Clbs::new(160), us(25.0)),
                    ],
                )
                .unwrap();
            if let Some(p) = prev {
                app.add_data_edge(p, t, Bytes::new(500)).unwrap();
            }
            prev = Some(t);
        }
        let arch = Architecture::builder("soc")
            .processor("cpu", 1.0)
            .drlc("fpga", Clbs::new(400), us(0.5), 1.0)
            .bus_rate(100.0)
            .build()
            .unwrap();
        (app, arch)
    }

    #[test]
    fn explore_beats_all_software() {
        let (app, arch) = fixture();
        let all_sw = app.total_sw_time();
        let out = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 6_000,
                warmup_iterations: 1_000,
                seed: 42,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(
            out.evaluation.makespan < all_sw * 0.5,
            "no speedup: {} vs {}",
            out.evaluation.makespan,
            all_sw
        );
        out.mapping.validate(&app, &arch).unwrap();
        // Returned evaluation matches a fresh evaluation of the mapping.
        let fresh = evaluate(&app, &arch, &out.mapping).unwrap();
        assert_eq!(fresh.makespan, out.evaluation.makespan);
    }

    #[test]
    fn explore_is_deterministic_per_seed() {
        let (app, arch) = fixture();
        let opts = ExploreOptions {
            max_iterations: 2_000,
            warmup_iterations: 400,
            seed: 7,
            ..ExploreOptions::default()
        };
        let a = explore(&app, &arch, &opts).unwrap();
        let b = explore(&app, &arch, &opts).unwrap();
        assert_eq!(a.evaluation.makespan, b.evaluation.makespan);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn trace_records_observables() {
        let (app, arch) = fixture();
        let out = explore(
            &app,
            &arch,
            &ExploreOptions {
                max_iterations: 1_000,
                warmup_iterations: 200,
                trace_every: 100,
                seed: 3,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.run.trace.len(), 10);
        let names: Vec<&str> = out.run.trace[0]
            .observables
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert!(names.contains(&"makespan_ms"));
        assert!(names.contains(&"n_contexts"));
    }

    #[test]
    fn undo_restores_cost_exactly() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(5);
        let initial = random_initial(&app, &arch, &mut rng);
        let mut p = MappingProblem::new(&app, &arch, initial, Objective::MinimizeMakespan).unwrap();
        for _ in 0..300 {
            let before_cost = p.cost();
            let before_map = p.mapping().clone();
            let class = rng.random_range(0..2);
            if let Some((mv, _)) = p.try_move(&mut rng, class) {
                p.undo(mv);
                assert_eq!(p.cost(), before_cost);
                assert_eq!(p.mapping(), &before_map);
            }
        }
    }

    #[test]
    fn deadline_penalty_objective_orders_solutions() {
        let (app, arch) = fixture();
        let mut rng = StdRng::seed_from_u64(9);
        let m = random_initial(&app, &arch, &mut rng);
        let eval = evaluate(&app, &arch, &m).unwrap();
        let obj = Objective::DeadlinePenalty {
            deadline: Micros::new(1.0), // everything violates
            penalty: 100.0,
            makespan_weight: 1.0,
        };
        let strict = obj.cost(&eval);
        let plain = Objective::MinimizeMakespan.cost(&eval);
        assert!(strict > plain);
    }
}
