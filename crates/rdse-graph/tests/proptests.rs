//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rdse_graph::{
    count_linear_extensions, dag_longest_path, topo_sort, DenseDag, Digraph,
    IncrementalLongestPath, MaxPlusClosure, NodeId, TransitiveClosure,
};

/// Strategy: a random DAG over `n` nodes. Edges only go from lower to
/// higher index, which guarantees acyclicity by construction.
fn arb_dag(max_nodes: usize, edge_prob: f64) -> impl Strategy<Value = Digraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let n_pairs = pairs.len();
            (
                Just(n),
                Just(pairs),
                proptest::collection::vec(any::<f64>(), n_pairs),
                proptest::collection::vec(proptest::bool::weighted(edge_prob), n_pairs),
            )
        })
        .prop_map(|(n, pairs, weights, mask)| {
            let mut g = Digraph::new(n);
            for ((&(u, v), w), &keep) in pairs.iter().zip(&weights).zip(&mask) {
                if keep {
                    let w = (w.abs() % 100.0).max(0.0);
                    let w = if w.is_finite() { w } else { 1.0 };
                    g.add_edge(NodeId(u as u32), NodeId(v as u32), w).unwrap();
                }
            }
            g
        })
}

/// Strategy: node count plus an acyclic edge list (low → high index) in
/// a fixed insertion order, for building [`DenseDag`]s and reference
/// [`Digraph`]s from identical input.
fn arb_dense_edges(
    max_nodes: usize,
    edge_prob: f64,
) -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let pairs: Vec<(u32, u32)> = (0..n as u32)
                .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
                .collect();
            let n_pairs = pairs.len();
            (
                Just(n),
                Just(pairs),
                proptest::collection::vec(0.0f64..100.0, n_pairs),
                proptest::collection::vec(proptest::bool::weighted(edge_prob), n_pairs),
            )
        })
        .prop_map(|(n, pairs, weights, mask)| {
            let edges = pairs
                .iter()
                .zip(&weights)
                .zip(&mask)
                .filter(|&(_, &keep)| keep)
                .map(|((&(u, v), &w), _)| (u, v, w))
                .collect();
            (n, edges)
        })
}

/// One weight delta: on-node flag, position selector (reduced modulo
/// the node/edge count at use site), new weight.
type WeightDelta = (bool, usize, f64);

/// Strategy: a walk of 1–9 weight deltas.
fn arb_delta_walk() -> impl Strategy<Value = Vec<WeightDelta>> {
    proptest::collection::vec((any::<bool>(), 0usize..1 << 20, 0.0f64..100.0), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topo_sort_respects_edges(g in arb_dag(24, 0.3)) {
        let order = topo_sort(&g).unwrap();
        prop_assert_eq!(order.len(), g.n_nodes());
        let mut pos = vec![0usize; g.n_nodes()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in g.edges() {
            prop_assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn closure_matches_dfs(g in arb_dag(20, 0.25)) {
        let tc = TransitiveClosure::of(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(
                    tc.reaches(u, v),
                    rdse_graph::topo::reaches(&g, u, v),
                    "reachability mismatch {} -> {}", u, v
                );
            }
        }
    }

    #[test]
    fn closure_incremental_insert_equals_recompute(
        g in arb_dag(16, 0.2),
        extra in proptest::collection::vec((0usize..16, 0usize..16), 0..8)
    ) {
        let mut g = g;
        let mut tc = TransitiveClosure::of(&g).unwrap();
        for (a, b) in extra {
            let n = g.n_nodes();
            let (u, v) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if u == v || tc.would_create_cycle(u, v) {
                continue;
            }
            g.add_edge(u, v, 0.0).unwrap();
            tc.insert_edge(u, v);
        }
        let fresh = TransitiveClosure::of(&g).unwrap();
        prop_assert_eq!(tc, fresh);
    }

    #[test]
    fn apsp_incremental_insert_equals_recompute(
        g in arb_dag(14, 0.2),
        extra in proptest::collection::vec((0usize..14, 0usize..14, 0.0f64..50.0), 0..6)
    ) {
        let mut g = g;
        let mut d = MaxPlusClosure::of(&g).unwrap();
        let tc = || TransitiveClosure::of(&g);
        let mut closure = tc().unwrap();
        for (a, b, w) in extra {
            let n = g.n_nodes();
            let (u, v) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if u == v || closure.would_create_cycle(u, v) {
                continue;
            }
            g.add_edge(u, v, w).unwrap();
            closure.insert_edge(u, v);
            d.insert_edge(u, v, w);
            let fresh = MaxPlusClosure::of(&g).unwrap();
            for x in g.nodes() {
                for y in g.nodes() {
                    let a = d.dist(x, y);
                    let b = fresh.dist(x, y);
                    prop_assert!(
                        (a == b) || (a - b).abs() < 1e-9,
                        "dist({}, {}) = {} vs fresh {}", x, y, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn longest_path_dominates_node_weights(g in arb_dag(20, 0.3)) {
        let w: Vec<f64> = (0..g.n_nodes()).map(|i| (i % 7) as f64 + 1.0).collect();
        let lp = dag_longest_path(&g, &w).unwrap();
        for v in g.nodes() {
            prop_assert!(lp.completion(v) >= w[v.index()]);
        }
        let max_w = w.iter().cloned().fold(0.0, f64::max);
        prop_assert!(lp.makespan() >= max_w);
        // Critical path weights (plus edge weights) sum to the makespan.
        let path = lp.critical_path();
        let mut total = 0.0;
        for (i, v) in path.iter().enumerate() {
            total += w[v.index()];
            if i + 1 < path.len() {
                total += g.edge_weight(*v, path[i + 1]).unwrap_or(0.0);
            }
        }
        prop_assert!((total - lp.makespan()).abs() < 1e-9);
    }

    #[test]
    fn longest_path_monotone_under_edge_insertion(g in arb_dag(16, 0.25)) {
        let w: Vec<f64> = vec![1.0; g.n_nodes()];
        let lp0 = dag_longest_path(&g, &w).unwrap().makespan();
        let mut g2 = g.clone();
        let tc = TransitiveClosure::of(&g).unwrap();
        // Insert the first safe edge we find.
        'outer: for u in g.nodes() {
            for v in g.nodes() {
                if u != v && !tc.would_create_cycle(u, v) && !g.has_edge(u, v) {
                    g2.add_edge(u, v, 2.0).unwrap();
                    break 'outer;
                }
            }
        }
        let lp1 = dag_longest_path(&g2, &w).unwrap().makespan();
        prop_assert!(lp1 >= lp0);
    }

    #[test]
    fn linext_positive_and_bounded_by_factorial(g in arb_dag(8, 0.3)) {
        let count = count_linear_extensions(&g, None).unwrap();
        prop_assert!(count >= 1);
        let fact: u128 = (1..=g.n_nodes() as u128).product();
        prop_assert!(count <= fact);
        // A graph with no edges must reach the factorial exactly.
        if g.n_edges() == 0 {
            prop_assert_eq!(count, fact);
        }
    }
}

// Note: the proptest macro takes plain identifiers on the left of
// `in`, so composite values are destructured inside the body.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_longest_path_matches_digraph(input in arb_dense_edges(20, 0.3)) {
        let (n, edges) = input;
        let node_w: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + 0.5).collect();
        let dense = DenseDag::from_edges(n, &edges, &node_w).unwrap();
        let mut sparse = Digraph::new(n);
        for &(u, v, w) in &edges {
            sparse.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
        let a = dense.longest_path().unwrap();
        let b = dag_longest_path(&sparse, &node_w).unwrap();
        prop_assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
        for v in 0..n as u32 {
            prop_assert_eq!(
                a.completion(NodeId(v)).to_bits(),
                b.completion(NodeId(v)).to_bits()
            );
        }
        prop_assert_eq!(a.critical_path(), b.critical_path());
        // The incremental structure's full pass lands on the same labels.
        let mut lp = IncrementalLongestPath::new(n);
        lp.full(&dense).unwrap();
        for v in 0..n as u32 {
            prop_assert_eq!(lp.label(v).to_bits(), a.completion(NodeId(v)).to_bits());
        }
    }

    #[test]
    fn bounded_repair_equals_full_recompute(
        input in arb_dense_edges(18, 0.3),
        threshold in 0usize..=18, // spans both boundaries: always-fall-back and never-fall-back
        deltas in arb_delta_walk()
    ) {
        let (n, edges) = input;
        let node_w: Vec<f64> = (0..n).map(|i| (i % 5) as f64 + 0.5).collect();
        let mut g = DenseDag::from_edges(n, &edges, &node_w).unwrap();
        let mut lp = IncrementalLongestPath::new(n);
        lp.set_threshold(threshold);
        lp.full(&g).unwrap();
        // Change-driven sibling: weight-only deltas keep the DenseDag
        // acyclic, so `repair_dirty` must land on the same fixpoint.
        let mut lpd = IncrementalLongestPath::new(n);
        lpd.set_threshold(threshold);
        lpd.full(&g).unwrap();
        for (on_node, idx, w) in deltas {
            let mut seeds = Vec::new();
            if on_node || g.n_edges() == 0 {
                let v = (idx % n) as u32;
                g.set_node_weight(v, w);
                seeds.push(v);
            } else {
                let eid = (idx % g.n_edges()) as u32;
                g.set_edge_weight(eid, w);
                seeds.push(g.edge_endpoints(eid).1);
            }
            lp.repair(&g, &seeds).unwrap();
            lpd.repair_dirty(&g, &seeds).unwrap();
            let mut fresh = IncrementalLongestPath::new(n);
            fresh.full(&g).unwrap();
            let got: Vec<u64> = lp.labels().iter().map(|c| c.to_bits()).collect();
            let got_dirty: Vec<u64> = lpd.labels().iter().map(|c| c.to_bits()).collect();
            let want: Vec<u64> = fresh.labels().iter().map(|c| c.to_bits()).collect();
            prop_assert_eq!(got, want.clone());
            prop_assert_eq!(got_dirty, want);
            prop_assert_eq!(lp.makespan().to_bits(), fresh.makespan().to_bits());
            prop_assert_eq!(lpd.makespan().to_bits(), fresh.makespan().to_bits());
            prop_assert_eq!(lp.critical_path(), fresh.critical_path());
            prop_assert_eq!(lpd.critical_path(), fresh.critical_path());
        }
    }

    #[test]
    fn repair_rollback_restores_labels(
        input in arb_dense_edges(16, 0.3),
        threshold in 0usize..=16,
        delta in arb_delta_walk()
    ) {
        let (n, edges) = input;
        let (on_node, idx, w) = delta[0];
        let node_w: Vec<f64> = (0..n).map(|i| (i % 4) as f64 + 1.0).collect();
        let mut g = DenseDag::from_edges(n, &edges, &node_w).unwrap();
        let mut lp = IncrementalLongestPath::new(n);
        lp.set_threshold(threshold);
        lp.full(&g).unwrap();
        let before: Vec<u64> = lp.labels().iter().map(|c| c.to_bits()).collect();
        let before_path = lp.critical_path();
        let seed = if on_node || g.n_edges() == 0 {
            let v = (idx % n) as u32;
            g.set_node_weight(v, w);
            v
        } else {
            let eid = (idx % g.n_edges()) as u32;
            g.set_edge_weight(eid, w);
            g.edge_endpoints(eid).1
        };
        lp.repair(&g, &[seed]).unwrap();
        lp.rollback();
        let after: Vec<u64> = lp.labels().iter().map(|c| c.to_bits()).collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(before_path, lp.critical_path());
    }
}
