//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rdse_graph::{
    count_linear_extensions, dag_longest_path, topo_sort, Digraph, MaxPlusClosure, NodeId,
    TransitiveClosure,
};

/// Strategy: a random DAG over `n` nodes. Edges only go from lower to
/// higher index, which guarantees acyclicity by construction.
fn arb_dag(max_nodes: usize, edge_prob: f64) -> impl Strategy<Value = Digraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
                .collect();
            let n_pairs = pairs.len();
            (
                Just(n),
                Just(pairs),
                proptest::collection::vec(any::<f64>(), n_pairs),
                proptest::collection::vec(proptest::bool::weighted(edge_prob), n_pairs),
            )
        })
        .prop_map(|(n, pairs, weights, mask)| {
            let mut g = Digraph::new(n);
            for ((&(u, v), w), &keep) in pairs.iter().zip(&weights).zip(&mask) {
                if keep {
                    let w = (w.abs() % 100.0).max(0.0);
                    let w = if w.is_finite() { w } else { 1.0 };
                    g.add_edge(NodeId(u as u32), NodeId(v as u32), w).unwrap();
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topo_sort_respects_edges(g in arb_dag(24, 0.3)) {
        let order = topo_sort(&g).unwrap();
        prop_assert_eq!(order.len(), g.n_nodes());
        let mut pos = vec![0usize; g.n_nodes()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in g.edges() {
            prop_assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn closure_matches_dfs(g in arb_dag(20, 0.25)) {
        let tc = TransitiveClosure::of(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(
                    tc.reaches(u, v),
                    rdse_graph::topo::reaches(&g, u, v),
                    "reachability mismatch {} -> {}", u, v
                );
            }
        }
    }

    #[test]
    fn closure_incremental_insert_equals_recompute(
        g in arb_dag(16, 0.2),
        extra in proptest::collection::vec((0usize..16, 0usize..16), 0..8)
    ) {
        let mut g = g;
        let mut tc = TransitiveClosure::of(&g).unwrap();
        for (a, b) in extra {
            let n = g.n_nodes();
            let (u, v) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if u == v || tc.would_create_cycle(u, v) {
                continue;
            }
            g.add_edge(u, v, 0.0).unwrap();
            tc.insert_edge(u, v);
        }
        let fresh = TransitiveClosure::of(&g).unwrap();
        prop_assert_eq!(tc, fresh);
    }

    #[test]
    fn apsp_incremental_insert_equals_recompute(
        g in arb_dag(14, 0.2),
        extra in proptest::collection::vec((0usize..14, 0usize..14, 0.0f64..50.0), 0..6)
    ) {
        let mut g = g;
        let mut d = MaxPlusClosure::of(&g).unwrap();
        let tc = || TransitiveClosure::of(&g);
        let mut closure = tc().unwrap();
        for (a, b, w) in extra {
            let n = g.n_nodes();
            let (u, v) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if u == v || closure.would_create_cycle(u, v) {
                continue;
            }
            g.add_edge(u, v, w).unwrap();
            closure.insert_edge(u, v);
            d.insert_edge(u, v, w);
            let fresh = MaxPlusClosure::of(&g).unwrap();
            for x in g.nodes() {
                for y in g.nodes() {
                    let a = d.dist(x, y);
                    let b = fresh.dist(x, y);
                    prop_assert!(
                        (a == b) || (a - b).abs() < 1e-9,
                        "dist({}, {}) = {} vs fresh {}", x, y, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn longest_path_dominates_node_weights(g in arb_dag(20, 0.3)) {
        let w: Vec<f64> = (0..g.n_nodes()).map(|i| (i % 7) as f64 + 1.0).collect();
        let lp = dag_longest_path(&g, &w).unwrap();
        for v in g.nodes() {
            prop_assert!(lp.completion(v) >= w[v.index()]);
        }
        let max_w = w.iter().cloned().fold(0.0, f64::max);
        prop_assert!(lp.makespan() >= max_w);
        // Critical path weights (plus edge weights) sum to the makespan.
        let path = lp.critical_path();
        let mut total = 0.0;
        for (i, v) in path.iter().enumerate() {
            total += w[v.index()];
            if i + 1 < path.len() {
                total += g.edge_weight(*v, path[i + 1]).unwrap_or(0.0);
            }
        }
        prop_assert!((total - lp.makespan()).abs() < 1e-9);
    }

    #[test]
    fn longest_path_monotone_under_edge_insertion(g in arb_dag(16, 0.25)) {
        let w: Vec<f64> = vec![1.0; g.n_nodes()];
        let lp0 = dag_longest_path(&g, &w).unwrap().makespan();
        let mut g2 = g.clone();
        let tc = TransitiveClosure::of(&g).unwrap();
        // Insert the first safe edge we find.
        'outer: for u in g.nodes() {
            for v in g.nodes() {
                if u != v && !tc.would_create_cycle(u, v) && !g.has_edge(u, v) {
                    g2.add_edge(u, v, 2.0).unwrap();
                    break 'outer;
                }
            }
        }
        let lp1 = dag_longest_path(&g2, &w).unwrap().makespan();
        prop_assert!(lp1 >= lp0);
    }

    #[test]
    fn linext_positive_and_bounded_by_factorial(g in arb_dag(8, 0.3)) {
        let count = count_linear_extensions(&g, None).unwrap();
        prop_assert!(count >= 1);
        let fact: u128 = (1..=g.n_nodes() as u128).product();
        prop_assert!(count <= fact);
        // A graph with no edges must reach the factorial exactly.
        if g.n_edges() == 0 {
            prop_assert_eq!(count, fact);
        }
    }
}
