//! Fixed-size bitset rows and matrices.
//!
//! The transitive-closure matrix of the paper (§4.3) is stored as one
//! [`BitRow`] per node; bulk operations (row OR) run 64 bits at a time.
//! [`FixedBitSet`] is the hot-path variant used by the bounded-repair
//! longest path: it trades generality for an `insert`-only API whose
//! `clear` is O(touched words), so a tiny repair cone never pays for the
//! size of the whole graph.

use serde::{Deserialize, Serialize};
use std::fmt;

const BITS: usize = u64::BITS as usize;

/// An insert-only bitset with O(touched-words) clearing.
///
/// Unlike [`BitRow`], bits can only be set (never individually cleared),
/// which lets the set keep a list of dirty words: [`FixedBitSet::clear`]
/// zeroes only the words that were written since the last clear. Repair
/// cones in the incremental longest path are typically a handful of
/// nodes out of hundreds, so this keeps per-move cost proportional to
/// the cone, not the graph.
///
/// # Examples
///
/// ```
/// use rdse_graph::FixedBitSet;
///
/// let mut set = FixedBitSet::new(100);
/// assert!(set.insert(7));
/// assert!(!set.insert(7)); // already present
/// assert!(set.contains(7));
/// set.clear();
/// assert!(!set.contains(7));
/// ```
#[derive(Debug, Clone)]
pub struct FixedBitSet {
    len: usize,
    words: Vec<u64>,
    dirty: Vec<u32>,
}

impl FixedBitSet {
    /// Creates a set over the universe `0..len`, initially empty.
    pub fn new(len: usize) -> Self {
        FixedBitSet {
            len,
            words: vec![0; len.div_ceil(BITS)],
            dirty: Vec::new(),
        }
    }

    /// Size of the universe (`0..len`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the universe has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `i`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let wi = i / BITS;
        let mask = 1u64 << (i % BITS);
        let word = &mut self.words[wi];
        if *word & mask != 0 {
            return false;
        }
        if *word == 0 {
            self.dirty.push(wi as u32);
        }
        *word |= mask;
        true
    }

    /// Removes `i`, returning `true` if it was present.
    ///
    /// The word stays on the dirty list (a later [`clear`](Self::clear)
    /// re-zeroes it harmlessly), so interleaved insert/remove cycles
    /// should still end with a `clear` to reset the dirty tracking.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let wi = i / BITS;
        let mask = 1u64 << (i % BITS);
        let word = &mut self.words[wi];
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        true
    }

    /// Returns `true` if `i` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        self.words[i / BITS] >> (i % BITS) & 1 == 1
    }

    /// Empties the set in time proportional to the words touched since
    /// the previous clear.
    pub fn clear(&mut self) {
        for &wi in &self.dirty {
            self.words[wi as usize] = 0;
        }
        self.dirty.clear();
    }
}

/// A fixed-length row of bits.
///
/// # Examples
///
/// ```
/// use rdse_graph::BitRow;
///
/// let mut row = BitRow::new(100);
/// row.set(3, true);
/// row.set(99, true);
/// assert!(row.get(3));
/// assert_eq!(row.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitRow {
    len: usize,
    words: Vec<u64>,
}

impl BitRow {
    /// Creates a row of `len` zero bits.
    pub fn new(len: usize) -> Self {
        BitRow {
            len,
            words: vec![0; len.div_ceil(BITS)],
        }
    }

    /// Number of bits in the row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the row has zero bits of capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        self.words[i / BITS] >> (i % BITS) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let word = &mut self.words[i / BITS];
        let mask = 1u64 << (i % BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self |= other`; both rows must have equal length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn union_with(&mut self, other: &BitRow) {
        assert_eq!(self.len, other.len, "bit row length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Returns `true` if `self & other` has any bit set.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersects(&self, other: &BitRow) -> bool {
        assert_eq!(self.len, other.len, "bit row length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * BITS + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow[")?;
        let ones: Vec<usize> = self.iter_ones().collect();
        for (i, b) in ones.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "]")
    }
}

/// A square bit matrix, stored row-major as [`BitRow`]s.
///
/// # Examples
///
/// ```
/// use rdse_graph::BitMatrix;
///
/// let mut m = BitMatrix::new(4);
/// m.set(1, 2, true);
/// assert!(m.get(1, 2));
/// assert!(!m.get(2, 1));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMatrix {
    n: usize,
    rows: Vec<BitRow>,
}

impl BitMatrix {
    /// Creates an `n × n` matrix of zero bits.
    pub fn new(n: usize) -> Self {
        BitMatrix {
            n,
            rows: vec![BitRow::new(n); n],
        }
    }

    /// Side length of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i].get(j)
    }

    /// Writes entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        self.rows[i].set(j, value);
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &BitRow {
        &self.rows[i]
    }

    /// ORs row `src` into row `dst` (`rows[dst] |= rows[src]`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn union_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.n && dst < self.n, "row index out of bounds");
        if src == dst {
            return;
        }
        // Split borrows: take the source row out temporarily.
        let src_row = std::mem::replace(&mut self.rows[src], BitRow::new(0));
        self.rows[dst].union_with(&src_row);
        self.rows[src] = src_row;
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.n, self.n)?;
        for (i, row) in self.rows.iter().enumerate() {
            writeln!(f, "  {i}: {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_row_is_zero() {
        let row = BitRow::new(130);
        assert_eq!(row.len(), 130);
        assert_eq!(row.count_ones(), 0);
        assert!((0..130).all(|i| !row.get(i)));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut row = BitRow::new(70);
        row.set(0, true);
        row.set(63, true);
        row.set(64, true);
        row.set(69, true);
        assert!(row.get(0) && row.get(63) && row.get(64) && row.get(69));
        assert_eq!(row.count_ones(), 4);
        row.set(63, false);
        assert!(!row.get(63));
        assert_eq!(row.count_ones(), 3);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut row = BitRow::new(200);
        for i in [3usize, 64, 65, 199] {
            row.set(i, true);
        }
        let ones: Vec<usize> = row.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 199]);
    }

    #[test]
    fn union_and_intersect() {
        let mut a = BitRow::new(80);
        let mut b = BitRow::new(80);
        a.set(5, true);
        b.set(70, true);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.get(70));
        assert!(a.intersects(&b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let row = BitRow::new(10);
        row.get(10);
    }

    #[test]
    fn matrix_union_row_into() {
        let mut m = BitMatrix::new(5);
        m.set(0, 1, true);
        m.set(2, 3, true);
        m.union_row_into(2, 0);
        assert!(m.get(0, 1));
        assert!(m.get(0, 3));
        assert!(m.get(2, 3));
        // Self-union is a no-op.
        m.union_row_into(0, 0);
        assert!(m.get(0, 1) && m.get(0, 3));
    }

    #[test]
    fn matrix_clear() {
        let mut m = BitMatrix::new(3);
        m.set(1, 1, true);
        m.clear();
        assert!(!m.get(1, 1));
    }

    #[test]
    fn empty_row() {
        let row = BitRow::new(0);
        assert!(row.is_empty());
        assert_eq!(row.iter_ones().count(), 0);
    }

    #[test]
    fn fixed_bitset_insert_contains_clear() {
        let mut set = FixedBitSet::new(130);
        assert_eq!(set.len(), 130);
        assert!(set.insert(0));
        assert!(set.insert(63));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64));
        assert!(set.contains(0) && set.contains(63) && set.contains(64) && set.contains(129));
        assert!(!set.contains(1) && !set.contains(128));
        set.clear();
        assert!((0..130).all(|i| !set.contains(i)));
        // Re-insert after clear works (dirty list reset correctly).
        assert!(set.insert(64));
        assert!(set.contains(64));
        assert!(!set.contains(0));
    }

    #[test]
    fn fixed_bitset_empty_universe() {
        let mut set = FixedBitSet::new(0);
        assert!(set.is_empty());
        set.clear();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn fixed_bitset_out_of_bounds_panics() {
        let mut set = FixedBitSet::new(8);
        set.insert(8);
    }
}
