//! A dense directed graph with weighted, removable edges.
//!
//! The search graph *G′* of the paper is a fixed set of task nodes whose
//! edge set is edited on every annealing move (sequentialization edges
//! come and go), so [`Digraph`] optimizes for a fixed node count and
//! cheap edge insertion/removal. Parallel edges are allowed: the task
//! graph may impose a precedence between two tasks *and* a scheduling
//! edge may join the same pair; longest-path queries see the maximum
//! weight among parallel edges.

use crate::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node in a [`Digraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

/// A borrowed view of one edge, as yielded by [`Digraph::edges`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Tail (source) node.
    pub from: NodeId,
    /// Head (target) node.
    pub to: NodeId,
    /// Edge weight.
    pub weight: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct HalfEdge {
    to: NodeId,
    weight: f64,
}

/// Dense directed graph over nodes `0..n` with weighted edges.
///
/// # Examples
///
/// ```
/// use rdse_graph::{Digraph, NodeId};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// let mut g = Digraph::new(3);
/// g.add_edge(NodeId(0), NodeId(1), 1.5)?;
/// g.add_edge(NodeId(0), NodeId(2), 0.0)?;
/// assert_eq!(g.n_edges(), 2);
/// assert!(g.has_edge(NodeId(0), NodeId(1)));
/// g.remove_edge(NodeId(0), NodeId(1))?;
/// assert!(!g.has_edge(NodeId(0), NodeId(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Digraph {
    succ: Vec<Vec<HalfEdge>>,
    pred: Vec<Vec<NodeId>>,
    n_edges: usize,
}

impl Digraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Digraph {
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            n_edges: 0,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.succ.len()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        NodeId((self.succ.len() - 1) as u32)
    }

    fn check(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() >= self.n_nodes() {
            Err(GraphError::NodeOutOfBounds {
                node,
                n_nodes: self.n_nodes(),
            })
        } else {
            Ok(())
        }
    }

    /// Adds a directed edge `from → to` with the given weight.
    ///
    /// Parallel edges are allowed and are kept as distinct edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] for invalid endpoints and
    /// [`GraphError::SelfLoop`] if `from == to`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) -> Result<(), GraphError> {
        self.check(from)?;
        self.check(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        self.succ[from.index()].push(HalfEdge { to, weight });
        self.pred[to.index()].push(from);
        self.n_edges += 1;
        Ok(())
    }

    /// Removes one edge `from → to` (the most recently added parallel
    /// instance, if several exist).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NoSuchEdge`] if no such edge exists, and
    /// [`GraphError::NodeOutOfBounds`] for invalid endpoints.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        self.check(from)?;
        self.check(to)?;
        let succ = &mut self.succ[from.index()];
        let Some(pos) = succ.iter().rposition(|e| e.to == to) else {
            return Err(GraphError::NoSuchEdge(from, to));
        };
        succ.swap_remove(pos);
        let pred = &mut self.pred[to.index()];
        let ppos = pred
            .iter()
            .rposition(|&p| p == from)
            .expect("pred list out of sync with succ list");
        pred.swap_remove(ppos);
        self.n_edges -= 1;
        Ok(())
    }

    /// Returns `true` if at least one edge `from → to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succ
            .get(from.index())
            .is_some_and(|s| s.iter().any(|e| e.to == to))
    }

    /// Maximum weight among parallel edges `from → to`, if any exist.
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.succ
            .get(from.index())?
            .iter()
            .filter(|e| e.to == to)
            .map(|e| e.weight)
            .fold(None, |acc, w| match acc {
                None => Some(w),
                Some(a) => Some(a.max(w)),
            })
    }

    /// Iterates over the out-edges of `node` as `(target, weight)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.succ[node.index()].iter().map(|e| (e.to, e.weight))
    }

    /// Iterates over the predecessor nodes of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred[node.index()].iter().copied()
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.succ[node.index()].len()
    }

    /// In-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.pred[node.index()].len()
    }

    /// Iterates over every edge in the graph.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.succ.iter().enumerate().flat_map(|(i, edges)| {
            edges.iter().map(move |e| EdgeRef {
                from: NodeId(i as u32),
                to: e.to,
                weight: e.weight,
            })
        })
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes() as u32).map(NodeId)
    }

    /// Nodes with no incoming edges.
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.in_degree(n) == 0)
    }

    /// Nodes with no outgoing edges.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.out_degree(n) == 0)
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Digraph({} nodes, {} edges)",
            self.n_nodes(),
            self.n_edges()
        )?;
        for e in self.edges() {
            writeln!(f, "  {} -> {} [{}]", e.from, e.to, e.weight)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Digraph::new(4);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        g.add_edge(n(1), n(2), 2.0).unwrap();
        g.add_edge(n(1), n(3), 3.0).unwrap();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.out_degree(n(1)), 2);
        assert_eq!(g.in_degree(n(1)), 1);
        assert_eq!(g.edge_weight(n(1), n(2)), Some(2.0));
        assert_eq!(g.edge_weight(n(2), n(1)), None);
        let preds: Vec<NodeId> = g.predecessors(n(3)).collect();
        assert_eq!(preds, vec![n(1)]);
    }

    #[test]
    fn parallel_edges_max_weight() {
        let mut g = Digraph::new(2);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        g.add_edge(n(0), n(1), 5.0).unwrap();
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.edge_weight(n(0), n(1)), Some(5.0));
        g.remove_edge(n(0), n(1)).unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edge_weight(n(0), n(1)), Some(1.0));
    }

    #[test]
    fn remove_missing_edge_errors() {
        let mut g = Digraph::new(2);
        assert_eq!(
            g.remove_edge(n(0), n(1)),
            Err(GraphError::NoSuchEdge(n(0), n(1)))
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Digraph::new(2);
        assert_eq!(g.add_edge(n(1), n(1), 0.0), Err(GraphError::SelfLoop(n(1))));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut g = Digraph::new(2);
        assert!(matches!(
            g.add_edge(n(0), n(7), 0.0),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = Digraph::new(1);
        let v = g.add_node();
        assert_eq!(v, n(1));
        g.add_edge(n(0), v, 1.0).unwrap();
        assert!(g.has_edge(n(0), v));
    }

    #[test]
    fn sources_and_sinks() {
        let mut g = Digraph::new(3);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        let sources: Vec<NodeId> = g.sources().collect();
        let sinks: Vec<NodeId> = g.sinks().collect();
        assert_eq!(sources, vec![n(0), n(2)]);
        assert_eq!(sinks, vec![n(1), n(2)]);
    }

    #[test]
    fn edges_iterator_counts() {
        let mut g = Digraph::new(3);
        g.add_edge(n(0), n(1), 1.0).unwrap();
        g.add_edge(n(0), n(2), 2.0).unwrap();
        g.add_edge(n(1), n(2), 3.0).unwrap();
        assert_eq!(g.edges().count(), 3);
        let total: f64 = g.edges().map(|e| e.weight).sum();
        assert_eq!(total, 6.0);
    }
}
