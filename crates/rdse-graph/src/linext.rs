//! Counting linear extensions — the solution-space sizes of §5.
//!
//! The paper sizes the search space of the 28-task motion-detection
//! benchmark by counting the total orders (linear extensions) of its
//! precedence graph: 1 716 for the first 20 nodes and
//! 3·C(21,7) = 348 840 overall, then multiplies by the number of ways
//! to place context changes. [`count_linear_extensions`] reproduces the
//! counts exactly with a dynamic program over the lattice of order
//! ideals; [`binomial`] and [`parallel_chain_orders`] provide the
//! closed forms used for the combination counts.

use crate::{Digraph, NodeId};
use std::collections::HashMap;

/// Default cap on the number of order ideals the DP may visit.
pub const DEFAULT_IDEAL_CAP: usize = 20_000_000;

/// Counts the linear extensions (topological orders) of a DAG.
///
/// Uses a dynamic program over order ideals represented as `u64`
/// bitmasks, so it supports at most 64 nodes. Returns `None` when the
/// graph has more than 64 nodes, contains a cycle, or the ideal lattice
/// exceeds `ideal_cap` states (the count would be astronomically large
/// anyway). For the chain-parallel graphs of the paper the lattice is
/// tiny (hundreds of states).
///
/// # Examples
///
/// ```
/// use rdse_graph::{Digraph, NodeId, count_linear_extensions};
///
/// # fn main() -> Result<(), rdse_graph::GraphError> {
/// // Two parallel 2-chains: C(4,2) = 6 interleavings.
/// let mut g = Digraph::new(4);
/// g.add_edge(NodeId(0), NodeId(1), 0.0)?;
/// g.add_edge(NodeId(2), NodeId(3), 0.0)?;
/// assert_eq!(count_linear_extensions(&g, None), Some(6));
/// # Ok(())
/// # }
/// ```
#[allow(clippy::needless_range_loop)] // v is both a bit index and a mask index
pub fn count_linear_extensions(g: &Digraph, ideal_cap: Option<usize>) -> Option<u128> {
    let n = g.n_nodes();
    if n > 64 {
        return None;
    }
    if n == 0 {
        return Some(1);
    }
    if crate::topo::topo_sort(g).is_err() {
        return None;
    }
    let cap = ideal_cap.unwrap_or(DEFAULT_IDEAL_CAP);
    // Predecessor masks.
    let pred_mask: Vec<u64> = (0..n)
        .map(|v| {
            g.predecessors(NodeId(v as u32))
                .fold(0u64, |m, p| m | (1 << p.index()))
        })
        .collect();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    // BFS over ideals by popcount level; ways[S] = number of topological
    // prefixes realizing the downset S.
    let mut ways: HashMap<u64, u128> = HashMap::new();
    ways.insert(0, 1);
    let mut level: Vec<u64> = vec![0];
    let mut visited = 1usize;
    for _ in 0..n {
        let mut next: HashMap<u64, u128> = HashMap::new();
        for s in &level {
            let count = ways[s];
            for v in 0..n {
                let bit = 1u64 << v;
                if s & bit == 0 && pred_mask[v] & !s == 0 {
                    *next.entry(s | bit).or_insert(0) += count;
                }
            }
        }
        visited += next.len();
        if visited > cap {
            return None;
        }
        level = next.keys().copied().collect();
        for (k, v) in next {
            ways.insert(k, v);
        }
    }
    ways.get(&full).copied()
}

/// Binomial coefficient C(n, k) as a `u128`.
///
/// Saturates on overflow (returns `u128::MAX`); with the operand sizes
/// in this crate's experiments that never happens.
///
/// # Examples
///
/// ```
/// use rdse_graph::binomial;
/// assert_eq!(binomial(28, 2), 378);
/// assert_eq!(binomial(28, 6), 376_740);
/// assert_eq!(binomial(21, 7), 116_280);
/// ```
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Multiply first, divide after: the running value is always an
        // exact binomial so the division is exact.
        acc = match acc.checked_mul((n - i) as u128) {
            Some(v) => v / (i as u128 + 1),
            None => return u128::MAX,
        };
    }
    acc
}

/// Number of interleavings (linear extensions) of disjoint parallel
/// chains with the given lengths: the multinomial
/// `(Σlᵢ)! / Πlᵢ!`, computed as a product of binomials.
///
/// # Examples
///
/// ```
/// use rdse_graph::parallel_chain_orders;
/// // A 7-chain in parallel with a 6-chain: C(13,6) = 1716.
/// assert_eq!(parallel_chain_orders(&[7, 6]), 1716);
/// // A 7-chain in parallel with a 14-chain: C(21,7) = 116280.
/// assert_eq!(parallel_chain_orders(&[7, 14]), 116_280);
/// ```
pub fn parallel_chain_orders(lengths: &[u64]) -> u128 {
    let mut total = 0u64;
    let mut acc: u128 = 1;
    for &l in lengths {
        total += l;
        acc = acc.saturating_mul(binomial(total, l));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn chain(len: usize) -> Digraph {
        let mut g = Digraph::new(len);
        for i in 1..len {
            g.add_edge(n(i as u32 - 1), n(i as u32), 0.0).unwrap();
        }
        g
    }

    #[test]
    fn chain_has_one_extension() {
        assert_eq!(count_linear_extensions(&chain(10), None), Some(1));
    }

    #[test]
    fn antichain_is_factorial() {
        let g = Digraph::new(5);
        assert_eq!(count_linear_extensions(&g, None), Some(120));
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::new(0);
        assert_eq!(count_linear_extensions(&g, None), Some(1));
    }

    #[test]
    fn two_parallel_chains_match_binomial() {
        // chains of length 3 and 4 → C(7,3) = 35
        let mut g = Digraph::new(7);
        for i in 1..3 {
            g.add_edge(n(i - 1), n(i), 0.0).unwrap();
        }
        for i in 4..7 {
            g.add_edge(n(i - 1), n(i), 0.0).unwrap();
        }
        assert_eq!(count_linear_extensions(&g, None), Some(35));
        assert_eq!(parallel_chain_orders(&[3, 4]), 35);
    }

    #[test]
    fn cyclic_graph_returns_none() {
        let mut g = Digraph::new(2);
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(1), n(0), 0.0).unwrap();
        assert_eq!(count_linear_extensions(&g, None), None);
    }

    #[test]
    fn cap_respected() {
        // 20-element antichain has 2^20 ideals; cap below that.
        let g = Digraph::new(20);
        assert_eq!(count_linear_extensions(&g, Some(1000)), None);
    }

    #[test]
    fn binomial_edge_cases() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(52, 26), 495_918_532_948_104);
    }

    #[test]
    fn paper_chain_counts() {
        // §5: a 28-node chain with k context changes gives C(28,k).
        assert_eq!(binomial(28, 2), 378);
        assert_eq!(binomial(28, 6), 376_740);
        assert_eq!(binomial(28, 4), 20_475);
    }

    #[test]
    fn multichain_matches_dp() {
        let mut g = Digraph::new(9);
        // chains 2, 3, 4
        g.add_edge(n(0), n(1), 0.0).unwrap();
        g.add_edge(n(2), n(3), 0.0).unwrap();
        g.add_edge(n(3), n(4), 0.0).unwrap();
        g.add_edge(n(5), n(6), 0.0).unwrap();
        g.add_edge(n(6), n(7), 0.0).unwrap();
        g.add_edge(n(7), n(8), 0.0).unwrap();
        assert_eq!(
            count_linear_extensions(&g, None),
            Some(parallel_chain_orders(&[2, 3, 4]))
        );
    }
}
